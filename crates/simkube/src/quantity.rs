//! Kubernetes resource quantities.
//!
//! Quantities express CPU, memory, and storage amounts: `"100m"` (0.1 CPU),
//! `"512Mi"`, `"2"`, `"1.5Gi"`, `"1e3"`. This module implements parsing,
//! canonical formatting, and exact arithmetic over a milli-unit fixed-point
//! representation. The paper reports a real Kubernetes bug in quantity
//! conversion ([kubernetes#110653]); [`Quantity::value_with_bugs`]
//! reproduces an equivalent imprecision behind the
//! [`PlatformBugs::quantity_conversion`](crate::platform::PlatformBugs)
//! flag.
//!
//! [kubernetes#110653]: https://github.com/kubernetes/kubernetes/issues/110653

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Sub};
use std::str::FromStr;

/// Error produced when parsing a malformed quantity string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantityError {
    /// The offending input.
    pub input: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for QuantityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid quantity {:?}: {}", self.input, self.message)
    }
}

impl std::error::Error for QuantityError {}

/// The suffix family a quantity was written in, preserved for formatting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SuffixFamily {
    /// No suffix or decimal SI suffix (m, k, M, G, T, P, E).
    Decimal,
    /// Binary suffix (Ki, Mi, Gi, Ti, Pi, Ei).
    Binary,
}

/// A Kubernetes resource quantity with exact milli-unit arithmetic.
///
/// Internally the amount is stored as an `i128` count of milli-units
/// (thousandths of the base unit), which represents every decimal and binary
/// suffix the Kubernetes API accepts exactly, down to the `m` granularity the
/// platform itself guarantees.
///
/// # Examples
///
/// ```
/// use simkube::Quantity;
///
/// let cpu: Quantity = "250m".parse().unwrap();
/// let mem: Quantity = "1.5Gi".parse().unwrap();
/// assert_eq!(cpu.millis(), 250);
/// assert_eq!(mem.value(), 1_610_612_736);
/// assert_eq!((cpu + "750m".parse().unwrap()).to_string(), "1");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Quantity {
    millis: i128,
    family: SuffixFamily,
}

const DECIMAL_SUFFIXES: &[(&str, i128)] = &[
    ("k", 1_000),
    ("M", 1_000_000),
    ("G", 1_000_000_000),
    ("T", 1_000_000_000_000),
    ("P", 1_000_000_000_000_000),
    ("E", 1_000_000_000_000_000_000),
];

const BINARY_SUFFIXES: &[(&str, i128)] = &[
    ("Ki", 1 << 10),
    ("Mi", 1 << 20),
    ("Gi", 1 << 30),
    ("Ti", 1 << 40),
    ("Pi", 1 << 50),
    ("Ei", 1 << 60),
];

impl Quantity {
    /// Creates a quantity from a whole number of base units.
    pub fn from_units(units: i64) -> Quantity {
        Quantity {
            millis: i128::from(units) * 1000,
            family: SuffixFamily::Decimal,
        }
    }

    /// Creates a quantity from milli-units (e.g. milli-CPU).
    pub fn from_millis(millis: i64) -> Quantity {
        Quantity {
            millis: i128::from(millis),
            family: SuffixFamily::Decimal,
        }
    }

    /// The zero quantity.
    pub fn zero() -> Quantity {
        Quantity::from_millis(0)
    }

    /// Returns the amount in milli-units.
    pub fn millis(&self) -> i128 {
        self.millis
    }

    /// Returns the amount rounded **up** to whole base units, matching
    /// Kubernetes `Quantity.Value()` semantics.
    pub fn value(&self) -> i64 {
        let units = if self.millis >= 0 {
            (self.millis + 999) / 1000
        } else {
            self.millis / 1000
        };
        units as i64
    }

    /// Like [`Quantity::value`], but reproduces the imprecise conversion of
    /// the Kubernetes bug the paper reports when `buggy` is set: amounts are
    /// routed through an `f64`, losing precision above 2^53 milli-units and
    /// truncating instead of rounding up.
    pub fn value_with_bugs(&self, buggy: bool) -> i64 {
        if buggy {
            (self.millis as f64 / 1000.0) as i64
        } else {
            self.value()
        }
    }

    /// Returns `true` for a negative amount.
    pub fn is_negative(&self) -> bool {
        self.millis < 0
    }

    /// Saturating subtraction clamped at zero, for capacity accounting.
    pub fn saturating_sub(&self, other: &Quantity) -> Quantity {
        Quantity {
            millis: (self.millis - other.millis).max(0),
            family: self.family,
        }
    }

    /// Formats the quantity canonically: binary-family values use the
    /// largest exact binary suffix; decimal-family values use `m` or plain
    /// units.
    fn canonical(&self) -> String {
        if self.millis == 0 {
            return "0".to_string();
        }
        if self.family == SuffixFamily::Binary && self.millis % 1000 == 0 {
            let units = self.millis / 1000;
            for (suffix, scale) in BINARY_SUFFIXES.iter().rev() {
                if units % scale == 0 {
                    return format!("{}{}", units / scale, suffix);
                }
            }
            return units.to_string();
        }
        if self.millis % 1000 == 0 {
            let units = self.millis / 1000;
            for (suffix, scale) in DECIMAL_SUFFIXES.iter().rev() {
                if units % scale == 0 && units.abs() >= *scale {
                    return format!("{}{}", units / scale, suffix);
                }
            }
            units.to_string()
        } else {
            format!("{}m", self.millis)
        }
    }
}

impl PartialEq for Quantity {
    fn eq(&self, other: &Self) -> bool {
        self.millis == other.millis
    }
}

impl Eq for Quantity {}

impl PartialOrd for Quantity {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Quantity {
    fn cmp(&self, other: &Self) -> Ordering {
        self.millis.cmp(&other.millis)
    }
}

impl Add for Quantity {
    type Output = Quantity;

    fn add(self, rhs: Quantity) -> Quantity {
        Quantity {
            millis: self.millis + rhs.millis,
            family: self.family,
        }
    }
}

impl Sub for Quantity {
    type Output = Quantity;

    fn sub(self, rhs: Quantity) -> Quantity {
        Quantity {
            millis: self.millis - rhs.millis,
            family: self.family,
        }
    }
}

impl fmt::Display for Quantity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

impl FromStr for Quantity {
    type Err = QuantityError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |message: &str| QuantityError {
            input: s.to_string(),
            message: message.to_string(),
        };
        if s.is_empty() {
            return Err(err("empty string"));
        }
        // Split number prefix from suffix.
        let mut split = s.len();
        for (i, c) in s.char_indices() {
            if !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E') {
                split = i;
                break;
            }
            // `E` is both an exponent marker and the exa suffix; treat it as
            // a suffix when not followed by a digit or sign.
            if (c == 'e' || c == 'E')
                && !s[i + c.len_utf8()..]
                    .chars()
                    .next()
                    .is_some_and(|n| n.is_ascii_digit() || n == '-' || n == '+')
            {
                split = i;
                break;
            }
        }
        let (num_str, suffix) = s.split_at(split);
        if num_str.is_empty() {
            return Err(err("missing numeric part"));
        }
        let (scale_millis, family) = match suffix {
            "" => (1000i128, SuffixFamily::Decimal),
            "m" => (1i128, SuffixFamily::Decimal),
            _ => {
                if let Some((_, scale)) = BINARY_SUFFIXES.iter().find(|(sfx, _)| *sfx == suffix) {
                    (scale * 1000, SuffixFamily::Binary)
                } else if let Some((_, scale)) =
                    DECIMAL_SUFFIXES.iter().find(|(sfx, _)| *sfx == suffix)
                {
                    (scale * 1000, SuffixFamily::Decimal)
                } else {
                    return Err(err("unknown suffix"));
                }
            }
        };
        // Parse the numeric part exactly: mantissa digits + optional decimal
        // point + optional exponent.
        let negative = num_str.starts_with('-');
        let unsigned = match num_str.strip_prefix(['-', '+']) {
            Some(rest) => rest,
            None => num_str,
        };
        if unsigned.starts_with(['-', '+']) {
            return Err(err("repeated sign"));
        }
        let (mantissa_str, exponent) = match unsigned.split_once(['e', 'E']) {
            Some((m, e)) => {
                let exp: i32 = e.parse().map_err(|_| err("invalid exponent"))?;
                (m, exp)
            }
            None => (unsigned, 0),
        };
        let (int_part, frac_part) = match mantissa_str.split_once('.') {
            Some((i, f)) => (i, f),
            None => (mantissa_str, ""),
        };
        if int_part.is_empty() && frac_part.is_empty() {
            return Err(err("missing digits"));
        }
        if !int_part.chars().all(|c| c.is_ascii_digit())
            || !frac_part.chars().all(|c| c.is_ascii_digit())
        {
            return Err(err("invalid digits"));
        }
        // Value = digits * 10^(exponent - frac_len) * scale_millis.
        let digits: i128 = format!("{int_part}{frac_part}")
            .parse()
            .map_err(|_| err("number too large"))?;
        let pow10 = exponent - frac_part.len() as i32;
        let mut millis = digits
            .checked_mul(scale_millis)
            .ok_or_else(|| err("overflow"))?;
        if pow10 > 0 {
            for _ in 0..pow10 {
                millis = millis.checked_mul(10).ok_or_else(|| err("overflow"))?;
            }
        } else {
            for _ in 0..(-pow10) {
                if millis % 10 != 0 {
                    // Sub-milli precision: round up (Kubernetes canonicalizes
                    // to the next milli).
                    millis = millis / 10 + 1;
                } else {
                    millis /= 10;
                }
            }
        }
        if negative {
            millis = -millis;
        }
        Ok(Quantity { millis, family })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(s: &str) -> Quantity {
        s.parse().unwrap()
    }

    #[test]
    fn parses_plain_and_milli() {
        assert_eq!(q("1").millis(), 1000);
        assert_eq!(q("0").millis(), 0);
        assert_eq!(q("250m").millis(), 250);
        assert_eq!(q("-2").millis(), -2000);
        assert_eq!(q("1.5").millis(), 1500);
        assert_eq!(q("0.1").millis(), 100);
    }

    #[test]
    fn parses_binary_suffixes() {
        assert_eq!(q("1Ki").value(), 1024);
        assert_eq!(q("512Mi").value(), 512 * 1024 * 1024);
        assert_eq!(q("1.5Gi").value(), 3 * (1 << 29));
        assert_eq!(q("2Ti").value(), 2i64 << 40);
    }

    #[test]
    fn parses_decimal_suffixes_and_exponents() {
        assert_eq!(q("2k").value(), 2000);
        assert_eq!(q("3M").value(), 3_000_000);
        assert_eq!(q("1G").value(), 1_000_000_000);
        assert_eq!(q("1e3").value(), 1000);
        assert_eq!(q("1.2e2").value(), 120);
        assert_eq!(q("1E").value(), 1_000_000_000_000_000_000);
        assert_eq!(q("5e-1").millis(), 500);
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["", "m", "abc", "1Q", "1.2.3", "--1", "1ki", "1MI", "1e"] {
            assert!(bad.parse::<Quantity>().is_err(), "expected error: {bad:?}");
        }
    }

    #[test]
    fn value_rounds_up_like_kubernetes() {
        assert_eq!(q("100m").value(), 1);
        assert_eq!(q("1100m").value(), 2);
        assert_eq!(q("-100m").value(), 0);
        assert_eq!(q("2").value(), 2);
    }

    #[test]
    fn buggy_conversion_differs() {
        // The platform bug truncates rather than rounding up.
        let v = q("1100m");
        assert_eq!(v.value(), 2);
        assert_eq!(v.value_with_bugs(true), 1);
        assert_eq!(v.value_with_bugs(false), 2);
        // And loses precision on huge values.
        let huge = q("9007199254740993"); // 2^53 + 1
        assert_eq!(huge.value(), 9007199254740993);
        assert_ne!(huge.value_with_bugs(true), 9007199254740993);
    }

    #[test]
    fn arithmetic_and_ordering() {
        assert_eq!(q("250m") + q("750m"), q("1"));
        assert_eq!(q("1Gi") - q("512Mi"), q("512Mi"));
        assert!(q("1Gi") > q("1G"));
        assert!(q("100m") < q("1"));
        assert_eq!(q("1").saturating_sub(&q("2")), Quantity::zero());
    }

    #[test]
    fn canonical_formatting() {
        assert_eq!(q("1024Mi").to_string(), "1Gi");
        assert_eq!(q("512Mi").to_string(), "512Mi");
        assert_eq!(q("100m").to_string(), "100m");
        assert_eq!(q("2000m").to_string(), "2");
        assert_eq!(q("3000").to_string(), "3k");
        assert_eq!(Quantity::zero().to_string(), "0");
        assert_eq!(q("1.5Gi").to_string(), "1536Mi");
    }

    #[test]
    fn display_roundtrip() {
        for s in ["1", "250m", "512Mi", "1Gi", "2k", "1536Mi", "0"] {
            let parsed = q(s);
            let round = parsed.to_string().parse::<Quantity>().unwrap();
            assert_eq!(parsed, round, "roundtrip of {s}");
        }
    }

    #[test]
    fn sub_milli_rounds_up() {
        // 0.0001 units = 0.1 milli, canonicalized up to 1m.
        assert_eq!(q("0.0001").millis(), 1);
        assert_eq!(q("1e-4").millis(), 1);
    }
}
