//! The versioned object store (the simulated `etcd`).
//!
//! All state objects live here, keyed by kind/namespace/name, with monotonic
//! resource versions and an append-only watch-event log. Acto's convergence
//! detection consumes the event log: the reset timer restarts whenever a new
//! event appears (paper §5.5).

use std::collections::{BTreeMap, BTreeSet};

use crate::meta::ObjectMeta;
use crate::objects::{Kind, ObjectData, StoredObject};

/// Key identifying a stored object.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjKey {
    /// Object kind.
    pub kind: Kind,
    /// Namespace.
    pub namespace: String,
    /// Name.
    pub name: String,
}

impl ObjKey {
    /// Builds a key.
    pub fn new(kind: Kind, namespace: &str, name: &str) -> ObjKey {
        ObjKey {
            kind,
            namespace: namespace.to_string(),
            name: name.to_string(),
        }
    }
}

/// What happened to an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchEventKind {
    /// Object created.
    Added,
    /// Object updated (spec or status).
    Modified,
    /// Object removed.
    Deleted,
}

/// One entry of the watch-event log.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchEvent {
    /// Store revision at which the event happened.
    pub revision: u64,
    /// Simulated time of the event.
    pub time: u64,
    /// What happened.
    pub kind: WatchEventKind,
    /// The object affected.
    pub key: ObjKey,
}

/// The versioned object store.
///
/// # Examples
///
/// ```
/// use simkube::{ObjectStore, ObjectData, ConfigMap, Kind};
/// use simkube::meta::ObjectMeta;
///
/// let mut store = ObjectStore::new();
/// store.create(
///     ObjectMeta::named("default", "conf"),
///     ObjectData::ConfigMap(ConfigMap::default()),
///     0,
/// ).unwrap();
/// assert_eq!(store.list(&Kind::ConfigMap, "default").len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ObjectStore {
    objects: BTreeMap<ObjKey, StoredObject>,
    revision: u64,
    next_uid: u64,
    events: Vec<WatchEvent>,
    /// Secondary index: keys grouped by kind, so `list`/`list_all` do not
    /// scan unrelated objects. `ObjKey` orders by (kind, namespace, name),
    /// so iterating a per-kind set preserves the primary map's order.
    by_kind: BTreeMap<Kind, BTreeSet<ObjKey>>,
    /// Highest revision at which each kind last changed. Drives the
    /// event-driven engine's dirty checks (`kinds_dirty_since`).
    kind_revision: BTreeMap<Kind, u64>,
    /// Events at or below this revision have been compacted away.
    events_floor: u64,
}

impl ObjectStore {
    /// Creates an empty store.
    pub fn new() -> ObjectStore {
        ObjectStore {
            objects: BTreeMap::new(),
            revision: 0,
            next_uid: 1,
            events: Vec::new(),
            by_kind: BTreeMap::new(),
            kind_revision: BTreeMap::new(),
            events_floor: 0,
        }
    }

    /// Current store revision (advances on every write).
    pub fn revision(&self) -> u64 {
        self.revision
    }

    fn bump(&mut self, kind: WatchEventKind, key: ObjKey, time: u64) {
        self.revision += 1;
        self.kind_revision.insert(key.kind.clone(), self.revision);
        self.events.push(WatchEvent {
            revision: self.revision,
            time,
            kind,
            key,
        });
    }

    /// Returns `true` when any of `kinds` changed after revision `cursor`.
    pub fn kinds_dirty_since(&self, kinds: &[Kind], cursor: u64) -> bool {
        kinds
            .iter()
            .any(|k| self.kind_revision.get(k).is_some_and(|r| *r > cursor))
    }

    /// Creates an object, assigning uid and resource version.
    ///
    /// Fails if an object with the same key already exists.
    pub fn create(
        &mut self,
        mut meta: ObjectMeta,
        data: ObjectData,
        time: u64,
    ) -> Result<ObjKey, String> {
        let key = ObjKey::new(data.kind(), &meta.namespace, &meta.name);
        if self.objects.contains_key(&key) {
            return Err(format!(
                "{} {}/{} already exists",
                key.kind.name(),
                key.namespace,
                key.name
            ));
        }
        meta.uid = self.next_uid;
        self.next_uid += 1;
        meta.resource_version = self.revision + 1;
        meta.generation = 1;
        meta.creation_timestamp = time;
        self.objects
            .insert(key.clone(), StoredObject { meta, data });
        self.by_kind
            .entry(key.kind.clone())
            .or_default()
            .insert(key.clone());
        self.bump(WatchEventKind::Added, key.clone(), time);
        Ok(key)
    }

    /// Fetches an object by key.
    pub fn get(&self, key: &ObjKey) -> Option<&StoredObject> {
        self.objects.get(key)
    }

    /// Replaces an object's payload. Bumps generation when the spec changed
    /// and the resource version always.
    pub fn update(&mut self, key: &ObjKey, data: ObjectData, time: u64) -> Result<(), String> {
        let obj = self.objects.get_mut(key).ok_or_else(|| {
            format!(
                "{} {}/{} not found",
                key.kind.name(),
                key.namespace,
                key.name
            )
        })?;
        // Cheap structural equality first: an unchanged payload implies an
        // unchanged spec, so the (allocating) spec rendering only runs for
        // actual modifications.
        let changed = obj.data != data;
        if changed {
            let spec_changed = obj.data.spec_value() != data.spec_value();
            obj.data = data;
            obj.meta.resource_version = self.revision + 1;
            if spec_changed {
                obj.meta.generation += 1;
            }
            self.bump(WatchEventKind::Modified, key.clone(), time);
        }
        Ok(())
    }

    /// Mutates an object in place through a closure. No event is recorded
    /// when the closure leaves the object unchanged.
    pub fn update_with<F: FnOnce(&mut StoredObject)>(
        &mut self,
        key: &ObjKey,
        time: u64,
        f: F,
    ) -> Result<(), String> {
        let obj = self.objects.get_mut(key).ok_or_else(|| {
            format!(
                "{} {}/{} not found",
                key.kind.name(),
                key.namespace,
                key.name
            )
        })?;
        let before_data = obj.data.clone();
        let before_meta = obj.meta.clone();
        f(obj);
        // Restore store-managed metadata the closure must not forge.
        obj.meta.uid = before_meta.uid;
        obj.meta.resource_version = before_meta.resource_version;
        obj.meta.generation = before_meta.generation;
        obj.meta.creation_timestamp = before_meta.creation_timestamp;
        let changed = obj.data != before_data || obj.meta != before_meta;
        if changed {
            obj.meta.resource_version = self.revision + 1;
            // Spec rendering allocates; only needed once a change is known.
            if obj.data.spec_value() != before_data.spec_value() {
                obj.meta.generation += 1;
            }
            self.bump(WatchEventKind::Modified, key.clone(), time);
        }
        Ok(())
    }

    /// Deletes an object, returning it.
    pub fn delete(&mut self, key: &ObjKey, time: u64) -> Option<StoredObject> {
        let removed = self.objects.remove(key);
        if removed.is_some() {
            if let Some(keys) = self.by_kind.get_mut(&key.kind) {
                keys.remove(key);
            }
            self.bump(WatchEventKind::Deleted, key.clone(), time);
        }
        removed
    }

    /// Lists objects of a kind within a namespace, sorted by name.
    pub fn list(&self, kind: &Kind, namespace: &str) -> Vec<&StoredObject> {
        let Some(keys) = self.by_kind.get(kind) else {
            return Vec::new();
        };
        let start = ObjKey::new(kind.clone(), namespace, "");
        keys.range(start..)
            .take_while(|k| k.namespace == namespace)
            .filter_map(|k| self.objects.get(k))
            .collect()
    }

    /// Lists objects of a kind across all namespaces.
    pub fn list_all(&self, kind: &Kind) -> Vec<&StoredObject> {
        let Some(keys) = self.by_kind.get(kind) else {
            return Vec::new();
        };
        keys.iter().filter_map(|k| self.objects.get(k)).collect()
    }

    /// Iterates over every stored object.
    pub fn iter(&self) -> impl Iterator<Item = (&ObjKey, &StoredObject)> {
        self.objects.iter()
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Returns `true` when no objects are stored.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Returns watch events with revision greater than `after_revision`.
    ///
    /// Events at or below [`ObjectStore::events_floor`] may have been
    /// compacted away; asking for them returns only what survives.
    pub fn events_since(&self, after_revision: u64) -> &[WatchEvent] {
        let start = self
            .events
            .partition_point(|e| e.revision <= after_revision);
        &self.events[start..]
    }

    /// Drops watch events with revision at or below `below_revision`,
    /// returning how many were dropped. Object state, revisions, and uid
    /// assignment are untouched — only the log shrinks.
    pub fn compact_events(&mut self, below_revision: u64) -> usize {
        let cut = self
            .events
            .partition_point(|e| e.revision <= below_revision);
        if cut == 0 {
            return 0;
        }
        self.events_floor = self.events[cut - 1].revision;
        self.events.drain(..cut);
        cut
    }

    /// Highest revision whose event has been compacted away (0 = none).
    pub fn events_floor(&self) -> u64 {
        self.events_floor
    }

    /// Number of events currently retained in the log.
    pub fn events_len(&self) -> usize {
        self.events.len()
    }

    /// Takes a deep snapshot of the store (used by the differential oracle
    /// and for error-state rollback bookkeeping).
    pub fn snapshot(&self) -> ObjectStore {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objects::{ConfigMap, Pod};

    fn cm(name: &str) -> (ObjectMeta, ObjectData) {
        (
            ObjectMeta::named("ns", name),
            ObjectData::ConfigMap(ConfigMap::default()),
        )
    }

    #[test]
    fn create_assigns_uid_and_version() {
        let mut store = ObjectStore::new();
        let (meta, data) = cm("a");
        let key = store.create(meta, data, 5).unwrap();
        let obj = store.get(&key).unwrap();
        assert_eq!(obj.meta.uid, 1);
        assert_eq!(obj.meta.resource_version, 1);
        assert_eq!(obj.meta.generation, 1);
        assert_eq!(obj.meta.creation_timestamp, 5);
        let (meta2, data2) = cm("b");
        let key2 = store.create(meta2, data2, 6).unwrap();
        assert_eq!(store.get(&key2).unwrap().meta.uid, 2);
    }

    #[test]
    fn duplicate_create_fails() {
        let mut store = ObjectStore::new();
        let (meta, data) = cm("a");
        store.create(meta.clone(), data.clone(), 0).unwrap();
        assert!(store.create(meta, data, 0).is_err());
    }

    #[test]
    fn update_bumps_generation_only_on_spec_change() {
        let mut store = ObjectStore::new();
        let key = store
            .create(
                ObjectMeta::named("ns", "p"),
                ObjectData::Pod(Pod::default()),
                0,
            )
            .unwrap();
        // Status-only change: phase.
        store
            .update_with(&key, 1, |o| {
                if let ObjectData::Pod(p) = &mut o.data {
                    p.phase = crate::objects::PodPhase::Running;
                }
            })
            .unwrap();
        assert_eq!(store.get(&key).unwrap().meta.generation, 1);
        // Spec change: new container.
        store
            .update_with(&key, 2, |o| {
                if let ObjectData::Pod(p) = &mut o.data {
                    p.containers.push(crate::objects::Container::default());
                }
            })
            .unwrap();
        assert_eq!(store.get(&key).unwrap().meta.generation, 2);
    }

    #[test]
    fn noop_update_records_no_event() {
        let mut store = ObjectStore::new();
        let (meta, data) = cm("a");
        let key = store.create(meta, data, 0).unwrap();
        let before = store.events_since(0).len();
        store.update_with(&key, 1, |_| {}).unwrap();
        assert_eq!(store.events_since(0).len(), before);
    }

    #[test]
    fn delete_emits_event() {
        let mut store = ObjectStore::new();
        let (meta, data) = cm("a");
        let key = store.create(meta, data, 0).unwrap();
        assert!(store.delete(&key, 3).is_some());
        assert!(store.get(&key).is_none());
        let events = store.events_since(0);
        assert_eq!(events.last().unwrap().kind, WatchEventKind::Deleted);
        assert!(store.delete(&key, 3).is_none());
    }

    #[test]
    fn events_since_filters_by_revision() {
        let mut store = ObjectStore::new();
        for name in ["a", "b", "c"] {
            let (meta, data) = cm(name);
            store.create(meta, data, 0).unwrap();
        }
        assert_eq!(store.events_since(0).len(), 3);
        assert_eq!(store.events_since(2).len(), 1);
        assert_eq!(store.events_since(3).len(), 0);
    }

    #[test]
    fn list_is_scoped_and_sorted() {
        let mut store = ObjectStore::new();
        let (meta, data) = cm("b");
        store.create(meta, data, 0).unwrap();
        let (meta, data) = cm("a");
        store.create(meta, data, 0).unwrap();
        store
            .create(
                ObjectMeta::named("other", "c"),
                ObjectData::ConfigMap(ConfigMap::default()),
                0,
            )
            .unwrap();
        let names: Vec<&str> = store
            .list(&Kind::ConfigMap, "ns")
            .iter()
            .map(|o| o.meta.name.as_str())
            .collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(store.list_all(&Kind::ConfigMap).len(), 3);
    }

    #[test]
    fn kind_index_survives_create_delete_snapshot() {
        let mut store = ObjectStore::new();
        let (meta, data) = cm("a");
        let key = store.create(meta, data, 0).unwrap();
        store
            .create(
                ObjectMeta::named("ns", "p"),
                ObjectData::Pod(Pod::default()),
                0,
            )
            .unwrap();
        assert_eq!(store.list_all(&Kind::ConfigMap).len(), 1);
        assert_eq!(store.list_all(&Kind::Pod).len(), 1);
        let snap = store.snapshot();
        store.delete(&key, 1);
        assert!(store.list_all(&Kind::ConfigMap).is_empty());
        assert!(store.list(&Kind::ConfigMap, "ns").is_empty());
        assert_eq!(snap.list_all(&Kind::ConfigMap).len(), 1);
        // Recreating after delete re-registers the key.
        let (meta, data) = cm("a");
        store.create(meta, data, 2).unwrap();
        assert_eq!(store.list(&Kind::ConfigMap, "ns").len(), 1);
    }

    #[test]
    fn kinds_dirty_since_tracks_per_kind_revisions() {
        let mut store = ObjectStore::new();
        let (meta, data) = cm("a");
        let key = store.create(meta, data, 0).unwrap(); // rev 1, ConfigMap
        store
            .create(
                ObjectMeta::named("ns", "p"),
                ObjectData::Pod(Pod::default()),
                0,
            )
            .unwrap(); // rev 2, Pod
        assert!(store.kinds_dirty_since(&[Kind::ConfigMap], 0));
        assert!(!store.kinds_dirty_since(&[Kind::ConfigMap], 1));
        assert!(store.kinds_dirty_since(&[Kind::Pod], 1));
        assert!(!store.kinds_dirty_since(&[Kind::Pod, Kind::ConfigMap], 2));
        assert!(!store.kinds_dirty_since(&[Kind::Node], 0));
        store.delete(&key, 1); // rev 3, ConfigMap
        assert!(store.kinds_dirty_since(&[Kind::ConfigMap], 2));
    }

    #[test]
    fn compaction_drops_old_events_only() {
        let mut store = ObjectStore::new();
        for name in ["a", "b", "c", "d"] {
            let (meta, data) = cm(name);
            store.create(meta, data, 0).unwrap();
        }
        assert_eq!(store.compact_events(2), 2);
        assert_eq!(store.events_floor(), 2);
        assert_eq!(store.events_len(), 2);
        // Consumers above the floor see exactly what they saw before.
        assert_eq!(store.events_since(2).len(), 2);
        assert_eq!(store.events_since(3).len(), 1);
        // Revision and object state are untouched.
        assert_eq!(store.revision(), 4);
        assert_eq!(store.len(), 4);
        // Compacting below the floor is a no-op.
        assert_eq!(store.compact_events(1), 0);
        assert_eq!(store.events_floor(), 2);
    }

    #[test]
    fn snapshot_is_independent() {
        let mut store = ObjectStore::new();
        let (meta, data) = cm("a");
        let key = store.create(meta, data, 0).unwrap();
        let snap = store.snapshot();
        store.delete(&key, 1);
        assert!(snap.get(&key).is_some());
        assert!(store.get(&key).is_none());
    }
}
