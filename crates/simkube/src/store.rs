//! The versioned object store (the simulated `etcd`).
//!
//! All state objects live here, keyed by kind/namespace/name, with monotonic
//! resource versions and an append-only watch-event log. Acto's convergence
//! detection consumes the event log: the reset timer restarts whenever a new
//! event appears (paper §5.5).
//!
//! Storage is copy-on-write: objects are held as `Arc<StoredObject>` inside a
//! persistent [`PMap`], so [`ObjectStore::snapshot`] is an O(1) handle copy
//! and a snapshot shares every object and every tree node with its parent
//! until one of them writes. A write copies only the touched root-to-leaf
//! path plus the single object payload being changed.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::meta::ObjectMeta;
use crate::objects::{Kind, ObjectData, StoredObject};
use crate::pmap::PMap;

/// Key identifying a stored object.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjKey {
    /// Object kind.
    pub kind: Kind,
    /// Namespace.
    pub namespace: String,
    /// Name.
    pub name: String,
}

impl ObjKey {
    /// Builds a key.
    pub fn new(kind: Kind, namespace: &str, name: &str) -> ObjKey {
        ObjKey {
            kind,
            namespace: namespace.to_string(),
            name: name.to_string(),
        }
    }

    /// Compares against borrowed parts in the same order as the derived
    /// `Ord` (kind, then namespace, then name), so range scans need no
    /// throwaway `ObjKey` allocation.
    pub fn cmp_parts(&self, kind: &Kind, namespace: &str, name: &str) -> std::cmp::Ordering {
        self.kind
            .cmp(kind)
            .then_with(|| self.namespace.as_str().cmp(namespace))
            .then_with(|| self.name.as_str().cmp(name))
    }
}

/// What happened to an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchEventKind {
    /// Object created.
    Added,
    /// Object updated (spec or status).
    Modified,
    /// Object removed.
    Deleted,
}

/// One entry of the watch-event log.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchEvent {
    /// Store revision at which the event happened.
    pub revision: u64,
    /// Simulated time of the event.
    pub time: u64,
    /// What happened.
    pub kind: WatchEventKind,
    /// The object affected.
    pub key: ObjKey,
    /// Shared handle to the object as of this event (`None` for
    /// deletions). Because events record every write in order, the *last*
    /// event for a key in any batch carries exactly the object's current
    /// state — index synchronization reads it instead of paying a fresh
    /// tree descent per touched key.
    pub obj: Option<Arc<StoredObject>>,
}

/// The versioned object store.
///
/// # Examples
///
/// ```
/// use simkube::{ObjectStore, ObjectData, ConfigMap, Kind};
/// use simkube::meta::ObjectMeta;
///
/// let mut store = ObjectStore::new();
/// store.create(
///     ObjectMeta::named("default", "conf"),
///     ObjectData::ConfigMap(ConfigMap::default()),
///     0,
/// ).unwrap();
/// assert_eq!(store.list(&Kind::ConfigMap, "default").len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ObjectStore {
    /// Persistent map: clones share structure, writes copy the touched path.
    /// The map's (kind, namespace, name) key order doubles as the per-kind
    /// index — `list`/`list_all` are contiguous range scans.
    objects: PMap<ObjKey, Arc<StoredObject>>,
    revision: u64,
    next_uid: u64,
    /// Watch-event log, shared between snapshots until one side appends.
    events: Arc<Vec<WatchEvent>>,
    /// Highest revision at which each kind last changed. Drives the
    /// event-driven engine's dirty checks (`kinds_dirty_since`).
    kind_revision: BTreeMap<Kind, u64>,
    /// Live object count per kind. Lets controllers skip a reconcile pass
    /// outright when no object of their kind exists ([`ObjectStore::kind_count`]).
    kind_counts: BTreeMap<Kind, usize>,
    /// Events at or below this revision have been compacted away.
    events_floor: u64,
    /// Namespace alias `(from, to)`: while set, *keyed* operations naming
    /// the `from` namespace are transparently redirected to `to`. The
    /// composition harness brackets each member operator's reconcile pass
    /// with an alias from the conventional deployment namespace to the
    /// member's own, so operator code with the namespace baked in lands in
    /// its member sandbox instead of a sibling's. Raw enumeration
    /// ([`ObjectStore::iter`], [`ObjectStore::list_all`]) is deliberately
    /// not aliased — cross-namespace reach through those is exactly what
    /// the composition oracle watches for.
    ns_alias: Option<(String, String)>,
}

impl ObjectStore {
    /// Creates an empty store.
    pub fn new() -> ObjectStore {
        ObjectStore {
            objects: PMap::new(),
            revision: 0,
            next_uid: 1,
            events: Arc::new(Vec::new()),
            kind_revision: BTreeMap::new(),
            kind_counts: BTreeMap::new(),
            events_floor: 0,
            ns_alias: None,
        }
    }

    /// Installs a namespace alias: keyed operations naming `from` are
    /// redirected to `to` until [`ObjectStore::clear_ns_alias`].
    pub fn set_ns_alias(&mut self, from: &str, to: &str) {
        self.ns_alias = Some((from.to_string(), to.to_string()));
    }

    /// Removes the namespace alias.
    pub fn clear_ns_alias(&mut self) {
        self.ns_alias = None;
    }

    /// Resolves a namespace through the alias (identity when unset).
    fn resolve_ns<'n>(&'n self, namespace: &'n str) -> &'n str {
        match &self.ns_alias {
            Some((from, to)) if namespace == from => to,
            _ => namespace,
        }
    }

    /// Resolves a key through the alias. Borrows on the (overwhelmingly
    /// common) unaliased path; allocates only when a redirect applies.
    fn resolve_key<'k>(&self, key: &'k ObjKey) -> std::borrow::Cow<'k, ObjKey> {
        match &self.ns_alias {
            Some((from, to)) if key.namespace == *from => {
                std::borrow::Cow::Owned(ObjKey::new(key.kind.clone(), to, &key.name))
            }
            _ => std::borrow::Cow::Borrowed(key),
        }
    }

    /// Current store revision (advances on every write).
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Records a write: advances the revision, marks the kind dirty, and
    /// appends a watch event. The key is moved into the event (no clone);
    /// the kind is cloned only the first time that kind is ever written.
    fn bump(
        &mut self,
        kind: WatchEventKind,
        key: ObjKey,
        time: u64,
        obj: Option<Arc<StoredObject>>,
    ) {
        self.revision += 1;
        match self.kind_revision.get_mut(&key.kind) {
            Some(rev) => *rev = self.revision,
            None => {
                self.kind_revision.insert(key.kind.clone(), self.revision);
            }
        }
        Arc::make_mut(&mut self.events).push(WatchEvent {
            revision: self.revision,
            time,
            kind,
            key,
            obj,
        });
    }

    /// Returns `true` when any of `kinds` changed after revision `cursor`.
    pub fn kinds_dirty_since(&self, kinds: &[Kind], cursor: u64) -> bool {
        kinds
            .iter()
            .any(|k| self.kind_revision.get(k).is_some_and(|r| *r > cursor))
    }

    /// Number of live objects of `kind`. O(log kinds); controllers use it
    /// to skip reconcile passes that provably have nothing to do.
    pub fn kind_count(&self, kind: &Kind) -> usize {
        self.kind_counts.get(kind).copied().unwrap_or(0)
    }

    /// Creates an object, assigning uid and resource version.
    ///
    /// Fails if an object with the same key already exists.
    pub fn create(
        &mut self,
        mut meta: ObjectMeta,
        data: ObjectData,
        time: u64,
    ) -> Result<ObjKey, String> {
        if let Some((from, to)) = &self.ns_alias {
            if meta.namespace == *from {
                meta.namespace = to.clone();
            }
        }
        let key = ObjKey::new(data.kind(), &meta.namespace, &meta.name);
        if self.objects.contains_key(&key) {
            return Err(format!(
                "{} {}/{} already exists",
                key.kind.name(),
                key.namespace,
                key.name
            ));
        }
        meta.uid = self.next_uid;
        self.next_uid += 1;
        meta.resource_version = self.revision + 1;
        meta.generation = 1;
        meta.creation_timestamp = time;
        let obj = Arc::new(StoredObject { meta, data });
        self.objects.insert(key.clone(), Arc::clone(&obj));
        *self.kind_counts.entry(key.kind.clone()).or_insert(0) += 1;
        self.bump(WatchEventKind::Added, key.clone(), time, Some(obj));
        Ok(key)
    }

    /// Fetches an object by key.
    pub fn get(&self, key: &ObjKey) -> Option<&StoredObject> {
        self.objects.get(&*self.resolve_key(key)).map(|obj| &**obj)
    }

    /// Fetches the shared handle for an object by key.
    pub fn get_shared(&self, key: &ObjKey) -> Option<&Arc<StoredObject>> {
        self.objects.get(&*self.resolve_key(key))
    }

    /// Replaces an object's payload. Bumps generation when the spec changed
    /// and the resource version always.
    pub fn update(&mut self, key: &ObjKey, data: ObjectData, time: u64) -> Result<(), String> {
        let resolved = self.resolve_key(key);
        let key = &*resolved;
        let cur = self.objects.get(key).ok_or_else(|| {
            format!(
                "{} {}/{} not found",
                key.kind.name(),
                key.namespace,
                key.name
            )
        })?;
        // Cheap structural equality first: an unchanged payload implies an
        // unchanged spec, so the (allocating) spec rendering only runs for
        // actual modifications — and a no-op never copies the tree path.
        if cur.data == data {
            return Ok(());
        }
        let spec_changed = !cur.data.spec_eq(&data);
        let mut meta = cur.meta.clone();
        meta.resource_version = self.revision + 1;
        if spec_changed {
            meta.generation += 1;
        }
        // A replacement gets a fresh Arc instead of mutating in place, so
        // snapshots holding the old handle are untouched.
        let obj = Arc::new(StoredObject { meta, data });
        *self.objects.get_mut(key).expect("checked above") = Arc::clone(&obj);
        self.bump(WatchEventKind::Modified, key.clone(), time, Some(obj));
        Ok(())
    }

    /// Mutates an object in place through a closure. No event is recorded
    /// when the closure leaves the object unchanged; in that case the
    /// original shared handle is restored, so a no-op never breaks
    /// `Arc::ptr_eq`-based sharing with snapshots.
    pub fn update_with<F: FnOnce(&mut StoredObject)>(
        &mut self,
        key: &ObjKey,
        time: u64,
        f: F,
    ) -> Result<(), String> {
        let resolved = self.resolve_key(key);
        let key = &*resolved;
        let next_rv = self.revision + 1;
        let slot = self.objects.get_mut(key).ok_or_else(|| {
            format!(
                "{} {}/{} not found",
                key.kind.name(),
                key.namespace,
                key.name
            )
        })?;
        let before = Arc::clone(slot);
        let obj = Arc::make_mut(slot);
        f(obj);
        // Restore store-managed metadata the closure must not forge.
        obj.meta.uid = before.meta.uid;
        obj.meta.resource_version = before.meta.resource_version;
        obj.meta.generation = before.meta.generation;
        obj.meta.creation_timestamp = before.meta.creation_timestamp;
        let changed = obj.data != before.data || obj.meta != before.meta;
        if !changed {
            // Put the shared handle back: callers comparing by pointer
            // (oracle pruning, sharing stats) must see a no-op as a no-op.
            *slot = before;
            return Ok(());
        }
        obj.meta.resource_version = next_rv;
        if !obj.data.spec_eq(&before.data) {
            obj.meta.generation += 1;
        }
        let handle = Arc::clone(slot);
        self.bump(WatchEventKind::Modified, key.clone(), time, Some(handle));
        Ok(())
    }

    /// Deletes an object, returning its shared handle.
    pub fn delete(&mut self, key: &ObjKey, time: u64) -> Option<Arc<StoredObject>> {
        let resolved = self.resolve_key(key);
        let key = &*resolved;
        let removed = self.objects.remove(key)?;
        if let Some(count) = self.kind_counts.get_mut(&key.kind) {
            *count = count.saturating_sub(1);
        }
        self.bump(WatchEventKind::Deleted, key.clone(), time, None);
        Some(removed)
    }

    /// Lists objects of a kind within a namespace, sorted by name.
    pub fn list(&self, kind: &Kind, namespace: &str) -> Vec<&StoredObject> {
        let namespace = self.resolve_ns(namespace);
        self.objects
            .range_from_by(|k| k.cmp_parts(kind, namespace, ""))
            .take_while(|(k, _)| &k.kind == kind && k.namespace == namespace)
            .map(|(_, obj)| &**obj)
            .collect()
    }

    /// Lists objects of a kind across all namespaces.
    pub fn list_all(&self, kind: &Kind) -> Vec<&StoredObject> {
        self.objects
            .range_from_by(|k| k.cmp_parts(kind, "", ""))
            .take_while(|(k, _)| &k.kind == kind)
            .map(|(_, obj)| &**obj)
            .collect()
    }

    /// Iterates over every stored object.
    pub fn iter(&self) -> impl Iterator<Item = (&ObjKey, &StoredObject)> {
        self.objects.iter().map(|(k, obj)| (k, &**obj))
    }

    /// Iterates over every stored object as a shared handle.
    pub fn iter_shared(&self) -> impl Iterator<Item = (&ObjKey, &Arc<StoredObject>)> {
        self.objects.iter()
    }

    /// Commutative digest over every stored object, computed incrementally.
    ///
    /// Delegates to [`PMap::digest_sum`]: per-subtree sums are cached inside
    /// the tree nodes, so after k writes only the k copied root-to-leaf
    /// paths are re-hashed — the rest of the store digests for free. All
    /// callers must pass the same (pure) `entry_digest` function for the
    /// lifetime of a store and its snapshots; see `PMap::digest_sum`.
    pub fn digest_sum<F: Fn(&ObjKey, &Arc<StoredObject>) -> u64>(&self, entry_digest: &F) -> u64 {
        self.objects.digest_sum(entry_digest)
    }

    /// Counts objects shared with at least one snapshot versus uniquely
    /// owned by this store: `(shared, uniquely_owned)`. An object counts as
    /// shared when it sits under a tree node still referenced by another
    /// snapshot, or when its payload `Arc` itself is multiply referenced.
    pub fn sharing_stats(&self) -> (usize, usize) {
        // The store's own event log holds a handle per recorded write (how
        // index sync avoids per-key store descents); those references are
        // part of this store, not divergence, so discount them.
        let mut event_refs: BTreeMap<usize, usize> = BTreeMap::new();
        for event in self.events.iter() {
            if let Some(obj) = &event.obj {
                *event_refs.entry(Arc::as_ptr(obj) as usize).or_insert(0) += 1;
            }
        }
        self.objects.sharing_stats(|obj| {
            let own = 1 + event_refs
                .get(&(Arc::as_ptr(obj) as usize))
                .copied()
                .unwrap_or(0);
            Arc::strong_count(obj) > own
        })
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Returns `true` when no objects are stored.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Returns watch events with revision greater than `after_revision`.
    ///
    /// Events at or below [`ObjectStore::events_floor`] may have been
    /// compacted away; asking for them returns only what survives.
    pub fn events_since(&self, after_revision: u64) -> &[WatchEvent] {
        let start = self
            .events
            .partition_point(|e| e.revision <= after_revision);
        &self.events[start..]
    }

    /// Drops watch events with revision at or below `below_revision`,
    /// returning how many were dropped. Object state, revisions, and uid
    /// assignment are untouched — only the log shrinks. Snapshots holding
    /// the shared log are unaffected (the log is copy-on-write).
    pub fn compact_events(&mut self, below_revision: u64) -> usize {
        let cut = self
            .events
            .partition_point(|e| e.revision <= below_revision);
        if cut == 0 {
            return 0;
        }
        self.events_floor = self.events[cut - 1].revision;
        Arc::make_mut(&mut self.events).drain(..cut);
        cut
    }

    /// Highest revision whose event has been compacted away (0 = none).
    pub fn events_floor(&self) -> u64 {
        self.events_floor
    }

    /// Number of events currently retained in the log.
    pub fn events_len(&self) -> usize {
        self.events.len()
    }

    /// Takes an O(1) copy-on-write snapshot of the store. The snapshot and
    /// the live store share every object payload, tree node, and the event
    /// log; either side pays for a copy only along the paths it later
    /// writes. Used by the differential oracle, checkpoints, and
    /// error-state rollback bookkeeping.
    pub fn snapshot(&self) -> ObjectStore {
        self.clone()
    }

    /// Materializes a fully independent deep copy: every object payload and
    /// the event log are re-allocated, sharing nothing with `self`. Only
    /// used as the pre-CoW baseline in benchmarks.
    pub fn deep_clone(&self) -> ObjectStore {
        let mut objects = PMap::new();
        for (key, obj) in self.objects.iter() {
            objects.insert(key.clone(), Arc::new((**obj).clone()));
        }
        // Event payloads must reference the clone's objects, not the
        // original's: current versions map to the fresh handle, stale
        // versions (superseded mid-log) get their own deep copy.
        let events: Vec<WatchEvent> = self
            .events
            .iter()
            .map(|event| {
                let obj = event
                    .obj
                    .as_ref()
                    .map(|o| match self.objects.get(&event.key) {
                        Some(cur) if Arc::ptr_eq(cur, o) => {
                            Arc::clone(objects.get(&event.key).expect("key is live"))
                        }
                        _ => Arc::new((**o).clone()),
                    });
                WatchEvent {
                    revision: event.revision,
                    time: event.time,
                    kind: event.kind,
                    key: event.key.clone(),
                    obj,
                }
            })
            .collect();
        ObjectStore {
            objects,
            revision: self.revision,
            next_uid: self.next_uid,
            events: Arc::new(events),
            kind_revision: self.kind_revision.clone(),
            kind_counts: self.kind_counts.clone(),
            events_floor: self.events_floor,
            ns_alias: self.ns_alias.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objects::{ConfigMap, Pod};

    fn cm(name: &str) -> (ObjectMeta, ObjectData) {
        (
            ObjectMeta::named("ns", name),
            ObjectData::ConfigMap(ConfigMap::default()),
        )
    }

    #[test]
    fn create_assigns_uid_and_version() {
        let mut store = ObjectStore::new();
        let (meta, data) = cm("a");
        let key = store.create(meta, data, 5).unwrap();
        let obj = store.get(&key).unwrap();
        assert_eq!(obj.meta.uid, 1);
        assert_eq!(obj.meta.resource_version, 1);
        assert_eq!(obj.meta.generation, 1);
        assert_eq!(obj.meta.creation_timestamp, 5);
        let (meta2, data2) = cm("b");
        let key2 = store.create(meta2, data2, 6).unwrap();
        assert_eq!(store.get(&key2).unwrap().meta.uid, 2);
    }

    #[test]
    fn duplicate_create_fails() {
        let mut store = ObjectStore::new();
        let (meta, data) = cm("a");
        store.create(meta.clone(), data.clone(), 0).unwrap();
        assert!(store.create(meta, data, 0).is_err());
    }

    #[test]
    fn update_bumps_generation_only_on_spec_change() {
        let mut store = ObjectStore::new();
        let key = store
            .create(
                ObjectMeta::named("ns", "p"),
                ObjectData::Pod(Pod::default()),
                0,
            )
            .unwrap();
        // Status-only change: phase.
        store
            .update_with(&key, 1, |o| {
                if let ObjectData::Pod(p) = &mut o.data {
                    p.phase = crate::objects::PodPhase::Running;
                }
            })
            .unwrap();
        assert_eq!(store.get(&key).unwrap().meta.generation, 1);
        // Spec change: new container.
        store
            .update_with(&key, 2, |o| {
                if let ObjectData::Pod(p) = &mut o.data {
                    p.containers.push(crate::objects::Container::default());
                }
            })
            .unwrap();
        assert_eq!(store.get(&key).unwrap().meta.generation, 2);
    }

    #[test]
    fn noop_update_records_no_event() {
        let mut store = ObjectStore::new();
        let (meta, data) = cm("a");
        let key = store.create(meta, data, 0).unwrap();
        let before = store.events_since(0).len();
        store.update_with(&key, 1, |_| {}).unwrap();
        assert_eq!(store.events_since(0).len(), before);
    }

    #[test]
    fn noop_update_preserves_shared_handle() {
        let mut store = ObjectStore::new();
        let (meta, data) = cm("a");
        let key = store.create(meta, data, 0).unwrap();
        let snap = store.snapshot();
        store.update_with(&key, 1, |_| {}).unwrap();
        // The no-op restored the original Arc: snapshot and store still
        // share the payload, which is what makes ptr_eq pruning sound.
        assert!(Arc::ptr_eq(
            store.get_shared(&key).unwrap(),
            snap.get_shared(&key).unwrap()
        ));
        // A real change replaces the handle in the store only.
        store
            .update_with(&key, 2, |o| {
                if let ObjectData::ConfigMap(c) = &mut o.data {
                    c.data.insert("k".into(), "v".into());
                }
            })
            .unwrap();
        assert!(!Arc::ptr_eq(
            store.get_shared(&key).unwrap(),
            snap.get_shared(&key).unwrap()
        ));
    }

    #[test]
    fn sharing_stats_tracks_divergence() {
        let mut store = ObjectStore::new();
        for name in ["a", "b", "c"] {
            let (meta, data) = cm(name);
            store.create(meta, data, 0).unwrap();
        }
        assert_eq!(store.sharing_stats(), (0, 3));
        let snap = store.snapshot();
        assert_eq!(store.sharing_stats(), (3, 0));
        let key = ObjKey::new(Kind::ConfigMap, "ns", "b");
        store
            .update_with(&key, 1, |o| {
                if let ObjectData::ConfigMap(c) = &mut o.data {
                    c.data.insert("k".into(), "v".into());
                }
            })
            .unwrap();
        assert_eq!(store.sharing_stats(), (2, 1));
        drop(snap);
        assert_eq!(store.sharing_stats(), (0, 3));
    }

    #[test]
    fn delete_emits_event() {
        let mut store = ObjectStore::new();
        let (meta, data) = cm("a");
        let key = store.create(meta, data, 0).unwrap();
        assert!(store.delete(&key, 3).is_some());
        assert!(store.get(&key).is_none());
        let events = store.events_since(0);
        assert_eq!(events.last().unwrap().kind, WatchEventKind::Deleted);
        assert!(store.delete(&key, 3).is_none());
    }

    #[test]
    fn events_since_filters_by_revision() {
        let mut store = ObjectStore::new();
        for name in ["a", "b", "c"] {
            let (meta, data) = cm(name);
            store.create(meta, data, 0).unwrap();
        }
        assert_eq!(store.events_since(0).len(), 3);
        assert_eq!(store.events_since(2).len(), 1);
        assert_eq!(store.events_since(3).len(), 0);
    }

    #[test]
    fn list_is_scoped_and_sorted() {
        let mut store = ObjectStore::new();
        let (meta, data) = cm("b");
        store.create(meta, data, 0).unwrap();
        let (meta, data) = cm("a");
        store.create(meta, data, 0).unwrap();
        store
            .create(
                ObjectMeta::named("other", "c"),
                ObjectData::ConfigMap(ConfigMap::default()),
                0,
            )
            .unwrap();
        let names: Vec<&str> = store
            .list(&Kind::ConfigMap, "ns")
            .iter()
            .map(|o| o.meta.name.as_str())
            .collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(store.list_all(&Kind::ConfigMap).len(), 3);
    }

    #[test]
    fn kind_index_survives_create_delete_snapshot() {
        let mut store = ObjectStore::new();
        let (meta, data) = cm("a");
        let key = store.create(meta, data, 0).unwrap();
        store
            .create(
                ObjectMeta::named("ns", "p"),
                ObjectData::Pod(Pod::default()),
                0,
            )
            .unwrap();
        assert_eq!(store.list_all(&Kind::ConfigMap).len(), 1);
        assert_eq!(store.list_all(&Kind::Pod).len(), 1);
        let snap = store.snapshot();
        store.delete(&key, 1);
        assert!(store.list_all(&Kind::ConfigMap).is_empty());
        assert!(store.list(&Kind::ConfigMap, "ns").is_empty());
        assert_eq!(snap.list_all(&Kind::ConfigMap).len(), 1);
        // Recreating after delete re-registers the key.
        let (meta, data) = cm("a");
        store.create(meta, data, 2).unwrap();
        assert_eq!(store.list(&Kind::ConfigMap, "ns").len(), 1);
    }

    #[test]
    fn kinds_dirty_since_tracks_per_kind_revisions() {
        let mut store = ObjectStore::new();
        let (meta, data) = cm("a");
        let key = store.create(meta, data, 0).unwrap(); // rev 1, ConfigMap
        store
            .create(
                ObjectMeta::named("ns", "p"),
                ObjectData::Pod(Pod::default()),
                0,
            )
            .unwrap(); // rev 2, Pod
        assert!(store.kinds_dirty_since(&[Kind::ConfigMap], 0));
        assert!(!store.kinds_dirty_since(&[Kind::ConfigMap], 1));
        assert!(store.kinds_dirty_since(&[Kind::Pod], 1));
        assert!(!store.kinds_dirty_since(&[Kind::Pod, Kind::ConfigMap], 2));
        assert!(!store.kinds_dirty_since(&[Kind::Node], 0));
        store.delete(&key, 1); // rev 3, ConfigMap
        assert!(store.kinds_dirty_since(&[Kind::ConfigMap], 2));
    }

    #[test]
    fn compaction_drops_old_events_only() {
        let mut store = ObjectStore::new();
        for name in ["a", "b", "c", "d"] {
            let (meta, data) = cm(name);
            store.create(meta, data, 0).unwrap();
        }
        assert_eq!(store.compact_events(2), 2);
        assert_eq!(store.events_floor(), 2);
        assert_eq!(store.events_len(), 2);
        // Consumers above the floor see exactly what they saw before.
        assert_eq!(store.events_since(2).len(), 2);
        assert_eq!(store.events_since(3).len(), 1);
        // Revision and object state are untouched.
        assert_eq!(store.revision(), 4);
        assert_eq!(store.len(), 4);
        // Compacting below the floor is a no-op.
        assert_eq!(store.compact_events(1), 0);
        assert_eq!(store.events_floor(), 2);
    }

    #[test]
    fn compaction_does_not_leak_into_snapshots() {
        let mut store = ObjectStore::new();
        for name in ["a", "b", "c", "d"] {
            let (meta, data) = cm(name);
            store.create(meta, data, 0).unwrap();
        }
        let snap = store.snapshot();
        store.compact_events(3);
        // The snapshot still owns the uncompacted log.
        assert_eq!(snap.events_len(), 4);
        assert_eq!(snap.events_floor(), 0);
        assert_eq!(snap.events_since(0).len(), 4);
        assert_eq!(store.events_len(), 1);
    }

    #[test]
    fn snapshot_is_independent() {
        let mut store = ObjectStore::new();
        let (meta, data) = cm("a");
        let key = store.create(meta, data, 0).unwrap();
        let snap = store.snapshot();
        store.delete(&key, 1);
        assert!(snap.get(&key).is_some());
        assert!(store.get(&key).is_none());
    }

    #[test]
    fn deep_clone_shares_nothing() {
        let mut store = ObjectStore::new();
        let (meta, data) = cm("a");
        let key = store.create(meta, data, 0).unwrap();
        let deep = store.deep_clone();
        assert!(!Arc::ptr_eq(
            store.get_shared(&key).unwrap(),
            deep.get_shared(&key).unwrap()
        ));
        assert_eq!(deep.revision(), store.revision());
        assert_eq!(deep.events_len(), store.events_len());
        assert_eq!(store.sharing_stats(), (0, 1));
    }
}
