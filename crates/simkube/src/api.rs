//! The API server: validated, versioned access to the object store.
//!
//! Operators and Acto interact with the cluster exclusively through this
//! layer, which enforces name rules, CRD schema validation, declaration
//! admission, and selector immutability — and hosts two of the simulated
//! platform bugs (PLAT-2 validation mismatch, PLAT-5 selector mutation).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crdspec::{Schema, SchemaKind, Value};

use crate::meta::{validate_name, ObjectMeta};
use crate::objects::{Kind, ObjectData, StoredObject};
use crate::platform::{PlatformBugs, ANNOTATION_TRUNCATION_LIMIT};
use crate::quantity::Quantity;
use crate::store::{ObjKey, ObjectStore, WatchEvent};

/// Errors surfaced by API operations.
#[derive(Debug, Clone, PartialEq)]
pub enum ApiError {
    /// The object name violates DNS-1123 rules.
    InvalidName(String),
    /// The declaration failed schema validation.
    ValidationFailed(Vec<String>),
    /// An admission rule rejected the request.
    AdmissionDenied(String),
    /// The target object does not exist.
    NotFound(String),
    /// An object with the same key already exists.
    AlreadyExists(String),
    /// The CRD kind is not registered.
    UnknownKind(String),
    /// An immutable field was modified.
    Immutable(String),
    /// The write lost an optimistic-concurrency race (or a fault plan
    /// injected a synthetic conflict). Retryable.
    Conflict(String),
    /// The operator process died at an armed crash point earlier in this
    /// reconcile pass; the write (and every later write of the pass) is
    /// rejected.
    OperatorCrashed(String),
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::InvalidName(m) => write!(f, "invalid name: {m}"),
            ApiError::ValidationFailed(errs) => {
                write!(f, "validation failed: {}", errs.join("; "))
            }
            ApiError::AdmissionDenied(m) => write!(f, "admission denied: {m}"),
            ApiError::NotFound(m) => write!(f, "not found: {m}"),
            ApiError::AlreadyExists(m) => write!(f, "already exists: {m}"),
            ApiError::UnknownKind(m) => write!(f, "unknown kind: {m}"),
            ApiError::Immutable(m) => write!(f, "field is immutable: {m}"),
            ApiError::Conflict(m) => write!(f, "write conflict: {m}"),
            ApiError::OperatorCrashed(m) => write!(f, "operator crashed: {m}"),
        }
    }
}

impl std::error::Error for ApiError {}

/// An admission webhook: inspects a custom-resource declaration before it is
/// persisted. Returning `Err` rejects the request.
pub type AdmissionHook = fn(&Value) -> Result<(), String>;

/// The API server.
///
/// # Examples
///
/// ```
/// use simkube::{ApiServer, PlatformBugs};
/// use crdspec::{Schema, Value};
///
/// let mut api = ApiServer::new(PlatformBugs::none());
/// api.register_crd("Widget", Schema::object().prop("size", Schema::integer().min(0)));
/// api.create_custom("default", "w", "Widget", Value::object([("size", Value::from(2))]), 0)
///     .unwrap();
/// assert!(api
///     .create_custom("default", "w2", "Widget", Value::object([("size", Value::from(-1))]), 0)
///     .is_err());
/// ```
#[derive(Debug, Clone)]
pub struct ApiServer {
    store: ObjectStore,
    /// Registered CRD schemas; shared between snapshots (registration after
    /// deployment is rare, so the whole map is copy-on-write).
    crds: Arc<BTreeMap<String, Schema>>,
    /// Admission webhooks, shared between snapshots like `crds`.
    admission: Arc<BTreeMap<String, Vec<AdmissionHook>>>,
    bugs: PlatformBugs,
    /// Writes remaining that will fail with [`ApiError::Conflict`]
    /// (armed by fault injection).
    injected_conflicts: u32,
    /// True while an operator reconcile pass is in flight (bracketed by
    /// [`ApiServer::begin_operator_pass`]/[`ApiServer::end_operator_pass`]);
    /// only writes inside the bracket are subject to crash points.
    in_operator_pass: bool,
    /// Cumulative state-changing writes issued by operator passes. Only
    /// writes that advance the store revision count, which keeps the
    /// counter identical between the ticked and event-driven engines: a
    /// no-op pass the event engine fast-forwards over would not have
    /// moved it anyway.
    operator_writes: u64,
    /// Armed crash point: state-changing operator writes remaining until
    /// the process "dies", and how long it then stays down.
    crash_armed: Option<(u32, u64)>,
    /// A crash point fired during the current pass: the down duration,
    /// consumed by [`ApiServer::end_operator_pass`].
    crash_fired: Option<u64>,
}

impl ApiServer {
    /// Creates an API server over an empty store.
    pub fn new(bugs: PlatformBugs) -> ApiServer {
        ApiServer {
            store: ObjectStore::new(),
            crds: Arc::new(BTreeMap::new()),
            admission: Arc::new(BTreeMap::new()),
            bugs,
            injected_conflicts: 0,
            in_operator_pass: false,
            operator_writes: 0,
            crash_armed: None,
            crash_fired: None,
        }
    }

    /// Arms `count` synthetic write conflicts: the next `count` calls to
    /// [`ApiServer::apply_object`] fail with [`ApiError::Conflict`].
    pub fn inject_conflicts(&mut self, count: u32) {
        self.injected_conflicts += count;
    }

    /// Synthetic write conflicts still armed.
    pub fn pending_conflicts(&self) -> u32 {
        self.injected_conflicts
    }

    /// Arms a crash point: the operator process dies immediately after
    /// its `at_write`-th state-changing write (counted from now, across
    /// passes), then stays down for `down_for` simulated seconds. Writes
    /// the dying pass issues after the firing fail with
    /// [`ApiError::OperatorCrashed`].
    pub fn arm_operator_crash(&mut self, at_write: u32, down_for: u64) {
        self.crash_armed = Some((at_write.max(1), down_for));
    }

    /// The armed crash point, if any: `(writes remaining, down duration)`.
    pub fn armed_operator_crash(&self) -> Option<(u32, u64)> {
        self.crash_armed
    }

    /// Cumulative state-changing writes issued by operator passes.
    pub fn operator_writes(&self) -> u64 {
        self.operator_writes
    }

    /// Opens an operator reconcile pass: writes until the matching
    /// [`ApiServer::end_operator_pass`] count toward armed crash points.
    pub fn begin_operator_pass(&mut self) {
        self.in_operator_pass = true;
    }

    /// Closes the current operator pass, returning the down duration when
    /// a crash point fired inside it.
    pub fn end_operator_pass(&mut self) -> Option<u64> {
        self.in_operator_pass = false;
        self.crash_fired.take()
    }

    /// Write-interposition head: rejects writes of a pass whose process
    /// already died at a crash point. The message closure only runs on
    /// rejection, keeping the healthy path allocation-free.
    fn check_pass_alive(&self, what: impl FnOnce() -> String) -> Result<(), ApiError> {
        if self.in_operator_pass && self.crash_fired.is_some() {
            return Err(ApiError::OperatorCrashed(what()));
        }
        Ok(())
    }

    /// Write-interposition tail: counts the write if it advanced the
    /// store revision and fires an armed crash point when the countdown
    /// reaches zero — so crash-at-`k` means writes `1..=k` landed and
    /// everything after is rejected. Counting only revision-advancing
    /// writes keeps the counter identical between the ticked and
    /// event-driven engines: a no-op pass the event engine fast-forwards
    /// over would not have moved it anyway.
    fn note_operator_write(&mut self, rev_before: u64) {
        if self.in_operator_pass && self.store.revision() != rev_before {
            self.operator_writes += 1;
            if let Some((remaining, down_for)) = self.crash_armed {
                if remaining <= 1 {
                    self.crash_armed = None;
                    self.crash_fired = Some(down_for);
                } else {
                    self.crash_armed = Some((remaining - 1, down_for));
                }
            }
        }
    }

    /// The active platform-bug configuration.
    pub fn bugs(&self) -> PlatformBugs {
        self.bugs
    }

    /// Copy-on-write snapshot of the API server, built on
    /// [`ObjectStore::snapshot`]: the versioned store plus registered CRDs,
    /// admission hooks, bug configuration, pending injected conflicts, and
    /// the crash-point interposer state. All of it is shared handles or
    /// scalars — the snapshot costs a few refcount bumps, not a traversal
    /// of cluster state.
    pub fn snapshot(&self) -> ApiServer {
        ApiServer {
            store: self.store.snapshot(),
            crds: Arc::clone(&self.crds),
            admission: Arc::clone(&self.admission),
            bugs: self.bugs,
            injected_conflicts: self.injected_conflicts,
            in_operator_pass: self.in_operator_pass,
            operator_writes: self.operator_writes,
            crash_armed: self.crash_armed,
            crash_fired: self.crash_fired,
        }
    }

    /// Read-only access to the underlying store.
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// Mutable access to the store for controllers (which bypass admission,
    /// as Kubernetes built-in controllers do).
    pub fn store_mut(&mut self) -> &mut ObjectStore {
        &mut self.store
    }

    /// Registers a CRD kind with its spec schema.
    pub fn register_crd(&mut self, kind: &str, schema: Schema) {
        Arc::make_mut(&mut self.crds).insert(kind.to_string(), schema);
    }

    /// Returns the registered schema for a CRD kind.
    pub fn crd_schema(&self, kind: &str) -> Option<&Schema> {
        self.crds.get(kind)
    }

    /// Registers an admission webhook for a CRD kind.
    pub fn register_admission(&mut self, kind: &str, hook: AdmissionHook) {
        Arc::make_mut(&mut self.admission)
            .entry(kind.to_string())
            .or_default()
            .push(hook);
    }

    /// Validates a CR spec against the registered schema, including
    /// format-specific checks (quantities, durations).
    fn validate_cr(&self, kind: &str, spec: &Value) -> Result<(), ApiError> {
        let schema = self
            .crds
            .get(kind)
            .ok_or_else(|| ApiError::UnknownKind(kind.to_string()))?;
        let mut errors: Vec<String> = crdspec::validate(schema, spec)
            .into_iter()
            .map(|e| e.to_string())
            .collect();
        // Format checks on string leaves. Under PLAT-2, the declaration
        // validation uses a looser regex than the unmarshaller, so malformed
        // quantities pass admission and reach operator code.
        let mut visit_errors = Vec::new();
        schema.walk(&crdspec::Path::root(), &mut |path, node| {
            if let SchemaKind::String {
                format: Some(f), ..
            } = &node.kind
            {
                if f == "quantity" {
                    // Check every concrete value reachable at this schema
                    // path (maps/arrays may hold several).
                    for (vpath, v) in values_at(spec, path) {
                        if let Some(s) = v.as_str() {
                            let ok = if self.bugs.quantity_validation_mismatch {
                                loose_quantity_regex(s)
                            } else {
                                s.parse::<Quantity>().is_ok()
                            };
                            if !ok {
                                visit_errors
                                    .push(format!("{vpath}: {s:?} is not a valid quantity"));
                            }
                        }
                    }
                }
            }
        });
        errors.extend(visit_errors);
        if errors.is_empty() {
            Ok(())
        } else {
            Err(ApiError::ValidationFailed(errors))
        }
    }

    /// Creates a custom resource.
    pub fn create_custom(
        &mut self,
        namespace: &str,
        name: &str,
        kind: &str,
        spec: Value,
        time: u64,
    ) -> Result<ObjKey, ApiError> {
        self.check_pass_alive(|| format!("create {kind} {namespace}/{name}"))?;
        let rev = self.store.revision();
        let result = (|| {
            validate_name(name).map_err(ApiError::InvalidName)?;
            self.validate_cr(kind, &spec)?;
            for hook in self.admission.get(kind).into_iter().flatten() {
                hook(&spec).map_err(ApiError::AdmissionDenied)?;
            }
            self.store
                .create(
                    ObjectMeta::named(namespace, name),
                    ObjectData::Custom {
                        kind: kind.to_string(),
                        spec,
                        status: Value::empty_object(),
                    },
                    time,
                )
                .map_err(ApiError::AlreadyExists)
        })();
        self.note_operator_write(rev);
        result
    }

    /// Replaces the spec of an existing custom resource (a new desired-state
    /// declaration).
    pub fn update_custom(
        &mut self,
        namespace: &str,
        name: &str,
        kind: &str,
        spec: Value,
        time: u64,
    ) -> Result<(), ApiError> {
        self.check_pass_alive(|| format!("update {kind} {namespace}/{name}"))?;
        let rev = self.store.revision();
        let result = (|| {
            self.validate_cr(kind, &spec)?;
            for hook in self.admission.get(kind).into_iter().flatten() {
                hook(&spec).map_err(ApiError::AdmissionDenied)?;
            }
            let key = ObjKey::new(Kind::Custom(kind.to_string()), namespace, name);
            if self.store.get(&key).is_none() {
                return Err(ApiError::NotFound(format!("{kind} {namespace}/{name}")));
            }
            self.store
                .update_with(&key, time, |obj| {
                    if let ObjectData::Custom { spec: s, .. } = &mut obj.data {
                        *s = spec;
                    }
                })
                .map_err(ApiError::NotFound)
        })();
        self.note_operator_write(rev);
        result
    }

    /// Writes the status subresource of a custom resource.
    pub fn update_custom_status(
        &mut self,
        key: &ObjKey,
        status: Value,
        time: u64,
    ) -> Result<(), ApiError> {
        self.check_pass_alive(|| format!("status {}/{}", key.namespace, key.name))?;
        let rev = self.store.revision();
        let result = self
            .store
            .update_with(key, time, |obj| {
                if let ObjectData::Custom { status: s, .. } = &mut obj.data {
                    *s = status;
                }
            })
            .map_err(ApiError::NotFound);
        self.note_operator_write(rev);
        result
    }

    /// Creates a typed (built-in) object, applying metadata hygiene.
    pub fn create_object(
        &mut self,
        meta: ObjectMeta,
        data: ObjectData,
        time: u64,
    ) -> Result<ObjKey, ApiError> {
        self.check_pass_alive(|| {
            format!(
                "create {} {}/{}",
                data.kind().name(),
                meta.namespace,
                meta.name
            )
        })?;
        let rev = self.store.revision();
        let result = self.create_object_inner(meta, data, time);
        self.note_operator_write(rev);
        result
    }

    /// [`ApiServer::create_object`] without write interposition, for
    /// internal reuse ([`ApiServer::apply_object`]'s create path, which is
    /// already interposed) — a single upsert must count as one write.
    fn create_object_inner(
        &mut self,
        mut meta: ObjectMeta,
        data: ObjectData,
        time: u64,
    ) -> Result<ObjKey, ApiError> {
        validate_name(&meta.name).map_err(ApiError::InvalidName)?;
        self.truncate_annotations(&mut meta);
        self.store
            .create(meta, data, time)
            .map_err(ApiError::AlreadyExists)
    }

    /// Upserts a typed object: creates it when missing, otherwise replaces
    /// its payload (enforcing selector immutability on workloads unless
    /// PLAT-5 is active). Labels and annotations in `meta` are applied on
    /// update as well.
    pub fn apply_object(
        &mut self,
        meta: ObjectMeta,
        data: ObjectData,
        time: u64,
    ) -> Result<ObjKey, ApiError> {
        let key = ObjKey::new(data.kind(), &meta.namespace, &meta.name);
        self.check_pass_alive(|| {
            format!("apply {} {}/{}", key.kind.name(), key.namespace, key.name)
        })?;
        let rev = self.store.revision();
        let result = self.apply_object_inner(key, meta, data, time);
        self.note_operator_write(rev);
        result
    }

    fn apply_object_inner(
        &mut self,
        key: ObjKey,
        mut meta: ObjectMeta,
        data: ObjectData,
        time: u64,
    ) -> Result<ObjKey, ApiError> {
        if self.injected_conflicts > 0 {
            self.injected_conflicts -= 1;
            return Err(ApiError::Conflict(format!(
                "{} {}/{}: resource version changed",
                key.kind.name(),
                key.namespace,
                key.name
            )));
        }
        self.truncate_annotations(&mut meta);
        if self.store.get(&key).is_none() {
            // Already interposed by the caller: a create-through-apply is
            // one upsert, so it must count as one write, not two.
            return self.create_object_inner(meta, data, time);
        }
        if !self.bugs.selector_mutation_allowed {
            let existing = self.store.get(&key).expect("checked above");
            let old_sel = selector_of(&existing.data);
            let new_sel = selector_of(&data);
            if let (Some(old), Some(new)) = (old_sel, new_sel) {
                if old != new {
                    return Err(ApiError::Immutable(format!(
                        "{} {}/{} selector",
                        key.kind.name(),
                        key.namespace,
                        key.name
                    )));
                }
            }
        }
        self.store
            .update_with(&key, time, |obj| {
                let mut data = data;
                preserve_status(&obj.data, &mut data);
                obj.data = data;
                // Merge semantics for identifying metadata: apply adds or
                // overwrites the keys it names and leaves others (e.g.
                // controller-stamped annotations) in place.
                for (k, v) in &meta.labels {
                    obj.meta.labels.insert(k.clone(), v.clone());
                }
                for (k, v) in &meta.annotations {
                    obj.meta.annotations.insert(k.clone(), v.clone());
                }
                if !meta.owner_references.is_empty() {
                    obj.meta.owner_references = meta.owner_references.clone();
                }
            })
            .map_err(ApiError::NotFound)?;
        Ok(key)
    }

    fn truncate_annotations(&self, meta: &mut ObjectMeta) {
        if self.bugs.annotation_truncation {
            for v in meta.annotations.values_mut() {
                if v.len() > ANNOTATION_TRUNCATION_LIMIT {
                    // PLAT-4: silent truncation at the limit.
                    v.truncate(ANNOTATION_TRUNCATION_LIMIT);
                }
            }
        }
    }

    /// Deletes an object.
    pub fn delete_object(&mut self, key: &ObjKey, time: u64) -> Result<StoredObject, ApiError> {
        self.check_pass_alive(|| {
            format!("delete {} {}/{}", key.kind.name(), key.namespace, key.name)
        })?;
        let rev = self.store.revision();
        let result = self
            .store
            .delete(key, time)
            // The handle is usually unique once removed from the map; a
            // clone only happens when a snapshot still shares the object.
            .map(|obj| Arc::try_unwrap(obj).unwrap_or_else(|shared| (*shared).clone()))
            .ok_or_else(|| ApiError::NotFound(format!("{:?}", key)));
        self.note_operator_write(rev);
        result
    }

    /// Fetches an object.
    pub fn get(&self, key: &ObjKey) -> Option<&StoredObject> {
        self.store.get(key)
    }

    /// Lists objects of a kind in a namespace.
    pub fn list(&self, kind: &Kind, namespace: &str) -> Vec<&StoredObject> {
        self.store.list(kind, namespace)
    }

    /// Watch events after a given revision.
    pub fn events_since(&self, revision: u64) -> &[WatchEvent] {
        self.store.events_since(revision)
    }
}

/// Copies controller-owned status fields from the stored object into a
/// replacement payload, emulating the status subresource: writers of the
/// spec cannot clobber status.
fn preserve_status(old: &ObjectData, new: &mut ObjectData) {
    match (old, new) {
        (ObjectData::StatefulSet(o), ObjectData::StatefulSet(n)) => {
            n.ready_replicas = o.ready_replicas;
            n.observed_generation = o.observed_generation;
        }
        (ObjectData::Deployment(o), ObjectData::Deployment(n)) => {
            n.ready_replicas = o.ready_replicas;
            n.observed_generation = o.observed_generation;
        }
        (ObjectData::Service(o), ObjectData::Service(n)) => {
            n.endpoints = o.endpoints.clone();
        }
        (ObjectData::PersistentVolumeClaim(o), ObjectData::PersistentVolumeClaim(n)) => {
            n.phase = o.phase;
        }
        (ObjectData::PodDisruptionBudget(o), ObjectData::PodDisruptionBudget(n)) => {
            n.current_healthy = o.current_healthy;
        }
        (ObjectData::Pod(o), ObjectData::Pod(n)) => {
            n.phase = o.phase;
            n.ready = o.ready;
            n.node_name = o.node_name.clone();
            n.reason = o.reason.clone();
            n.restarts = o.restarts;
            n.phase_since = o.phase_since;
        }
        (ObjectData::Custom { status: o, .. }, ObjectData::Custom { status: n, .. }) => {
            *n = o.clone();
        }
        _ => {}
    }
}

/// Extracts the selector of workload objects for immutability enforcement.
fn selector_of(data: &ObjectData) -> Option<&crate::meta::LabelSelector> {
    match data {
        ObjectData::StatefulSet(s) => Some(&s.selector),
        ObjectData::Deployment(d) => Some(&d.selector),
        _ => None,
    }
}

/// The loose validation regex of PLAT-2: accepts any sign/digit/dot/exponent
/// soup with an optional suffix, including strings the parser rejects
/// (`"1e"`, `"1.2.3Mi"`).
fn loose_quantity_regex(s: &str) -> bool {
    if s.is_empty() {
        return false;
    }
    let mut chars = s.chars().peekable();
    let mut saw_digit = false;
    while let Some(&c) = chars.peek() {
        if c.is_ascii_digit() {
            saw_digit = true;
            chars.next();
        } else if c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E' {
            chars.next();
        } else {
            break;
        }
    }
    let suffix: String = chars.collect();
    saw_digit
        && (suffix.is_empty()
            || matches!(
                suffix.as_str(),
                "m" | "k" | "M" | "G" | "T" | "P" | "E" | "Ki" | "Mi" | "Gi" | "Ti" | "Pi" | "Ei"
            ))
}

/// Returns all concrete values in `root` whose path corresponds to the
/// schema path `schema_path` (expanding `@items` over array elements and
/// `@values` over map members).
fn values_at<'v>(root: &'v Value, schema_path: &crdspec::Path) -> Vec<(crdspec::Path, &'v Value)> {
    let mut frontier: Vec<(crdspec::Path, &Value)> = vec![(crdspec::Path::root(), root)];
    for step in schema_path.steps() {
        let key = match step {
            crdspec::Step::Key(k) => k.clone(),
            crdspec::Step::Index(i) => {
                let mut next = Vec::new();
                for (p, v) in frontier {
                    if let Some(arr) = v.as_array() {
                        if let Some(item) = arr.get(*i) {
                            next.push((p.child_index(*i), item));
                        }
                    }
                }
                frontier = next;
                continue;
            }
        };
        let mut next = Vec::new();
        for (p, v) in frontier {
            match key.as_str() {
                "@items" => {
                    if let Some(arr) = v.as_array() {
                        for (i, item) in arr.iter().enumerate() {
                            next.push((p.child_index(i), item));
                        }
                    }
                }
                "@values" => {
                    if let Some(map) = v.as_object() {
                        for (k, item) in map {
                            next.push((p.child_key(k), item));
                        }
                    }
                }
                k => {
                    if let Some(child) = v.get(k) {
                        next.push((p.child_key(k), child));
                    }
                }
            }
        }
        frontier = next;
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::LabelSelector;
    use crate::objects::StatefulSet;

    fn widget_schema() -> Schema {
        Schema::object()
            .prop("size", Schema::integer().min(0).max(10))
            .prop("memory", Schema::string().format("quantity"))
            .prop("limits", Schema::map(Schema::string().format("quantity")))
    }

    #[test]
    fn create_and_update_custom() {
        let mut api = ApiServer::new(PlatformBugs::none());
        api.register_crd("Widget", widget_schema());
        let key = api
            .create_custom(
                "ns",
                "w",
                "Widget",
                Value::object([("size", Value::from(3))]),
                0,
            )
            .unwrap();
        api.update_custom(
            "ns",
            "w",
            "Widget",
            Value::object([("size", Value::from(5))]),
            1,
        )
        .unwrap();
        let obj = api.get(&key).unwrap();
        assert_eq!(obj.data.spec_value().get("size"), Some(&Value::Integer(5)));
        assert_eq!(obj.meta.generation, 2);
    }

    #[test]
    fn schema_violations_rejected() {
        let mut api = ApiServer::new(PlatformBugs::none());
        api.register_crd("Widget", widget_schema());
        let err = api
            .create_custom(
                "ns",
                "w",
                "Widget",
                Value::object([("size", Value::from(99))]),
                0,
            )
            .unwrap_err();
        assert!(matches!(err, ApiError::ValidationFailed(_)));
        assert!(matches!(
            api.create_custom("ns", "Bad_Name", "Widget", Value::empty_object(), 0),
            Err(ApiError::InvalidName(_))
        ));
        assert!(matches!(
            api.create_custom("ns", "w", "Nope", Value::empty_object(), 0),
            Err(ApiError::UnknownKind(_))
        ));
    }

    #[test]
    fn quantity_format_strict_vs_buggy() {
        // Fixed platform rejects malformed quantities.
        let mut fixed = ApiServer::new(PlatformBugs::none());
        fixed.register_crd("Widget", widget_schema());
        let err = fixed
            .create_custom(
                "ns",
                "w",
                "Widget",
                Value::object([("memory", Value::from("1e"))]),
                0,
            )
            .unwrap_err();
        assert!(matches!(err, ApiError::ValidationFailed(_)));
        // Buggy platform (PLAT-2) lets the same string through.
        let mut buggy = ApiServer::new(PlatformBugs::all());
        buggy.register_crd("Widget", widget_schema());
        assert!(buggy
            .create_custom(
                "ns",
                "w",
                "Widget",
                Value::object([("memory", Value::from("1e"))]),
                0,
            )
            .is_ok());
        // Both reject clearly non-numeric strings.
        assert!(buggy
            .create_custom(
                "ns",
                "w2",
                "Widget",
                Value::object([("memory", Value::from("lots"))]),
                0,
            )
            .is_err());
    }

    #[test]
    fn quantity_format_checked_inside_maps() {
        let mut api = ApiServer::new(PlatformBugs::none());
        api.register_crd("Widget", widget_schema());
        let err = api
            .create_custom(
                "ns",
                "w",
                "Widget",
                Value::object([("limits", Value::object([("cpu", Value::from("abc"))]))]),
                0,
            )
            .unwrap_err();
        assert!(matches!(err, ApiError::ValidationFailed(_)));
    }

    #[test]
    fn admission_hooks_run() {
        fn deny_large(spec: &Value) -> Result<(), String> {
            match spec.get("size").and_then(Value::as_i64) {
                Some(s) if s > 5 => Err("too large".to_string()),
                _ => Ok(()),
            }
        }
        let mut api = ApiServer::new(PlatformBugs::none());
        api.register_crd("Widget", widget_schema());
        api.register_admission("Widget", deny_large);
        assert!(matches!(
            api.create_custom(
                "ns",
                "w",
                "Widget",
                Value::object([("size", Value::from(7))]),
                0
            ),
            Err(ApiError::AdmissionDenied(_))
        ));
        assert!(api
            .create_custom(
                "ns",
                "w",
                "Widget",
                Value::object([("size", Value::from(3))]),
                0
            )
            .is_ok());
    }

    #[test]
    fn selector_immutability_enforced_when_fixed() {
        let mut api = ApiServer::new(PlatformBugs::none());
        let sts = StatefulSet {
            selector: LabelSelector::match_labels([("app", "a")]),
            ..StatefulSet::default()
        };
        api.apply_object(
            ObjectMeta::named("ns", "sts"),
            ObjectData::StatefulSet(sts.clone()),
            0,
        )
        .unwrap();
        let changed = StatefulSet {
            selector: LabelSelector::match_labels([("app", "b")]),
            ..sts
        };
        assert!(matches!(
            api.apply_object(
                ObjectMeta::named("ns", "sts"),
                ObjectData::StatefulSet(changed.clone()),
                1
            ),
            Err(ApiError::Immutable(_))
        ));
        // Buggy platform allows it (PLAT-5).
        let mut buggy = ApiServer::new(PlatformBugs::all());
        buggy
            .apply_object(
                ObjectMeta::named("ns", "sts"),
                ObjectData::StatefulSet(StatefulSet {
                    selector: LabelSelector::match_labels([("app", "a")]),
                    ..StatefulSet::default()
                }),
                0,
            )
            .unwrap();
        assert!(buggy
            .apply_object(
                ObjectMeta::named("ns", "sts"),
                ObjectData::StatefulSet(changed),
                1
            )
            .is_ok());
    }

    #[test]
    fn crash_point_fires_at_exact_write_boundary() {
        let mut api = ApiServer::new(PlatformBugs::none());
        // Writes outside an operator pass never count.
        api.create_object(
            ObjectMeta::named("ns", "outside"),
            ObjectData::ConfigMap(crate::objects::ConfigMap::default()),
            0,
        )
        .unwrap();
        assert_eq!(api.operator_writes(), 0);

        api.arm_operator_crash(2, 7);
        api.begin_operator_pass();
        api.create_object(
            ObjectMeta::named("ns", "a"),
            ObjectData::ConfigMap(crate::objects::ConfigMap::default()),
            1,
        )
        .unwrap();
        // A no-op apply does not advance the revision, so it is not a
        // write boundary and cannot fire the crash point.
        api.apply_object(
            ObjectMeta::named("ns", "a"),
            ObjectData::ConfigMap(crate::objects::ConfigMap::default()),
            1,
        )
        .unwrap();
        assert_eq!(api.operator_writes(), 1);
        // Write 2 lands, then the process dies: write 3 is rejected.
        api.create_object(
            ObjectMeta::named("ns", "b"),
            ObjectData::ConfigMap(crate::objects::ConfigMap::default()),
            1,
        )
        .unwrap();
        let err = api
            .create_object(
                ObjectMeta::named("ns", "c"),
                ObjectData::ConfigMap(crate::objects::ConfigMap::default()),
                1,
            )
            .unwrap_err();
        assert!(matches!(err, ApiError::OperatorCrashed(_)));
        assert_eq!(api.end_operator_pass(), Some(7));
        assert_eq!(api.operator_writes(), 2);
        assert!(api.get(&ObjKey::new(Kind::ConfigMap, "ns", "b")).is_some());
        assert!(api.get(&ObjKey::new(Kind::ConfigMap, "ns", "c")).is_none());
        // The crash state rides snapshots byte-for-byte.
        let snap = api.snapshot();
        assert_eq!(snap.operator_writes(), 2);
        assert_eq!(snap.armed_operator_crash(), None);
    }

    #[test]
    fn annotations_truncate_under_plat4() {
        let mut buggy = ApiServer::new(PlatformBugs::all());
        let huge = "x".repeat(ANNOTATION_TRUNCATION_LIMIT + 10);
        let meta = ObjectMeta::named("ns", "cm").with_annotation("blob", &huge);
        let key = buggy
            .create_object(
                meta.clone(),
                ObjectData::ConfigMap(crate::objects::ConfigMap::default()),
                0,
            )
            .unwrap();
        assert_eq!(
            buggy.get(&key).unwrap().meta.annotations["blob"].len(),
            ANNOTATION_TRUNCATION_LIMIT
        );
        let mut fixed = ApiServer::new(PlatformBugs::none());
        let key = fixed
            .create_object(
                meta,
                ObjectData::ConfigMap(crate::objects::ConfigMap::default()),
                0,
            )
            .unwrap();
        assert_eq!(
            fixed.get(&key).unwrap().meta.annotations["blob"].len(),
            huge.len()
        );
    }
}
