//! Object metadata: names, labels, annotations, owner references, and label
//! selectors.

use std::collections::BTreeMap;

use crdspec::Value;

/// A reference from a dependent object to its owner, used by the garbage
/// collector to cascade deletions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnerReference {
    /// Kind of the owning object (e.g. `"StatefulSet"`).
    pub kind: String,
    /// Name of the owning object.
    pub name: String,
    /// Unique id of the owning object.
    pub uid: u64,
}

/// Metadata carried by every state object.
///
/// # Examples
///
/// ```
/// use simkube::ObjectMeta;
///
/// let meta = ObjectMeta::named("default", "zk-0").with_label("app", "zk");
/// assert_eq!(meta.labels.get("app").map(String::as_str), Some("zk"));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObjectMeta {
    /// Namespace the object lives in.
    pub namespace: String,
    /// Object name, unique per kind and namespace.
    pub name: String,
    /// Unique id assigned by the store at creation.
    pub uid: u64,
    /// Monotonic revision of the last write to this object.
    pub resource_version: u64,
    /// Incremented on every `spec` change (not status updates).
    pub generation: u64,
    /// Identifying labels.
    pub labels: BTreeMap<String, String>,
    /// Non-identifying annotations.
    pub annotations: BTreeMap<String, String>,
    /// Owners for garbage collection.
    pub owner_references: Vec<OwnerReference>,
    /// Simulated creation timestamp (seconds).
    pub creation_timestamp: u64,
    /// Set when deletion has been requested but finalization is pending.
    pub deletion_timestamp: Option<u64>,
}

impl ObjectMeta {
    /// Creates metadata with the given namespace and name.
    pub fn named(namespace: &str, name: &str) -> ObjectMeta {
        ObjectMeta {
            namespace: namespace.to_string(),
            name: name.to_string(),
            ..ObjectMeta::default()
        }
    }

    /// Adds one label (builder style).
    pub fn with_label(mut self, key: &str, value: &str) -> ObjectMeta {
        self.labels.insert(key.to_string(), value.to_string());
        self
    }

    /// Adds one annotation (builder style).
    pub fn with_annotation(mut self, key: &str, value: &str) -> ObjectMeta {
        self.annotations.insert(key.to_string(), value.to_string());
        self
    }

    /// Adds an owner reference (builder style).
    pub fn with_owner(mut self, kind: &str, name: &str, uid: u64) -> ObjectMeta {
        self.owner_references.push(OwnerReference {
            kind: kind.to_string(),
            name: name.to_string(),
            uid,
        });
        self
    }

    /// Renders the metadata as a [`Value`] for oracle consumption.
    pub fn to_value(&self) -> Value {
        let mut v = Value::object([
            ("namespace", Value::from(self.namespace.clone())),
            ("name", Value::from(self.name.clone())),
            ("uid", Value::from(self.uid as i64)),
            ("resourceVersion", Value::from(self.resource_version as i64)),
            ("generation", Value::from(self.generation as i64)),
            (
                "creationTimestamp",
                Value::from(self.creation_timestamp as i64),
            ),
        ]);
        if !self.labels.is_empty() {
            v.as_object_mut().expect("object").insert(
                "labels".to_string(),
                Value::Object(
                    self.labels
                        .iter()
                        .map(|(k, val)| (k.clone(), Value::from(val.clone())))
                        .collect(),
                ),
            );
        }
        if !self.annotations.is_empty() {
            v.as_object_mut().expect("object").insert(
                "annotations".to_string(),
                Value::Object(
                    self.annotations
                        .iter()
                        .map(|(k, val)| (k.clone(), Value::from(val.clone())))
                        .collect(),
                ),
            );
        }
        if !self.owner_references.is_empty() {
            v.as_object_mut().expect("object").insert(
                "ownerReferences".to_string(),
                Value::array(self.owner_references.iter().map(|o| {
                    Value::object([
                        ("kind", Value::from(o.kind.clone())),
                        ("name", Value::from(o.name.clone())),
                        ("uid", Value::from(o.uid as i64)),
                    ])
                })),
            );
        }
        if let Some(ts) = self.deletion_timestamp {
            v.as_object_mut()
                .expect("object")
                .insert("deletionTimestamp".to_string(), Value::from(ts as i64));
        }
        v
    }
}

/// A label selector: a conjunction of exact-match requirements.
///
/// # Examples
///
/// ```
/// use simkube::LabelSelector;
/// use std::collections::BTreeMap;
///
/// let sel = LabelSelector::match_labels([("app", "zk")]);
/// let mut labels = BTreeMap::new();
/// labels.insert("app".to_string(), "zk".to_string());
/// labels.insert("tier".to_string(), "db".to_string());
/// assert!(sel.matches(&labels));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LabelSelector {
    /// Required exact label matches.
    pub match_labels: BTreeMap<String, String>,
}

impl LabelSelector {
    /// Builds a selector from `(key, value)` pairs.
    pub fn match_labels<K: Into<String>, V: Into<String>, I: IntoIterator<Item = (K, V)>>(
        pairs: I,
    ) -> LabelSelector {
        LabelSelector {
            match_labels: pairs
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        }
    }

    /// Returns `true` when every requirement is satisfied by `labels`.
    ///
    /// An empty selector matches nothing, following Kubernetes semantics for
    /// workload selectors (which require a non-empty selector).
    pub fn matches(&self, labels: &BTreeMap<String, String>) -> bool {
        !self.match_labels.is_empty()
            && self
                .match_labels
                .iter()
                .all(|(k, v)| labels.get(k) == Some(v))
    }
}

/// Validates an object name against the DNS-1123 subdomain rules the real
/// API server enforces.
pub fn validate_name(name: &str) -> Result<(), String> {
    if name.is_empty() {
        return Err("name must not be empty".to_string());
    }
    if name.len() > 253 {
        return Err("name longer than 253 characters".to_string());
    }
    let ok_char = |c: char| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-' || c == '.';
    if !name.chars().all(ok_char) {
        return Err(format!("name {name:?} contains invalid characters"));
    }
    let first = name.chars().next().expect("non-empty");
    let last = name.chars().last().expect("non-empty");
    if !first.is_ascii_alphanumeric() || !last.is_ascii_alphanumeric() {
        return Err(format!("name {name:?} must start and end alphanumeric"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_requires_all_labels() {
        let sel = LabelSelector::match_labels([("app", "zk"), ("tier", "db")]);
        let mut labels = BTreeMap::new();
        labels.insert("app".to_string(), "zk".to_string());
        assert!(!sel.matches(&labels));
        labels.insert("tier".to_string(), "db".to_string());
        assert!(sel.matches(&labels));
        labels.insert("extra".to_string(), "x".to_string());
        assert!(sel.matches(&labels));
    }

    #[test]
    fn empty_selector_matches_nothing() {
        let sel = LabelSelector::default();
        assert!(!sel.matches(&BTreeMap::new()));
    }

    #[test]
    fn name_validation() {
        assert!(validate_name("zk-cluster-0").is_ok());
        assert!(validate_name("a").is_ok());
        assert!(validate_name("my.app").is_ok());
        assert!(validate_name("").is_err());
        assert!(validate_name("-bad").is_err());
        assert!(validate_name("bad-").is_err());
        assert!(validate_name("Upper").is_err());
        assert!(validate_name("under_score").is_err());
        assert!(validate_name(&"x".repeat(300)).is_err());
    }

    #[test]
    fn meta_to_value_includes_sections() {
        let meta = ObjectMeta::named("ns", "obj")
            .with_label("a", "b")
            .with_owner("StatefulSet", "parent", 7);
        let v = meta.to_value();
        assert_eq!(v.get("name"), Some(&Value::from("obj")));
        assert!(v.get("labels").is_some());
        assert!(v.get("ownerReferences").is_some());
        assert!(v.get("deletionTimestamp").is_none());
    }
}
