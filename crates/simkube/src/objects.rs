//! Typed state objects and their uniform [`Value`] rendering.
//!
//! Every entity in the simulated cluster — pods, stateful sets, volumes,
//! services, custom resources — is a [`StoredObject`]: metadata plus a typed
//! [`ObjectData`] payload. Objects render to a uniform
//! `{kind, metadata, spec, status}` [`Value`] tree, which is exactly the
//! "highly interpretable state objects" property of Kubernetes that Acto's
//! oracles exploit (paper §2, §5.3).

use std::collections::BTreeMap;

use crdspec::Value;

use crate::meta::{LabelSelector, ObjectMeta};
use crate::quantity::Quantity;
use crate::resources::{Affinity, ResourceRequirements, SecurityContext, Taint, Toleration};

/// The kind of a state object.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Kind {
    /// A pod.
    Pod,
    /// A stateful set.
    StatefulSet,
    /// A deployment.
    Deployment,
    /// A service.
    Service,
    /// A persistent volume claim.
    PersistentVolumeClaim,
    /// A config map.
    ConfigMap,
    /// A secret.
    Secret,
    /// A pod disruption budget.
    PodDisruptionBudget,
    /// An ingress.
    Ingress,
    /// A cluster node.
    Node,
    /// A custom resource of the named CRD kind.
    Custom(String),
}

impl Kind {
    /// Returns the kind's display name (the CRD kind for custom resources).
    pub fn name(&self) -> &str {
        match self {
            Kind::Pod => "Pod",
            Kind::StatefulSet => "StatefulSet",
            Kind::Deployment => "Deployment",
            Kind::Service => "Service",
            Kind::PersistentVolumeClaim => "PersistentVolumeClaim",
            Kind::ConfigMap => "ConfigMap",
            Kind::Secret => "Secret",
            Kind::PodDisruptionBudget => "PodDisruptionBudget",
            Kind::Ingress => "Ingress",
            Kind::Node => "Node",
            Kind::Custom(name) => name,
        }
    }
}

/// A container within a pod or pod template.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Container {
    /// Container name.
    pub name: String,
    /// Image reference (`repo/name:tag`).
    pub image: String,
    /// Compute resources.
    pub resources: ResourceRequirements,
    /// Environment variables.
    pub env: BTreeMap<String, String>,
    /// Exposed container ports.
    pub ports: Vec<u16>,
    /// Container-level security context.
    pub security: SecurityContext,
    /// Hash of the configuration the container was started with; a change
    /// requires a restart to take effect.
    pub config_hash: String,
    /// Names of volumes mounted into the container.
    pub volume_mounts: Vec<String>,
}

impl Container {
    /// Renders as a [`Value`].
    pub fn to_value(&self) -> Value {
        Value::object([
            ("name", Value::from(self.name.clone())),
            ("image", Value::from(self.image.clone())),
            ("resources", self.resources.to_value()),
            (
                "env",
                Value::Object(
                    self.env
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::from(v.clone())))
                        .collect(),
                ),
            ),
            (
                "ports",
                Value::array(self.ports.iter().map(|p| Value::from(i64::from(*p)))),
            ),
            ("configHash", Value::from(self.config_hash.clone())),
            (
                "volumeMounts",
                Value::array(self.volume_mounts.iter().map(|v| Value::from(v.clone()))),
            ),
        ])
    }
}

/// Pod lifecycle phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PodPhase {
    /// Accepted but not yet scheduled or started.
    Pending,
    /// All containers running.
    Running,
    /// Containers terminated with failure.
    Failed,
    /// Containers terminated successfully.
    Succeeded,
}

impl PodPhase {
    /// Display name used in status objects.
    pub fn name(&self) -> &'static str {
        match self {
            PodPhase::Pending => "Pending",
            PodPhase::Running => "Running",
            PodPhase::Failed => "Failed",
            PodPhase::Succeeded => "Succeeded",
        }
    }
}

/// A pod: the scheduling unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Pod {
    /// Containers to run.
    pub containers: Vec<Container>,
    /// Scheduling affinity rules.
    pub affinity: Affinity,
    /// Node taint tolerations.
    pub tolerations: Vec<Toleration>,
    /// Required node labels.
    pub node_selector: BTreeMap<String, String>,
    /// Pod-level security context.
    pub security: SecurityContext,
    /// Service account the pod runs as.
    pub service_account: String,
    /// Scheduling priority class.
    pub priority_class: String,
    /// Persistent volume claims the pod mounts (claim names).
    pub claims: Vec<String>,
    /// Node the pod is bound to, once scheduled.
    pub node_name: Option<String>,
    /// Lifecycle phase.
    pub phase: PodPhase,
    /// Human-readable reason when not `Running` (e.g. `ImagePullBackOff`).
    pub reason: String,
    /// Restart count across all containers.
    pub restarts: u32,
    /// Whether the readiness gate passed.
    pub ready: bool,
    /// Simulated time the pod entered its current phase.
    pub phase_since: u64,
}

impl Default for Pod {
    fn default() -> Self {
        Pod {
            containers: Vec::new(),
            affinity: Affinity::default(),
            tolerations: Vec::new(),
            node_selector: BTreeMap::new(),
            security: SecurityContext::default(),
            service_account: "default".to_string(),
            priority_class: String::new(),
            claims: Vec::new(),
            node_name: None,
            phase: PodPhase::Pending,
            reason: String::new(),
            restarts: 0,
            ready: false,
            phase_since: 0,
        }
    }
}

impl Pod {
    /// Sums effective requests for `resource` across containers.
    pub fn total_request(&self, resource: &str) -> Quantity {
        self.containers
            .iter()
            .map(|c| c.resources.effective_request(resource))
            .fold(Quantity::zero(), |acc, q| acc + q)
    }

    /// Renders the pod spec section.
    pub fn spec_value(&self) -> Value {
        Value::object([
            (
                "containers",
                Value::array(self.containers.iter().map(Container::to_value)),
            ),
            ("affinity", self.affinity.to_value()),
            (
                "nodeSelector",
                Value::Object(
                    self.node_selector
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::from(v.clone())))
                        .collect(),
                ),
            ),
            ("tolerations", tolerations_value(&self.tolerations)),
            ("serviceAccount", Value::from(self.service_account.clone())),
            ("priorityClass", Value::from(self.priority_class.clone())),
            (
                "claims",
                Value::array(self.claims.iter().map(|c| Value::from(c.clone()))),
            ),
            ("securityContext", security_value(&self.security)),
        ])
    }

    /// Renders the pod status section.
    pub fn status_value(&self) -> Value {
        Value::object([
            ("phase", Value::from(self.phase.name())),
            ("reason", Value::from(self.reason.clone())),
            (
                "nodeName",
                self.node_name
                    .as_ref()
                    .map(|n| Value::from(n.clone()))
                    .unwrap_or(Value::Null),
            ),
            ("restarts", Value::from(i64::from(self.restarts))),
            ("ready", Value::from(self.ready)),
        ])
    }
}

/// A pod template embedded in workload objects.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PodTemplate {
    /// Labels stamped onto created pods.
    pub labels: BTreeMap<String, String>,
    /// Annotations stamped onto created pods.
    pub annotations: BTreeMap<String, String>,
    /// Containers of each pod.
    pub containers: Vec<Container>,
    /// Affinity of each pod.
    pub affinity: Affinity,
    /// Tolerations of each pod.
    pub tolerations: Vec<Toleration>,
    /// Node selector of each pod.
    pub node_selector: BTreeMap<String, String>,
    /// Pod security context.
    pub security: SecurityContext,
    /// Service account.
    pub service_account: String,
    /// Priority class.
    pub priority_class: String,
}

impl PodTemplate {
    /// Instantiates a [`Pod`] from the template.
    pub fn make_pod(&self) -> Pod {
        Pod {
            containers: self.containers.clone(),
            affinity: self.affinity.clone(),
            tolerations: self.tolerations.clone(),
            node_selector: self.node_selector.clone(),
            security: self.security.clone(),
            service_account: if self.service_account.is_empty() {
                "default".to_string()
            } else {
                self.service_account.clone()
            },
            priority_class: self.priority_class.clone(),
            ..Pod::default()
        }
    }

    /// Renders as a [`Value`] (used in workload spec sections).
    pub fn to_value(&self) -> Value {
        Value::object([
            (
                "labels",
                Value::Object(
                    self.labels
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::from(v.clone())))
                        .collect(),
                ),
            ),
            (
                "annotations",
                Value::Object(
                    self.annotations
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::from(v.clone())))
                        .collect(),
                ),
            ),
            (
                "containers",
                Value::array(self.containers.iter().map(Container::to_value)),
            ),
            ("affinity", self.affinity.to_value()),
            (
                "nodeSelector",
                Value::Object(
                    self.node_selector
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::from(v.clone())))
                        .collect(),
                ),
            ),
            ("tolerations", tolerations_value(&self.tolerations)),
            ("securityContext", security_value(&self.security)),
            ("serviceAccount", Value::from(self.service_account.clone())),
            ("priorityClass", Value::from(self.priority_class.clone())),
        ])
    }
}

/// FNV-1a fingerprint of a string, used for template and configuration
/// fingerprints stamped into pod specs.
pub fn fnv_fingerprint(input: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in input.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// Renders a toleration list as a [`Value`].
fn tolerations_value(tolerations: &[Toleration]) -> Value {
    Value::array(tolerations.iter().map(|t| {
        Value::object([
            ("key", Value::from(t.key.clone())),
            ("value", Value::from(t.value.clone())),
            (
                "operator",
                Value::from(match t.operator {
                    crate::resources::TolerationOperator::Equal => "Equal",
                    crate::resources::TolerationOperator::Exists => "Exists",
                }),
            ),
        ])
    }))
}

/// Renders a security context as a [`Value`].
fn security_value(security: &SecurityContext) -> Value {
    Value::object([
        (
            "runAsUser",
            security.run_as_user.map(Value::from).unwrap_or(Value::Null),
        ),
        ("runAsNonRoot", Value::from(security.run_as_non_root)),
        (
            "readOnlyRootFilesystem",
            Value::from(security.read_only_root_filesystem),
        ),
        (
            "fsGroup",
            security.fs_group.map(Value::from).unwrap_or(Value::Null),
        ),
    ])
}

/// A persistent volume claim template within a stateful set.
#[derive(Debug, Clone, PartialEq)]
pub struct ClaimTemplate {
    /// Claim name prefix.
    pub name: String,
    /// Requested storage size.
    pub size: Quantity,
    /// Storage class name.
    pub storage_class: String,
}

/// Update strategy for stateful sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdateStrategy {
    /// Pods are replaced one at a time, highest ordinal first.
    #[default]
    RollingUpdate,
    /// Pods are only replaced when deleted manually.
    OnDelete,
}

/// A stateful set managing an ordered group of pods with stable identity.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatefulSet {
    /// Desired replica count.
    pub replicas: i32,
    /// Pod selector (must match template labels).
    pub selector: LabelSelector,
    /// Template for created pods.
    pub template: PodTemplate,
    /// Volume claim templates (one claim per template per pod).
    pub claim_templates: Vec<ClaimTemplate>,
    /// Headless service governing network identity.
    pub service_name: String,
    /// Update strategy.
    pub update_strategy: UpdateStrategy,
    /// Observed CR generation (status).
    pub observed_generation: u64,
    /// Ready replica count (status).
    pub ready_replicas: i32,
}

impl StatefulSet {
    /// Renders the spec section.
    pub fn spec_value(&self) -> Value {
        Value::object([
            ("replicas", Value::from(i64::from(self.replicas))),
            ("serviceName", Value::from(self.service_name.clone())),
            ("template", self.template.to_value()),
            (
                "claimTemplates",
                Value::array(self.claim_templates.iter().map(|c| {
                    Value::object([
                        ("name", Value::from(c.name.clone())),
                        ("size", Value::from(c.size.to_string())),
                        ("storageClass", Value::from(c.storage_class.clone())),
                    ])
                })),
            ),
            (
                "updateStrategy",
                Value::from(match self.update_strategy {
                    UpdateStrategy::RollingUpdate => "RollingUpdate",
                    UpdateStrategy::OnDelete => "OnDelete",
                }),
            ),
        ])
    }

    /// Renders the status section.
    pub fn status_value(&self) -> Value {
        Value::object([
            ("readyReplicas", Value::from(i64::from(self.ready_replicas))),
            (
                "observedGeneration",
                Value::from(self.observed_generation as i64),
            ),
        ])
    }
}

/// A deployment managing interchangeable pods.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Deployment {
    /// Desired replica count.
    pub replicas: i32,
    /// Pod selector.
    pub selector: LabelSelector,
    /// Template for created pods.
    pub template: PodTemplate,
    /// Ready replica count (status).
    pub ready_replicas: i32,
    /// Observed generation (status).
    pub observed_generation: u64,
}

impl Deployment {
    /// Renders the spec section.
    pub fn spec_value(&self) -> Value {
        Value::object([
            ("replicas", Value::from(i64::from(self.replicas))),
            ("template", self.template.to_value()),
        ])
    }

    /// Renders the status section.
    pub fn status_value(&self) -> Value {
        Value::object([
            ("readyReplicas", Value::from(i64::from(self.ready_replicas))),
            (
                "observedGeneration",
                Value::from(self.observed_generation as i64),
            ),
        ])
    }
}

/// Service exposure type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServiceType {
    /// Internal cluster IP (default).
    #[default]
    ClusterIp,
    /// Headless service (no virtual IP; used by stateful sets).
    Headless,
    /// Exposed on every node's port.
    NodePort,
    /// Exposed via an external load balancer.
    LoadBalancer,
}

impl ServiceType {
    /// Display name used in spec sections.
    pub fn name(&self) -> &'static str {
        match self {
            ServiceType::ClusterIp => "ClusterIP",
            ServiceType::Headless => "Headless",
            ServiceType::NodePort => "NodePort",
            ServiceType::LoadBalancer => "LoadBalancer",
        }
    }
}

/// A service routing traffic to selected pods.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Service {
    /// Pod selector.
    pub selector: LabelSelector,
    /// Exposed ports.
    pub ports: Vec<u16>,
    /// Exposure type.
    pub service_type: ServiceType,
    /// Names of ready pods currently backing the service (status).
    pub endpoints: Vec<String>,
}

impl Service {
    /// Renders the spec section.
    pub fn spec_value(&self) -> Value {
        Value::object([
            ("type", Value::from(self.service_type.name())),
            (
                "ports",
                Value::array(self.ports.iter().map(|p| Value::from(i64::from(*p)))),
            ),
            (
                "selector",
                Value::Object(
                    self.selector
                        .match_labels
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::from(v.clone())))
                        .collect(),
                ),
            ),
        ])
    }

    /// Renders the status section.
    pub fn status_value(&self) -> Value {
        Value::object([(
            "endpoints",
            Value::array(self.endpoints.iter().map(|e| Value::from(e.clone()))),
        )])
    }
}

/// Binding phase of a persistent volume claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClaimPhase {
    /// Awaiting a matching volume.
    #[default]
    Pending,
    /// Bound to a volume.
    Bound,
}

/// A persistent volume claim.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistentVolumeClaim {
    /// Requested size.
    pub size: Quantity,
    /// Storage class.
    pub storage_class: String,
    /// Binding phase (status).
    pub phase: ClaimPhase,
}

impl PersistentVolumeClaim {
    /// Renders the spec section.
    pub fn spec_value(&self) -> Value {
        Value::object([
            ("size", Value::from(self.size.to_string())),
            ("storageClass", Value::from(self.storage_class.clone())),
        ])
    }

    /// Renders the status section.
    pub fn status_value(&self) -> Value {
        Value::object([(
            "phase",
            Value::from(match self.phase {
                ClaimPhase::Pending => "Pending",
                ClaimPhase::Bound => "Bound",
            }),
        )])
    }
}

/// A config map of plain key/value data.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConfigMap {
    /// Configuration entries.
    pub data: BTreeMap<String, String>,
}

/// A secret of sensitive key/value data.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Secret {
    /// Secret entries (values stored plainly in the simulation).
    pub data: BTreeMap<String, String>,
}

/// A pod disruption budget.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Pdb {
    /// Pod selector.
    pub selector: LabelSelector,
    /// Minimum pods that must stay available.
    pub min_available: i32,
    /// Currently available matching pods (status).
    pub current_healthy: i32,
}

impl Pdb {
    /// Renders the spec section.
    pub fn spec_value(&self) -> Value {
        Value::object([
            ("minAvailable", Value::from(i64::from(self.min_available))),
            (
                "selector",
                Value::Object(
                    self.selector
                        .match_labels
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::from(v.clone())))
                        .collect(),
                ),
            ),
        ])
    }

    /// Renders the status section.
    pub fn status_value(&self) -> Value {
        Value::object([(
            "currentHealthy",
            Value::from(i64::from(self.current_healthy)),
        )])
    }
}

/// An ingress exposing a service externally.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Ingress {
    /// External hostname.
    pub host: String,
    /// Backing service name.
    pub service_name: String,
    /// TLS secret name (empty when TLS is off).
    pub tls_secret: String,
}

impl Ingress {
    /// Renders the spec section.
    pub fn spec_value(&self) -> Value {
        Value::object([
            ("host", Value::from(self.host.clone())),
            ("serviceName", Value::from(self.service_name.clone())),
            (
                "tls",
                Value::object([("secretName", Value::from(self.tls_secret.clone()))]),
            ),
        ])
    }
}

/// A cluster node.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Allocatable capacity by resource name.
    pub capacity: BTreeMap<String, Quantity>,
    /// Node labels (for selectors and affinity).
    pub labels: BTreeMap<String, String>,
    /// Node taints.
    pub taints: Vec<Taint>,
    /// Whether the node accepts pods.
    pub ready: bool,
}

impl Node {
    /// Creates a ready node with the given cpu/memory capacity.
    ///
    /// # Panics
    ///
    /// Panics if the quantity literals are malformed.
    pub fn with_capacity(cpu: &str, memory: &str) -> Node {
        let mut capacity = BTreeMap::new();
        capacity.insert("cpu".to_string(), cpu.parse().expect("cpu quantity"));
        capacity.insert(
            "memory".to_string(),
            memory.parse().expect("memory quantity"),
        );
        Node {
            capacity,
            labels: BTreeMap::new(),
            taints: Vec::new(),
            ready: true,
        }
    }
}

/// The typed payload of a stored object.
#[derive(Debug, Clone, PartialEq)]
pub enum ObjectData {
    /// A pod.
    Pod(Pod),
    /// A stateful set.
    StatefulSet(StatefulSet),
    /// A deployment.
    Deployment(Deployment),
    /// A service.
    Service(Service),
    /// A persistent volume claim.
    PersistentVolumeClaim(PersistentVolumeClaim),
    /// A config map.
    ConfigMap(ConfigMap),
    /// A secret.
    Secret(Secret),
    /// A pod disruption budget.
    PodDisruptionBudget(Pdb),
    /// An ingress.
    Ingress(Ingress),
    /// A node.
    Node(Node),
    /// A custom resource: declared spec and controller-written status.
    Custom {
        /// CRD kind name.
        kind: String,
        /// Declared desired state.
        spec: Value,
        /// Controller-reported status.
        status: Value,
    },
}

impl ObjectData {
    /// Returns the object's [`Kind`].
    pub fn kind(&self) -> Kind {
        match self {
            ObjectData::Pod(_) => Kind::Pod,
            ObjectData::StatefulSet(_) => Kind::StatefulSet,
            ObjectData::Deployment(_) => Kind::Deployment,
            ObjectData::Service(_) => Kind::Service,
            ObjectData::PersistentVolumeClaim(_) => Kind::PersistentVolumeClaim,
            ObjectData::ConfigMap(_) => Kind::ConfigMap,
            ObjectData::Secret(_) => Kind::Secret,
            ObjectData::PodDisruptionBudget(_) => Kind::PodDisruptionBudget,
            ObjectData::Ingress(_) => Kind::Ingress,
            ObjectData::Node(_) => Kind::Node,
            ObjectData::Custom { kind, .. } => Kind::Custom(kind.clone()),
        }
    }

    /// Structural fast path for "is the spec section unchanged?".
    ///
    /// [`ObjectStore::update_with`](crate::store::ObjectStore::update_with)
    /// must decide on every modified write whether to bump `generation`,
    /// and rendering two full spec [`Value`] trees dominates write cost on
    /// production-scale clusters where most writes are pod status
    /// transitions. The pod arm compares exactly the fields
    /// [`Pod::spec_value`] projects (pinned by a debug assertion); other
    /// kinds fall back to comparing rendered specs.
    pub fn spec_eq(&self, other: &ObjectData) -> bool {
        match (self, other) {
            (ObjectData::Pod(a), ObjectData::Pod(b)) => {
                let eq = a.containers == b.containers
                    && a.affinity == b.affinity
                    && a.tolerations == b.tolerations
                    && a.node_selector == b.node_selector
                    && a.security == b.security
                    && a.service_account == b.service_account
                    && a.priority_class == b.priority_class
                    && a.claims == b.claims;
                debug_assert_eq!(
                    eq,
                    a.spec_value() == b.spec_value(),
                    "Pod::spec_eq fast path diverged from Pod::spec_value projection"
                );
                eq
            }
            _ => self.spec_value() == other.spec_value(),
        }
    }

    /// Renders the spec section as a [`Value`].
    pub fn spec_value(&self) -> Value {
        match self {
            ObjectData::Pod(p) => p.spec_value(),
            ObjectData::StatefulSet(s) => s.spec_value(),
            ObjectData::Deployment(d) => d.spec_value(),
            ObjectData::Service(s) => s.spec_value(),
            ObjectData::PersistentVolumeClaim(p) => p.spec_value(),
            ObjectData::ConfigMap(c) => Value::object([(
                "data",
                Value::Object(
                    c.data
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::from(v.clone())))
                        .collect(),
                ),
            )]),
            ObjectData::Secret(s) => Value::object([(
                "data",
                Value::Object(
                    s.data
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::from(v.clone())))
                        .collect(),
                ),
            )]),
            ObjectData::PodDisruptionBudget(p) => p.spec_value(),
            ObjectData::Ingress(i) => i.spec_value(),
            ObjectData::Node(n) => Value::object([
                (
                    "capacity",
                    Value::Object(
                        n.capacity
                            .iter()
                            .map(|(k, q)| (k.clone(), Value::from(q.to_string())))
                            .collect(),
                    ),
                ),
                ("ready", Value::from(n.ready)),
            ]),
            ObjectData::Custom { spec, .. } => spec.clone(),
        }
    }

    /// Renders the status section as a [`Value`].
    pub fn status_value(&self) -> Value {
        match self {
            ObjectData::Pod(p) => p.status_value(),
            ObjectData::StatefulSet(s) => s.status_value(),
            ObjectData::Deployment(d) => d.status_value(),
            ObjectData::Service(s) => s.status_value(),
            ObjectData::PersistentVolumeClaim(p) => p.status_value(),
            ObjectData::PodDisruptionBudget(p) => p.status_value(),
            ObjectData::Custom { status, .. } => status.clone(),
            _ => Value::empty_object(),
        }
    }

    /// Borrowed access to one field of a custom object's status, avoiding
    /// the full [`ObjectData::status_value`] render. `None` for typed
    /// objects: their rendered statuses carry no free-form fields.
    pub fn status_field(&self, field: &str) -> Option<&Value> {
        match self {
            ObjectData::Custom { status, .. } => status.get(field),
            _ => None,
        }
    }
}

/// A stored object: metadata plus typed payload.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredObject {
    /// Object metadata.
    pub meta: ObjectMeta,
    /// Typed payload.
    pub data: ObjectData,
}

impl StoredObject {
    /// Renders the full object as a uniform `{kind, metadata, spec, status}`
    /// value for oracle consumption.
    pub fn to_value(&self) -> Value {
        Value::object([
            ("kind", Value::from(self.data.kind().name())),
            ("metadata", self.meta.to_value()),
            ("spec", self.data.spec_value()),
            ("status", self.data.status_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_pod() -> Pod {
        Pod {
            containers: vec![Container {
                name: "main".to_string(),
                image: "repo/zk:3.8".to_string(),
                resources: ResourceRequirements::new()
                    .request("cpu", "500m")
                    .request("memory", "1Gi"),
                ..Container::default()
            }],
            ..Pod::default()
        }
    }

    #[test]
    fn pod_total_request_sums_containers() {
        let mut pod = sample_pod();
        pod.containers.push(Container {
            name: "sidecar".to_string(),
            image: "repo/agent:1".to_string(),
            resources: ResourceRequirements::new().request("cpu", "250m"),
            ..Container::default()
        });
        assert_eq!(pod.total_request("cpu"), "750m".parse().unwrap());
        assert_eq!(pod.total_request("memory"), "1Gi".parse().unwrap());
    }

    #[test]
    fn stored_object_value_has_uniform_sections() {
        let obj = StoredObject {
            meta: ObjectMeta::named("default", "zk-0"),
            data: ObjectData::Pod(sample_pod()),
        };
        let v = obj.to_value();
        assert_eq!(v.get("kind"), Some(&Value::from("Pod")));
        assert!(v.get("metadata").is_some());
        assert!(v.get("spec").is_some());
        assert!(v.get("status").is_some());
        assert_eq!(
            v.get_path(&"status.phase".parse().unwrap()),
            Some(&Value::from("Pending"))
        );
    }

    #[test]
    fn template_instantiates_pods() {
        let tpl = PodTemplate {
            containers: sample_pod().containers,
            service_account: String::new(),
            ..PodTemplate::default()
        };
        let pod = tpl.make_pod();
        assert_eq!(pod.service_account, "default");
        assert_eq!(pod.phase, PodPhase::Pending);
        assert_eq!(pod.containers.len(), 1);
    }

    #[test]
    fn custom_resource_values_pass_through() {
        let spec = Value::object([("replicas", Value::from(3))]);
        let data = ObjectData::Custom {
            kind: "ZookeeperCluster".to_string(),
            spec: spec.clone(),
            status: Value::empty_object(),
        };
        assert_eq!(data.kind().name(), "ZookeeperCluster");
        assert_eq!(data.spec_value(), spec);
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(Kind::Pod.name(), "Pod");
        assert_eq!(Kind::Custom("X".to_string()).name(), "X");
        assert_eq!(Kind::PodDisruptionBudget.name(), "PodDisruptionBudget");
    }
}
