//! Persistent ordered map with structural sharing.
//!
//! A hand-rolled B-tree whose nodes live behind `Arc`, so cloning the map is
//! an O(1) pointer bump and every clone shares the entire tree. Mutation uses
//! `Arc::make_mut` to copy only the nodes along the root-to-leaf path that is
//! actually touched (O(log n) small nodes), leaving the rest of the tree
//! shared with older clones. This is what makes `ObjectStore::snapshot`
//! cheap: a snapshot and its parent diverge lazily, one path at a time.
//!
//! Deliberate simplifications, fine for our workload:
//! - no underflow rebalancing on `remove`: emptied nodes are pruned and the
//!   root collapses, so the tree height never grows on delete, it just may
//!   stay taller than strictly necessary until enough keys are removed;
//! - iteration order is the key order (`K: Ord`), same as `BTreeMap`.

use std::cmp::Ordering;
use std::sync::Arc;
use std::sync::OnceLock;

/// Max entries per leaf / max children per branch before a split.
const MAX_ENTRIES: usize = 16;

/// Result of a recursive insert: the replaced value, if any, plus an
/// optional split (separator key and the new right sibling).
type InsertResult<K, V> = (Option<V>, Option<(K, Arc<Node<K, V>>)>);

/// A tree node plus a lazily-computed digest of its subtree.
///
/// The digest cache turns the B-tree into a merkle tree for
/// [`PMap::digest_sum`]: once a subtree's digest is computed it is reused
/// until a write copies (and thereby invalidates) the path through it, so
/// re-digesting a map after k point-writes touches only the k modified
/// root-to-leaf paths. Cloning keeps the cached digest — the clone holds the
/// same content — and `touch` clears it on the copy-on-write mutation path.
#[derive(Clone)]
struct Node<K, V> {
    digest: OnceLock<u64>,
    body: Body<K, V>,
}

#[derive(Clone)]
enum Body<K, V> {
    Leaf(Vec<(K, V)>),
    Branch {
        /// `keys[i]` is the minimum key reachable under `children[i + 1]`.
        keys: Vec<K>,
        children: Vec<Arc<Node<K, V>>>,
    },
}

impl<K, V> Node<K, V> {
    fn leaf(entries: Vec<(K, V)>) -> Arc<Self> {
        Arc::new(Node {
            digest: OnceLock::new(),
            body: Body::Leaf(entries),
        })
    }

    fn branch(keys: Vec<K>, children: Vec<Arc<Node<K, V>>>) -> Arc<Self> {
        Arc::new(Node {
            digest: OnceLock::new(),
            body: Body::Branch { keys, children },
        })
    }

    /// `Arc::make_mut` plus digest-cache invalidation: every mutation path
    /// must go through here so stale subtree digests can never be observed.
    fn touch(node: &mut Arc<Self>) -> &mut Body<K, V>
    where
        K: Clone,
        V: Clone,
    {
        let inner = Arc::make_mut(node);
        inner.digest = OnceLock::new();
        &mut inner.body
    }
}

/// Persistent ordered map: `clone()` is O(1), writes copy only the touched
/// root-to-leaf path.
pub struct PMap<K, V> {
    root: Option<Arc<Node<K, V>>>,
    len: usize,
}

impl<K, V> Clone for PMap<K, V> {
    fn clone(&self) -> Self {
        PMap {
            root: self.root.clone(),
            len: self.len,
        }
    }
}

impl<K, V> Default for PMap<K, V> {
    fn default() -> Self {
        PMap { root: None, len: 0 }
    }
}

impl<K: Ord + Clone + std::fmt::Debug, V: Clone + std::fmt::Debug> std::fmt::Debug for PMap<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: Ord + Clone, V: Clone + PartialEq> PartialEq for PMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        // Structurally-shared maps (clones, unchanged checkpoints) compare
        // in O(1).
        match (&self.root, &other.root) {
            (None, None) => return true,
            (Some(a), Some(b)) if Arc::ptr_eq(a, b) => return true,
            _ => {}
        }
        self.iter().eq(other.iter())
    }
}

impl<K: Ord + Clone, V: Clone + Eq> Eq for PMap<K, V> {}

impl<K: Ord + Clone, V: Clone> PMap<K, V> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn get(&self, key: &K) -> Option<&V> {
        let mut node = self.root.as_deref()?;
        loop {
            match &node.body {
                Body::Leaf(entries) => {
                    return entries
                        .binary_search_by(|(k, _)| k.cmp(key))
                        .ok()
                        .map(|i| &entries[i].1);
                }
                Body::Branch { keys, children } => {
                    let idx = keys.partition_point(|sep| sep <= key);
                    node = &children[idx];
                }
            }
        }
    }

    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Mutable access to a value; copies the path to the value's leaf if it
    /// is shared with another clone of the map. A miss copies nothing.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        // Probe first so a miss never triggers a path copy.
        if !self.contains_key(key) {
            return None;
        }
        let root = self.root.as_mut()?;
        Some(Self::get_mut_rec(root, key))
    }

    /// Descends with `Node::touch` per level. The key must exist.
    fn get_mut_rec<'a>(node: &'a mut Arc<Node<K, V>>, key: &K) -> &'a mut V {
        match Node::touch(node) {
            Body::Leaf(entries) => {
                let i = entries
                    .binary_search_by(|(k, _)| k.cmp(key))
                    .expect("get_mut_rec: key checked present");
                &mut entries[i].1
            }
            Body::Branch { keys, children } => {
                let idx = keys.partition_point(|sep| sep <= key);
                Self::get_mut_rec(&mut children[idx], key)
            }
        }
    }

    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.root.as_mut() {
            None => {
                self.root = Some(Node::leaf(vec![(key, value)]));
                self.len = 1;
                None
            }
            Some(root) => {
                let (replaced, split) = Self::insert_rec(root, key, value);
                if let Some((sep, right)) = split {
                    let left = self.root.take().unwrap();
                    self.root = Some(Node::branch(vec![sep], vec![left, right]));
                }
                if replaced.is_none() {
                    self.len += 1;
                }
                replaced
            }
        }
    }

    /// Returns (replaced value, optional split: (separator, new right sibling)).
    fn insert_rec(node: &mut Arc<Node<K, V>>, key: K, value: V) -> InsertResult<K, V> {
        match Node::touch(node) {
            Body::Leaf(entries) => match entries.binary_search_by(|(k, _)| k.cmp(&key)) {
                Ok(i) => (Some(std::mem::replace(&mut entries[i].1, value)), None),
                Err(i) => {
                    entries.insert(i, (key, value));
                    if entries.len() > MAX_ENTRIES {
                        let right = entries.split_off(entries.len() / 2);
                        let sep = right[0].0.clone();
                        (None, Some((sep, Node::leaf(right))))
                    } else {
                        (None, None)
                    }
                }
            },
            Body::Branch { keys, children } => {
                let idx = keys.partition_point(|sep| *sep <= key);
                let (replaced, split) = Self::insert_rec(&mut children[idx], key, value);
                if let Some((sep, right)) = split {
                    keys.insert(idx, sep);
                    children.insert(idx + 1, right);
                    if children.len() > MAX_ENTRIES + 1 {
                        let mid = keys.len() / 2;
                        let right_keys = keys.split_off(mid + 1);
                        let sep_up = keys.pop().unwrap();
                        let right_children = children.split_off(mid + 1);
                        let sibling = Node::branch(right_keys, right_children);
                        return (replaced, Some((sep_up, sibling)));
                    }
                }
                (replaced, None)
            }
        }
    }

    pub fn remove(&mut self, key: &K) -> Option<V> {
        let root = self.root.as_mut()?;
        let (removed, now_empty) = Self::remove_rec(root, key);
        if removed.is_some() {
            self.len -= 1;
            if now_empty {
                self.root = None;
            } else if let Body::Branch { children, .. } = &self.root.as_ref().unwrap().body {
                if children.len() == 1 {
                    let only = children[0].clone();
                    self.root = Some(only);
                }
            }
        }
        removed
    }

    /// Returns (removed value, whether this node is now empty).
    fn remove_rec(node: &mut Arc<Node<K, V>>, key: &K) -> (Option<V>, bool) {
        // Probe before make_mut so a miss leaves sharing intact.
        let hit = match &node.body {
            Body::Leaf(entries) => entries.binary_search_by(|(k, _)| k.cmp(key)).is_ok(),
            Body::Branch { .. } => true,
        };
        if !hit {
            return (None, false);
        }
        match Node::touch(node) {
            Body::Leaf(entries) => {
                let i = match entries.binary_search_by(|(k, _)| k.cmp(key)) {
                    Ok(i) => i,
                    Err(_) => return (None, false),
                };
                let (_, v) = entries.remove(i);
                (Some(v), entries.is_empty())
            }
            Body::Branch { keys, children } => {
                let idx = keys.partition_point(|sep| sep <= key);
                let (removed, child_empty) = Self::remove_rec(&mut children[idx], key);
                if removed.is_some() && child_empty {
                    children.remove(idx);
                    if !keys.is_empty() {
                        keys.remove(idx.saturating_sub(1));
                    }
                }
                (removed, children.is_empty())
            }
        }
    }

    /// Iterate entries in key order.
    pub fn iter(&self) -> Iter<'_, K, V> {
        let mut stack = Vec::new();
        if let Some(root) = self.root.as_deref() {
            stack.push((root, 0));
        }
        Iter { stack }
    }

    /// Iterate entries starting from the first key for which `f` returns
    /// `Ordering::Equal` or `Ordering::Greater` (i.e. `f(k) = k.cmp(bound)`
    /// yields the usual lower-bound scan from `bound`).
    pub fn range_from_by<F: FnMut(&K) -> Ordering>(&self, mut f: F) -> Iter<'_, K, V> {
        let mut stack = Vec::new();
        let mut node = match self.root.as_deref() {
            Some(root) => root,
            None => return Iter { stack },
        };
        loop {
            match &node.body {
                Body::Leaf(entries) => {
                    let idx = entries.partition_point(|(k, _)| f(k) == Ordering::Less);
                    stack.push((node, idx));
                    return Iter { stack };
                }
                Body::Branch { keys, children } => {
                    let idx = keys.partition_point(|sep| f(sep) != Ordering::Greater);
                    stack.push((node, idx + 1));
                    node = &children[idx];
                }
            }
        }
    }

    /// Commutative digest of the whole map: the wrapping sum of
    /// `entry_digest(k, v)` over every entry.
    ///
    /// Summation (rather than an order-sensitive fold) makes the digest
    /// independent of tree shape, which lets each node cache its subtree's
    /// partial sum: unchanged subtrees — everything outside the write paths
    /// since the last call — are re-used from the cache, so the cost is
    /// O(modified paths), not O(len). It also gives cheap exclusion: callers
    /// can `wrapping_sub` the digest of entries they want to leave out.
    ///
    /// The cache is keyed by nothing: all calls against a map (and its
    /// clones, which share nodes and therefore cached digests) must use the
    /// same `entry_digest` function, and `entry_digest` must be a pure
    /// function of the entry. Mix per-entry structure into the digest (the
    /// current users hash the key and finalize with a strong mixer) so the
    /// sum doesn't collapse colliding entries.
    pub fn digest_sum<F: Fn(&K, &V) -> u64>(&self, entry_digest: &F) -> u64 {
        fn walk<K, V, F: Fn(&K, &V) -> u64>(node: &Arc<Node<K, V>>, f: &F) -> u64 {
            *node.digest.get_or_init(|| match &node.body {
                Body::Leaf(entries) => entries
                    .iter()
                    .fold(0u64, |acc, (k, v)| acc.wrapping_add(f(k, v))),
                Body::Branch { children, .. } => children
                    .iter()
                    .fold(0u64, |acc, child| acc.wrapping_add(walk(child, f))),
            })
        }
        match &self.root {
            Some(root) => walk(root, entry_digest),
            None => 0,
        }
    }

    /// Counts values shared with other clones of the map versus uniquely
    /// owned: `(shared, owned)`. A value is shared when any ancestor node is
    /// referenced by more than one tree version (structural sharing), or
    /// when `value_shared` reports the value itself as shared (e.g. an `Arc`
    /// payload still referenced by a diverged snapshot).
    pub fn sharing_stats<F: Fn(&V) -> bool>(&self, value_shared: F) -> (usize, usize) {
        fn walk<K, V, F: Fn(&V) -> bool>(
            node: &Arc<Node<K, V>>,
            ancestor_shared: bool,
            value_shared: &F,
            shared: &mut usize,
            owned: &mut usize,
        ) {
            let node_shared = ancestor_shared || Arc::strong_count(node) > 1;
            match &node.body {
                Body::Leaf(entries) => {
                    for (_, v) in entries {
                        if node_shared || value_shared(v) {
                            *shared += 1;
                        } else {
                            *owned += 1;
                        }
                    }
                }
                Body::Branch { children, .. } => {
                    for child in children {
                        walk(child, node_shared, value_shared, shared, owned);
                    }
                }
            }
        }
        let mut shared = 0;
        let mut owned = 0;
        if let Some(root) = &self.root {
            walk(root, false, &value_shared, &mut shared, &mut owned);
        }
        (shared, owned)
    }

    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.iter().map(|(k, _)| k)
    }

    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }
}

/// In-order iterator over a [`PMap`].
pub struct Iter<'a, K, V> {
    /// Stack of (node, next child/entry index to visit).
    stack: Vec<(&'a Node<K, V>, usize)>,
}

impl<'a, K, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let (node, idx) = {
                let last = self.stack.last_mut()?;
                let out = (last.0, last.1);
                last.1 += 1;
                out
            };
            match &node.body {
                Body::Leaf(entries) => {
                    if let Some((k, v)) = entries.get(idx) {
                        return Some((k, v));
                    }
                    self.stack.pop();
                }
                Body::Branch { children, .. } => {
                    if let Some(child) = children.get(idx) {
                        self.stack.push((child, 0));
                    } else {
                        self.stack.pop();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = PMap::new();
        // 7 is coprime with 199, so i*7 % 199 enumerates all 199 keys once.
        for i in 0..199u32 {
            assert_eq!(m.insert(i * 7 % 199, i), None);
        }
        assert_eq!(m.len(), 199);
        for i in 0..199u32 {
            assert!(m.contains_key(&(i * 7 % 199)), "missing key {i}");
        }
        assert_eq!(m.remove(&0), Some(0));
        assert_eq!(m.remove(&0), None);
        assert_eq!(m.len(), 198);
    }

    #[test]
    fn matches_btreemap_model_under_random_ops() {
        let mut m: PMap<u64, u64> = PMap::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for step in 0..5000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 257;
            match x % 3 {
                0 | 1 => {
                    assert_eq!(m.insert(key, step), model.insert(key, step));
                }
                _ => {
                    assert_eq!(m.remove(&key), model.remove(&key));
                }
            }
            assert_eq!(m.len(), model.len());
        }
        let got: Vec<_> = m.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<_> = model.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn clone_is_independent_and_shares_structure() {
        let mut a: PMap<u32, String> = PMap::new();
        for i in 0..100 {
            a.insert(i, format!("v{i}"));
        }
        let b = a.clone();
        a.insert(7, "changed".into());
        a.remove(&50);
        assert_eq!(b.get(&7).unwrap(), "v7");
        assert!(b.contains_key(&50));
        assert_eq!(a.get(&7).unwrap(), "changed");
        assert!(!a.contains_key(&50));
        assert_eq!(b.len(), 100);
        assert_eq!(a.len(), 99);
    }

    #[test]
    fn range_from_by_is_a_lower_bound_scan() {
        let mut m: PMap<u32, u32> = PMap::new();
        for i in (0..300).step_by(3) {
            m.insert(i, i);
        }
        for bound in [0u32, 1, 2, 3, 149, 150, 298, 299, 1000] {
            let got: Vec<u32> = m
                .range_from_by(|k| k.cmp(&bound))
                .map(|(k, _)| *k)
                .collect();
            let want: Vec<u32> = (0..300).step_by(3).filter(|k| *k >= bound).collect();
            assert_eq!(got, want, "bound {bound}");
        }
    }

    #[test]
    fn get_mut_copies_only_on_hit() {
        let mut a: PMap<u32, u32> = PMap::new();
        for i in 0..50 {
            a.insert(i, i);
        }
        let b = a.clone();
        // Miss: no CoW, roots stay shared.
        assert!(a.get_mut(&999).is_none());
        assert!(Arc::ptr_eq(
            a.root.as_ref().unwrap(),
            b.root.as_ref().unwrap()
        ));
        // Hit: path copied, value changed only in `a`.
        *a.get_mut(&10).unwrap() = 777;
        assert_eq!(*b.get(&10).unwrap(), 10);
        assert_eq!(*a.get(&10).unwrap(), 777);
    }

    #[test]
    fn digest_sum_matches_fresh_recompute_after_mutation() {
        fn entry_digest(k: &u64, v: &u64) -> u64 {
            // splitmix64 over a key/value mix, same mixing idea the store uses.
            let mut x = k.wrapping_mul(0x9e3779b97f4a7c15) ^ v.wrapping_mul(0xbf58476d1ce4e5b9);
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
            x ^ (x >> 31)
        }
        fn model_digest(m: &PMap<u64, u64>) -> u64 {
            m.iter()
                .fold(0u64, |acc, (k, v)| acc.wrapping_add(entry_digest(k, v)))
        }
        let mut m: PMap<u64, u64> = PMap::new();
        let mut x: u64 = 0x243f6a8885a308d3;
        for step in 0..3000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 401;
            match x % 4 {
                0 | 1 => {
                    m.insert(key, step);
                }
                2 => {
                    m.remove(&key);
                }
                _ => {
                    if let Some(v) = m.get_mut(&key) {
                        *v = step;
                    }
                }
            }
            if step % 97 == 0 {
                // Cached digest must equal a from-scratch fold at all times,
                // including right after clones force CoW on later writes.
                let snap = m.clone();
                assert_eq!(m.digest_sum(&entry_digest), model_digest(&m), "step {step}");
                assert_eq!(snap.digest_sum(&entry_digest), model_digest(&snap));
            }
        }
        assert_eq!(m.digest_sum(&entry_digest), model_digest(&m));
    }

    #[test]
    fn iter_order_after_heavy_deletes() {
        let mut m: PMap<u32, u32> = PMap::new();
        for i in 0..500 {
            m.insert(i, i);
        }
        for i in 0..500 {
            if i % 5 != 0 {
                assert_eq!(m.remove(&i), Some(i));
            }
        }
        let got: Vec<u32> = m.iter().map(|(k, _)| *k).collect();
        let want: Vec<u32> = (0..500).filter(|i| i % 5 == 0).collect();
        assert_eq!(got, want);
    }
}
