//! Deterministic fault injection for the simulated cluster.
//!
//! Acto starts campaigns from error states (Figure 4c) by driving the
//! system into trouble and checking that the operator recovers. This
//! module supplies the trouble: a [`FaultPlan`] is an explicit, ordered
//! schedule of perturbations — node crashes and restarts, pod kills and
//! evictions, API-server write conflicts, watch blackouts, transient
//! reconcile errors, and configuration corruption — applied at fixed
//! simulated times relative to plan installation. Plans are either built
//! by hand or derived from a seed via [`FaultPlan::generate`]; either way
//! every trial replays bit-for-bit from `(seed, plan)` because nothing in
//! the pipeline consults a wall clock or an ambient RNG.

use std::collections::BTreeMap;

use crdspec::Value;

use crate::objects::{Kind, ObjectData, PodPhase};
use crate::store::ObjKey;

/// One perturbation of the simulated world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// The node goes not-ready for `down_for` seconds; its pods fail and
    /// are released for rescheduling (the paper's pod-migration trigger).
    NodeCrash {
        /// Node name (e.g. `"node-1"`).
        node: String,
        /// Seconds until the node returns.
        down_for: u64,
    },
    /// The pod object is deleted outright; its owning controller recreates
    /// it.
    PodKill {
        /// Namespace of the pod.
        namespace: String,
        /// Pod name.
        pod: String,
    },
    /// The pod fails in place (kubelet eviction) and restarts on its node.
    PodEvict {
        /// Namespace of the pod.
        namespace: String,
        /// Pod name.
        pod: String,
    },
    /// The next `count` object writes through the API server fail with a
    /// resource-version conflict (an optimistic-concurrency race).
    ApiConflicts {
        /// Number of writes to reject.
        count: u32,
    },
    /// Watch events stop flowing for `duration` seconds: built-in
    /// controllers and the operator see a frozen world.
    WatchBlackout {
        /// Seconds of blackout.
        duration: u64,
    },
    /// The next `count` operator reconcile passes fail transiently before
    /// running (a flaky API client).
    ReconcileError {
        /// Number of reconciles to fail.
        count: u32,
    },
    /// The operator process dies immediately after its `at_write`-th
    /// state-changing API write (counted from the firing time, across
    /// reconcile passes); the rest of the dying pass is rejected with
    /// [`crate::ApiError::OperatorCrashed`] and the process stays down for
    /// `down_for` seconds before restarting with its in-memory state
    /// dropped. Explicit-schedule only: [`FaultPlan::generate`] never
    /// draws it, because crash points are usually swept systematically by
    /// the campaign layer instead of sampled.
    OperatorCrash {
        /// State-changing operator writes until the process dies.
        at_write: u32,
        /// Seconds the process stays down after the crash.
        down_for: u64,
    },
    /// A key of a ConfigMap is overwritten behind the operator's back —
    /// the error state a correct operator repairs on its next reconcile.
    ConfigCorrupt {
        /// Namespace of the config map.
        namespace: String,
        /// Config-map name.
        configmap: String,
        /// Data key to overwrite.
        key: String,
        /// Value to plant.
        value: String,
    },
}

impl Fault {
    /// Seconds the fault keeps acting after it fires.
    fn duration(&self) -> u64 {
        match self {
            Fault::NodeCrash { down_for, .. } => *down_for,
            Fault::WatchBlackout { duration } => *duration,
            Fault::OperatorCrash { down_for, .. } => *down_for,
            _ => 0,
        }
    }

    /// Human-readable one-line rendering, as used in fault-event logs.
    pub fn describe(&self) -> String {
        match self {
            Fault::NodeCrash { node, down_for } => {
                format!("node {node} crashed (down for {down_for}s)")
            }
            Fault::PodKill { namespace, pod } => format!("pod {namespace}/{pod} killed"),
            Fault::PodEvict { namespace, pod } => format!("pod {namespace}/{pod} evicted"),
            Fault::ApiConflicts { count } => {
                format!("next {count} api writes will conflict")
            }
            Fault::WatchBlackout { duration } => format!("watch blackout for {duration}s"),
            Fault::ReconcileError { count } => {
                format!("next {count} reconciles fail transiently")
            }
            Fault::OperatorCrash { at_write, down_for } => {
                format!("operator process dies after write {at_write} (down for {down_for}s)")
            }
            Fault::ConfigCorrupt {
                namespace,
                configmap,
                key,
                value,
            } => format!("configmap {namespace}/{configmap}: {key} corrupted to {value:?}"),
        }
    }

    /// Serializes the fault to a tagged [`Value`] object, the inverse of
    /// [`Fault::from_value`]. Used by the fuzzer's corpus format so saved
    /// inputs replay bit-for-bit across processes.
    pub fn to_value(&self) -> Value {
        let int = |n: u64| Value::Integer(n as i64);
        match self {
            Fault::NodeCrash { node, down_for } => Value::object([
                ("type", Value::String("NodeCrash".to_string())),
                ("node", Value::String(node.clone())),
                ("down_for", int(*down_for)),
            ]),
            Fault::PodKill { namespace, pod } => Value::object([
                ("type", Value::String("PodKill".to_string())),
                ("namespace", Value::String(namespace.clone())),
                ("pod", Value::String(pod.clone())),
            ]),
            Fault::PodEvict { namespace, pod } => Value::object([
                ("type", Value::String("PodEvict".to_string())),
                ("namespace", Value::String(namespace.clone())),
                ("pod", Value::String(pod.clone())),
            ]),
            Fault::ApiConflicts { count } => Value::object([
                ("type", Value::String("ApiConflicts".to_string())),
                ("count", int(u64::from(*count))),
            ]),
            Fault::WatchBlackout { duration } => Value::object([
                ("type", Value::String("WatchBlackout".to_string())),
                ("duration", int(*duration)),
            ]),
            Fault::ReconcileError { count } => Value::object([
                ("type", Value::String("ReconcileError".to_string())),
                ("count", int(u64::from(*count))),
            ]),
            Fault::OperatorCrash { at_write, down_for } => Value::object([
                ("type", Value::String("OperatorCrash".to_string())),
                ("at_write", int(u64::from(*at_write))),
                ("down_for", int(*down_for)),
            ]),
            Fault::ConfigCorrupt {
                namespace,
                configmap,
                key,
                value,
            } => Value::object([
                ("type", Value::String("ConfigCorrupt".to_string())),
                ("namespace", Value::String(namespace.clone())),
                ("configmap", Value::String(configmap.clone())),
                ("key", Value::String(key.clone())),
                ("value", Value::String(value.clone())),
            ]),
        }
    }

    /// Parses a fault from the tagged object produced by
    /// [`Fault::to_value`].
    pub fn from_value(value: &Value) -> Result<Fault, String> {
        let str_field = |name: &str| -> Result<String, String> {
            value
                .get(name)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("fault missing string field {name:?}"))
        };
        let u64_field = |name: &str| -> Result<u64, String> {
            value
                .get(name)
                .and_then(Value::as_i64)
                .and_then(|n| u64::try_from(n).ok())
                .ok_or_else(|| format!("fault missing integer field {name:?}"))
        };
        let u32_field = |name: &str| -> Result<u32, String> {
            u64_field(name).and_then(|n| {
                u32::try_from(n).map_err(|_| format!("fault field {name:?} out of range"))
            })
        };
        match str_field("type")?.as_str() {
            "NodeCrash" => Ok(Fault::NodeCrash {
                node: str_field("node")?,
                down_for: u64_field("down_for")?,
            }),
            "PodKill" => Ok(Fault::PodKill {
                namespace: str_field("namespace")?,
                pod: str_field("pod")?,
            }),
            "PodEvict" => Ok(Fault::PodEvict {
                namespace: str_field("namespace")?,
                pod: str_field("pod")?,
            }),
            "ApiConflicts" => Ok(Fault::ApiConflicts {
                count: u32_field("count")?,
            }),
            "WatchBlackout" => Ok(Fault::WatchBlackout {
                duration: u64_field("duration")?,
            }),
            "ReconcileError" => Ok(Fault::ReconcileError {
                count: u32_field("count")?,
            }),
            "OperatorCrash" => Ok(Fault::OperatorCrash {
                at_write: u32_field("at_write")?,
                down_for: u64_field("down_for")?,
            }),
            "ConfigCorrupt" => Ok(Fault::ConfigCorrupt {
                namespace: str_field("namespace")?,
                configmap: str_field("configmap")?,
                key: str_field("key")?,
                value: str_field("value")?,
            }),
            other => Err(format!("unknown fault type {other:?}")),
        }
    }
}

/// A fault scheduled at a time relative to plan installation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedFault {
    /// Seconds after [`crate::SimCluster::install_fault_plan`] at which the
    /// fault fires.
    pub at: u64,
    /// The fault.
    pub fault: Fault,
}

/// Bounds for seed-derived plan generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultProfile {
    /// Namespace pod/config faults target.
    pub namespace: String,
    /// Pod name prefix; pods are `{prefix}-{ordinal}`.
    pub pod_prefix: String,
    /// Number of cluster nodes (`node-0` .. `node-{n-1}`).
    pub nodes: u32,
    /// Number of pods assumed to exist.
    pub pods: u32,
    /// Upper bound on faults per plan (at least one is generated).
    pub max_faults: u32,
    /// Faults fire within `[1, window]` seconds of installation.
    pub window: u64,
}

impl Default for FaultProfile {
    fn default() -> FaultProfile {
        FaultProfile {
            namespace: "acto".to_string(),
            pod_prefix: "test-cluster".to_string(),
            nodes: 4,
            pods: 3,
            max_faults: 4,
            window: 30,
        }
    }
}

/// An ordered fault schedule. Empty plans are inert.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    faults: Vec<TimedFault>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Appends a fault firing `at` seconds after installation.
    pub fn push(&mut self, at: u64, fault: Fault) -> &mut FaultPlan {
        self.faults.push(TimedFault { at, fault });
        self.faults.sort_by_key(|f| f.at);
        self
    }

    /// Returns `true` when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// The scheduled faults in firing order.
    pub fn faults(&self) -> &[TimedFault] {
        &self.faults
    }

    /// Seconds after installation by which every fault has fired and every
    /// timed effect (node downtime, blackout) has lapsed, plus a small
    /// settling margin.
    pub fn horizon(&self) -> u64 {
        self.faults
            .iter()
            .map(|f| f.at + f.fault.duration())
            .max()
            .map(|end| end + 5)
            .unwrap_or(0)
    }

    /// Derives a plan from a seed: same `(seed, profile)` always yields the
    /// same plan, different seeds almost always differ.
    pub fn generate(seed: u64, profile: &FaultProfile) -> FaultPlan {
        let mut rng = SplitMix64::new(seed);
        let count = 1 + rng.below(u64::from(profile.max_faults.max(1)));
        let mut plan = FaultPlan::new();
        for _ in 0..count {
            let at = 1 + rng.below(profile.window.max(1));
            let node = format!("node-{}", rng.below(u64::from(profile.nodes.max(1))));
            let pod = format!(
                "{}-{}",
                profile.pod_prefix,
                rng.below(u64::from(profile.pods.max(1)))
            );
            let fault = match rng.below(6) {
                0 => Fault::NodeCrash {
                    node,
                    down_for: 5 + rng.below(15),
                },
                1 => Fault::PodKill {
                    namespace: profile.namespace.clone(),
                    pod,
                },
                2 => Fault::PodEvict {
                    namespace: profile.namespace.clone(),
                    pod,
                },
                3 => Fault::ApiConflicts {
                    count: 1 + rng.below(3) as u32,
                },
                4 => Fault::WatchBlackout {
                    duration: 3 + rng.below(10),
                },
                _ => Fault::ReconcileError {
                    count: 1 + rng.below(3) as u32,
                },
            };
            plan.push(at, fault);
        }
        plan
    }

    /// Serializes the plan as an array of `{at, fault}` objects, the
    /// inverse of [`FaultPlan::from_value`].
    pub fn to_value(&self) -> Value {
        Value::array(self.faults.iter().map(|timed| {
            Value::object([
                ("at", Value::Integer(timed.at as i64)),
                ("fault", timed.fault.to_value()),
            ])
        }))
    }

    /// Parses a plan from the array produced by [`FaultPlan::to_value`].
    pub fn from_value(value: &Value) -> Result<FaultPlan, String> {
        let items = value
            .as_array()
            .ok_or_else(|| "fault plan must be an array".to_string())?;
        let mut plan = FaultPlan::new();
        for item in items {
            let at = item
                .get("at")
                .and_then(Value::as_i64)
                .and_then(|n| u64::try_from(n).ok())
                .ok_or_else(|| "timed fault missing integer field \"at\"".to_string())?;
            let fault = item
                .get("fault")
                .ok_or_else(|| "timed fault missing field \"fault\"".to_string())
                .and_then(Fault::from_value)?;
            plan.push(at, fault);
        }
        Ok(plan)
    }
}

/// One applied fault, for trial transcripts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Simulated time the fault fired.
    pub time: u64,
    /// What happened.
    pub description: String,
}

impl FaultEvent {
    /// Renders the event as a transcript line.
    pub fn render(&self) -> String {
        format!("t={} fault: {}", self.time, self.description)
    }
}

/// Runtime state of an installed plan, owned by the cluster. `Clone` so a
/// cluster checkpoint can capture mid-plan injection state exactly.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: Vec<TimedFault>,
    installed_at: u64,
    next: usize,
    /// Crashed nodes and the time each returns.
    node_down_until: BTreeMap<String, u64>,
    watch_blackout_until: u64,
    pending_reconcile_errors: u32,
    events: Vec<FaultEvent>,
}

impl FaultInjector {
    /// Installs a plan at the given simulated time.
    pub fn new(plan: FaultPlan, now: u64) -> FaultInjector {
        FaultInjector {
            plan: plan.faults,
            installed_at: now,
            next: 0,
            node_down_until: BTreeMap::new(),
            watch_blackout_until: 0,
            pending_reconcile_errors: 0,
            events: Vec::new(),
        }
    }

    /// Returns `true` while watch events are suppressed.
    pub fn blackout_active(&self, now: u64) -> bool {
        now < self.watch_blackout_until
    }

    /// Consumes one pending injected reconcile error, if any.
    pub fn take_reconcile_error(&mut self) -> bool {
        if self.pending_reconcile_errors > 0 {
            self.pending_reconcile_errors -= 1;
            true
        } else {
            false
        }
    }

    /// Applied faults so far, in order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Returns `true` once every scheduled fault has fired and no timed
    /// effect remains active.
    pub fn exhausted(&self, now: u64) -> bool {
        self.next >= self.plan.len()
            && self.node_down_until.is_empty()
            && !self.blackout_active(now)
    }

    /// Earliest future time (strictly after `now`) at which injector state
    /// changes on its own: the next scheduled fault firing, a crashed node
    /// returning, or a watch blackout lapsing. `None` when fully quiescent.
    pub(crate) fn next_wakeup(&self, now: u64) -> Option<u64> {
        let mut wake: Option<u64> = None;
        let mut consider = |t: u64| {
            if t > now {
                wake = Some(wake.map_or(t, |w: u64| w.min(t)));
            }
        };
        if let Some(timed) = self.plan.get(self.next) {
            consider(self.installed_at + timed.at);
        }
        for &until in self.node_down_until.values() {
            consider(until);
        }
        consider(self.watch_blackout_until);
        wake
    }

    /// Observable-state fingerprint for the engine's no-op detection. Every
    /// state mutation in `apply_due` pushes a [`FaultEvent`], so
    /// `events.len()` covers node crash/restore transitions; the remaining
    /// fields cover effects consumed outside `apply_due`.
    pub(crate) fn fingerprint(&self) -> (usize, u32, u64, usize) {
        (
            self.next,
            self.pending_reconcile_errors,
            self.watch_blackout_until,
            self.events.len(),
        )
    }

    /// Applies everything due at `now`: restores returned nodes, then fires
    /// scheduled faults. Returns the number of injected-conflict writes to
    /// arm (the API server holds that counter).
    pub(crate) fn apply_due(&mut self, api: &mut crate::api::ApiServer, now: u64) -> u32 {
        // Nodes whose downtime lapsed come back ready.
        let returned: Vec<String> = self
            .node_down_until
            .iter()
            .filter(|(_, until)| **until <= now)
            .map(|(name, _)| name.clone())
            .collect();
        for name in returned {
            self.node_down_until.remove(&name);
            let key = ObjKey::new(Kind::Node, "", &name);
            let _ = api.store_mut().update_with(&key, now, |o| {
                if let ObjectData::Node(n) = &mut o.data {
                    n.ready = true;
                }
            });
            self.events.push(FaultEvent {
                time: now,
                description: format!("node {name} restored"),
            });
        }
        let mut conflicts = 0u32;
        while self.next < self.plan.len() && self.installed_at + self.plan[self.next].at <= now {
            let timed = self.plan[self.next].clone();
            self.next += 1;
            self.events.push(FaultEvent {
                time: now,
                description: timed.fault.describe(),
            });
            match timed.fault {
                Fault::NodeCrash { node, down_for } => {
                    // Overlapping crashes of the same node extend the
                    // outage; a shorter re-crash never revives it early.
                    let until = self
                        .node_down_until
                        .get(&node)
                        .copied()
                        .unwrap_or(0)
                        .max(now + down_for.max(1));
                    self.node_down_until.insert(node.clone(), until);
                    let key = ObjKey::new(Kind::Node, "", &node);
                    let _ = api.store_mut().update_with(&key, now, |o| {
                        if let ObjectData::Node(n) = &mut o.data {
                            n.ready = false;
                        }
                    });
                    // Pods on the node fail and are released so the
                    // scheduler can place them elsewhere.
                    let victims: Vec<ObjKey> = api
                        .store()
                        .list_all(&Kind::Pod)
                        .iter()
                        .filter(|o| match &o.data {
                            ObjectData::Pod(p) => p.node_name.as_deref() == Some(node.as_str()),
                            _ => false,
                        })
                        .map(|o| ObjKey::new(Kind::Pod, &o.meta.namespace, &o.meta.name))
                        .collect();
                    for key in victims {
                        let _ = api.store_mut().update_with(&key, now, |o| {
                            if let ObjectData::Pod(p) = &mut o.data {
                                p.phase = PodPhase::Failed;
                                p.reason = "NodeFailure".to_string();
                                p.ready = false;
                                p.node_name = None;
                                p.phase_since = now;
                            }
                        });
                    }
                }
                Fault::PodKill { namespace, pod } => {
                    let key = ObjKey::new(Kind::Pod, &namespace, &pod);
                    let _ = api.store_mut().delete(&key, now);
                }
                Fault::PodEvict { namespace, pod } => {
                    let key = ObjKey::new(Kind::Pod, &namespace, &pod);
                    let _ = api.store_mut().update_with(&key, now, |o| {
                        if let ObjectData::Pod(p) = &mut o.data {
                            p.phase = PodPhase::Failed;
                            p.reason = "Evicted".to_string();
                            p.ready = false;
                            p.phase_since = now;
                        }
                    });
                }
                Fault::ApiConflicts { count } => conflicts += count,
                Fault::WatchBlackout { duration } => {
                    self.watch_blackout_until =
                        self.watch_blackout_until.max(now + duration.max(1));
                }
                Fault::ReconcileError { count } => {
                    self.pending_reconcile_errors += count;
                }
                Fault::OperatorCrash { at_write, down_for } => {
                    // The API server owns the countdown; the FaultEvent
                    // pushed above keeps the arming visible to the
                    // engine's fingerprint.
                    api.arm_operator_crash(at_write, down_for);
                }
                Fault::ConfigCorrupt {
                    namespace,
                    configmap,
                    key,
                    value,
                } => {
                    let obj_key = ObjKey::new(Kind::ConfigMap, &namespace, &configmap);
                    let _ = api.store_mut().update_with(&obj_key, now, |o| {
                        if let ObjectData::ConfigMap(c) = &mut o.data {
                            c.data.insert(key.clone(), value.clone());
                        }
                    });
                }
            }
        }
        conflicts
    }
}

/// A tiny splitmix64 generator: deterministic, allocation-free, and
/// independent of any external RNG crate. Public because the fuzzer's
/// mutation engine draws from the same generator family, keeping every
/// random decision in the workspace attributable to an explicit seed.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds a generator; equal seeds yield equal streams.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// The generator's raw state, for checkpointing a random stream
    /// mid-run (the resumable fuzz journal records this after every
    /// round).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuilds a generator at a checkpointed raw state: the stream
    /// continues exactly where [`SplitMix64::state`] captured it.
    pub fn from_state(state: u64) -> SplitMix64 {
        SplitMix64 { state }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let profile = FaultProfile::default();
        for seed in 0..50u64 {
            assert_eq!(
                FaultPlan::generate(seed, &profile),
                FaultPlan::generate(seed, &profile)
            );
        }
    }

    #[test]
    fn differing_seeds_produce_differing_schedules() {
        let profile = FaultProfile::default();
        let plans: Vec<FaultPlan> = (0..8u64)
            .map(|s| FaultPlan::generate(s, &profile))
            .collect();
        let distinct = plans.iter().filter(|p| **p != plans[0]).count();
        assert!(distinct > 0, "eight consecutive seeds collide entirely");
    }

    #[test]
    fn plans_sort_by_firing_time_and_compute_horizons() {
        let mut plan = FaultPlan::new();
        plan.push(
            10,
            Fault::NodeCrash {
                node: "node-0".to_string(),
                down_for: 20,
            },
        );
        plan.push(2, Fault::ApiConflicts { count: 1 });
        assert_eq!(plan.faults()[0].at, 2);
        assert_eq!(plan.horizon(), 35, "10 + 20 + settle margin");
        assert_eq!(FaultPlan::new().horizon(), 0);
    }

    #[test]
    fn generated_faults_fire_within_the_window() {
        let profile = FaultProfile::default();
        for seed in 0..50u64 {
            let plan = FaultPlan::generate(seed, &profile);
            assert!(!plan.is_empty());
            assert!(plan.len() <= profile.max_faults as usize);
            for f in plan.faults() {
                assert!((1..=profile.window).contains(&f.at));
            }
        }
    }

    #[test]
    fn every_fault_variant_round_trips_through_value() {
        let faults = [
            Fault::NodeCrash {
                node: "node-2".to_string(),
                down_for: 11,
            },
            Fault::PodKill {
                namespace: "acto".to_string(),
                pod: "test-cluster-0".to_string(),
            },
            Fault::PodEvict {
                namespace: "acto".to_string(),
                pod: "test-cluster-1".to_string(),
            },
            Fault::ApiConflicts { count: 3 },
            Fault::WatchBlackout { duration: 7 },
            Fault::ReconcileError { count: 2 },
            Fault::OperatorCrash {
                at_write: 4,
                down_for: 5,
            },
            Fault::ConfigCorrupt {
                namespace: "acto".to_string(),
                configmap: "cm".to_string(),
                key: "k".to_string(),
                value: "v".to_string(),
            },
        ];
        let mut plan = FaultPlan::new();
        for (i, fault) in faults.iter().enumerate() {
            assert_eq!(
                Fault::from_value(&fault.to_value()).as_ref(),
                Ok(fault),
                "variant {i} must survive the round trip"
            );
            plan.push(1 + i as u64, fault.clone());
        }
        // The whole plan round-trips too, including firing times and order.
        let parsed = FaultPlan::from_value(&plan.to_value()).expect("plan round trip");
        assert_eq!(parsed, plan);
        // Generated plans (the fuzzer's fresh-input source) round-trip for
        // arbitrary seeds.
        let profile = FaultProfile::default();
        for seed in 0..20u64 {
            let plan = FaultPlan::generate(seed, &profile);
            assert_eq!(FaultPlan::from_value(&plan.to_value()), Ok(plan));
        }
        // Malformed inputs fail loudly instead of defaulting.
        assert!(Fault::from_value(&Value::object([(
            "type",
            Value::String("Nonsense".to_string())
        )]))
        .is_err());
        assert!(FaultPlan::from_value(&Value::Null).is_err());
    }

    #[test]
    fn injector_tracks_reconcile_errors_and_blackouts() {
        let mut plan = FaultPlan::new();
        plan.push(1, Fault::ReconcileError { count: 2 });
        plan.push(1, Fault::WatchBlackout { duration: 3 });
        let mut api = crate::api::ApiServer::new(crate::platform::PlatformBugs::none());
        let mut inj = FaultInjector::new(plan, 0);
        assert!(!inj.blackout_active(0));
        let conflicts = inj.apply_due(&mut api, 1);
        assert_eq!(conflicts, 0);
        assert!(inj.blackout_active(2));
        assert!(!inj.blackout_active(4));
        assert!(inj.take_reconcile_error());
        assert!(inj.take_reconcile_error());
        assert!(!inj.take_reconcile_error());
        assert!(inj.exhausted(4));
        assert_eq!(inj.events().len(), 2);
    }
}
