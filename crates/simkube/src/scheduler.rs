//! The pod scheduler.
//!
//! Assigns pending pods to nodes, honouring resource capacity, node
//! selectors, required node affinity, taints/tolerations, and pod
//! (anti-)affinity within the hostname topology. Misoperation scenarios in
//! the paper (unsatisfiable affinity rules, unavailable resources) manifest
//! here as permanently `Pending` pods with an `Unschedulable` reason.

use std::collections::BTreeMap;

use crate::objects::{Kind, ObjectData, Pod, PodPhase};
use crate::quantity::Quantity;
use crate::resources::TaintEffect;
use crate::store::{ObjKey, ObjectStore};

/// The outcome of one scheduling pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScheduleOutcome {
    /// Pods bound to nodes this pass, with their node names.
    pub bound: Vec<(String, String)>,
    /// Pods that could not be placed, with the reasons.
    pub unschedulable: Vec<(String, String)>,
}

/// Runs one scheduling pass over all pending pods in the store.
pub fn schedule(store: &mut ObjectStore, time: u64) -> ScheduleOutcome {
    let mut outcome = ScheduleOutcome::default();
    // Snapshot node state.
    let nodes: Vec<(String, crate::objects::Node)> = store
        .list_all(&Kind::Node)
        .into_iter()
        .filter_map(|o| match &o.data {
            ObjectData::Node(n) => Some((o.meta.name.clone(), n.clone())),
            _ => None,
        })
        .collect();
    // Snapshot current assignments: node -> (used cpu, used memory) and
    // node -> pod labels (for pod affinity).
    let mut used: BTreeMap<String, (Quantity, Quantity)> = BTreeMap::new();
    let mut node_pod_labels: BTreeMap<String, Vec<BTreeMap<String, String>>> = BTreeMap::new();
    let mut pending: Vec<ObjKey> = Vec::new();
    for (key, obj) in store.iter() {
        if let ObjectData::Pod(pod) = &obj.data {
            match &pod.node_name {
                Some(node) if pod.phase != PodPhase::Succeeded && pod.phase != PodPhase::Failed => {
                    let entry = used
                        .entry(node.clone())
                        .or_insert((Quantity::zero(), Quantity::zero()));
                    entry.0 = entry.0 + pod.total_request("cpu");
                    entry.1 = entry.1 + pod.total_request("memory");
                    node_pod_labels
                        .entry(node.clone())
                        .or_default()
                        .push(obj.meta.labels.clone());
                }
                None if pod.phase == PodPhase::Pending => pending.push(key.clone()),
                _ => {}
            }
        }
    }
    // Deterministic order: by key.
    pending.sort();
    for key in pending {
        let (pod, labels) = match store.get(&key) {
            Some(obj) => match &obj.data {
                ObjectData::Pod(p) => (p.clone(), obj.meta.labels.clone()),
                _ => continue,
            },
            None => continue,
        };
        match place(&pod, &nodes, &used, &node_pod_labels) {
            Ok(node_name) => {
                let entry = used
                    .entry(node_name.clone())
                    .or_insert((Quantity::zero(), Quantity::zero()));
                entry.0 = entry.0 + pod.total_request("cpu");
                entry.1 = entry.1 + pod.total_request("memory");
                node_pod_labels
                    .entry(node_name.clone())
                    .or_default()
                    .push(labels);
                store
                    .update_with(&key, time, |obj| {
                        if let ObjectData::Pod(p) = &mut obj.data {
                            p.node_name = Some(node_name.clone());
                            p.reason = String::new();
                            p.phase_since = time;
                        }
                    })
                    .expect("pod exists");
                outcome.bound.push((key.name.clone(), node_name));
            }
            Err(reason) => {
                store
                    .update_with(&key, time, |obj| {
                        if let ObjectData::Pod(p) = &mut obj.data {
                            if p.reason != "Unschedulable" {
                                p.reason = "Unschedulable".to_string();
                            }
                        }
                    })
                    .expect("pod exists");
                outcome.unschedulable.push((key.name.clone(), reason));
            }
        }
    }
    outcome
}

/// Attempts to find a node for `pod`. Returns the node name or the reason
/// no node fits.
fn place(
    pod: &Pod,
    nodes: &[(String, crate::objects::Node)],
    used: &BTreeMap<String, (Quantity, Quantity)>,
    node_pod_labels: &BTreeMap<String, Vec<BTreeMap<String, String>>>,
) -> Result<String, String> {
    let mut reasons: Vec<String> = Vec::new();
    let mut candidates: Vec<(&String, Quantity)> = Vec::new();
    for (name, node) in nodes {
        if !node.ready {
            reasons.push(format!("{name}: not ready"));
            continue;
        }
        // Node selector.
        if !pod
            .node_selector
            .iter()
            .all(|(k, v)| node.labels.get(k) == Some(v))
        {
            reasons.push(format!("{name}: node selector mismatch"));
            continue;
        }
        // Required node affinity.
        if !pod
            .affinity
            .node_required
            .iter()
            .all(|t| node.labels.get(&t.key) == Some(&t.value))
        {
            reasons.push(format!("{name}: node affinity unsatisfied"));
            continue;
        }
        // Taints.
        let intolerable = node.taints.iter().any(|taint| {
            matches!(
                taint.effect,
                TaintEffect::NoSchedule | TaintEffect::PreferNoSchedule | TaintEffect::NoExecute
            ) && !pod.tolerations.iter().any(|tol| tol.tolerates(taint))
        });
        if intolerable {
            reasons.push(format!("{name}: untolerated taint"));
            continue;
        }
        // Resources.
        let (used_cpu, used_mem) = used
            .get(name)
            .copied()
            .unwrap_or((Quantity::zero(), Quantity::zero()));
        let cap_cpu = node
            .capacity
            .get("cpu")
            .copied()
            .unwrap_or_else(Quantity::zero);
        let cap_mem = node
            .capacity
            .get("memory")
            .copied()
            .unwrap_or_else(Quantity::zero);
        let need_cpu = pod.total_request("cpu");
        let need_mem = pod.total_request("memory");
        if used_cpu + need_cpu > cap_cpu || used_mem + need_mem > cap_mem {
            reasons.push(format!("{name}: insufficient resources"));
            continue;
        }
        let empty = Vec::new();
        let labels_here = node_pod_labels.get(name).unwrap_or(&empty);
        // Pod anti-affinity: no pod on this node may match any term.
        let anti_violated = pod.affinity.pod_anti_affinity.iter().any(|term| {
            labels_here
                .iter()
                .any(|l| l.get(&term.key) == Some(&term.value))
        });
        if anti_violated {
            reasons.push(format!("{name}: anti-affinity conflict"));
            continue;
        }
        // Pod affinity: every term must match some pod on this node.
        let affinity_unmet = pod.affinity.pod_affinity.iter().any(|term| {
            !labels_here
                .iter()
                .any(|l| l.get(&term.key) == Some(&term.value))
        });
        if affinity_unmet {
            reasons.push(format!("{name}: pod affinity unmet"));
            continue;
        }
        candidates.push((name, cap_cpu.saturating_sub(&(used_cpu + need_cpu))));
    }
    // Most free CPU wins; ties break by name for determinism.
    candidates.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
    match candidates.first() {
        Some((name, _)) => Ok((*name).clone()),
        None => Err(if reasons.is_empty() {
            "no nodes registered".to_string()
        } else {
            reasons.join(", ")
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::ObjectMeta;
    use crate::objects::{Container, Node};
    use crate::resources::{
        NodeAffinityTerm, PodAffinityTerm, ResourceRequirements, Taint, TaintEffect, Toleration,
        TolerationOperator,
    };

    fn add_node(store: &mut ObjectStore, name: &str, cpu: &str, mem: &str) {
        store
            .create(
                ObjectMeta::named("", name),
                ObjectData::Node(Node::with_capacity(cpu, mem)),
                0,
            )
            .unwrap();
    }

    fn add_pod(store: &mut ObjectStore, name: &str, cpu: &str, mem: &str) -> ObjKey {
        let pod = Pod {
            containers: vec![Container {
                name: "c".to_string(),
                image: "img:1".to_string(),
                resources: ResourceRequirements::new()
                    .request("cpu", cpu)
                    .request("memory", mem),
                ..Container::default()
            }],
            ..Pod::default()
        };
        store
            .create(ObjectMeta::named("ns", name), ObjectData::Pod(pod), 0)
            .unwrap()
    }

    #[test]
    fn binds_to_node_with_most_free_cpu() {
        let mut store = ObjectStore::new();
        add_node(&mut store, "small", "2", "4Gi");
        add_node(&mut store, "big", "8", "16Gi");
        let key = add_pod(&mut store, "p", "1", "1Gi");
        let outcome = schedule(&mut store, 1);
        assert_eq!(outcome.bound.len(), 1);
        let pod = store.get(&key).unwrap();
        if let ObjectData::Pod(p) = &pod.data {
            assert_eq!(p.node_name.as_deref(), Some("big"));
        }
    }

    #[test]
    fn respects_capacity_accounting_across_pods() {
        let mut store = ObjectStore::new();
        add_node(&mut store, "n1", "2", "4Gi");
        add_pod(&mut store, "a", "1500m", "1Gi");
        add_pod(&mut store, "b", "1500m", "1Gi");
        let outcome = schedule(&mut store, 1);
        assert_eq!(outcome.bound.len(), 1);
        assert_eq!(outcome.unschedulable.len(), 1);
        assert!(outcome.unschedulable[0].1.contains("insufficient"));
    }

    #[test]
    fn node_selector_and_affinity_filter() {
        let mut store = ObjectStore::new();
        add_node(&mut store, "plain", "4", "8Gi");
        let key = {
            let mut pod = Pod::default();
            pod.node_selector
                .insert("disk".to_string(), "ssd".to_string());
            store
                .create(ObjectMeta::named("ns", "p"), ObjectData::Pod(pod), 0)
                .unwrap()
        };
        let outcome = schedule(&mut store, 1);
        assert_eq!(outcome.unschedulable.len(), 1);
        if let ObjectData::Pod(p) = &store.get(&key).unwrap().data {
            assert_eq!(p.reason, "Unschedulable");
        }
        // Label the node and try again.
        let node_key = ObjKey::new(Kind::Node, "", "plain");
        store
            .update_with(&node_key, 2, |o| {
                if let ObjectData::Node(n) = &mut o.data {
                    n.labels.insert("disk".to_string(), "ssd".to_string());
                }
            })
            .unwrap();
        let outcome = schedule(&mut store, 3);
        assert_eq!(outcome.bound.len(), 1);
    }

    #[test]
    fn unsatisfiable_node_affinity_is_reported() {
        let mut store = ObjectStore::new();
        add_node(&mut store, "n1", "4", "8Gi");
        let mut pod = Pod::default();
        pod.affinity.node_required.push(NodeAffinityTerm {
            key: "zone".to_string(),
            value: "nowhere".to_string(),
        });
        store
            .create(ObjectMeta::named("ns", "p"), ObjectData::Pod(pod), 0)
            .unwrap();
        let outcome = schedule(&mut store, 1);
        assert_eq!(outcome.unschedulable.len(), 1);
        assert!(outcome.unschedulable[0].1.contains("affinity"));
    }

    #[test]
    fn taints_block_unless_tolerated() {
        let mut store = ObjectStore::new();
        add_node(&mut store, "t1", "4", "8Gi");
        let node_key = ObjKey::new(Kind::Node, "", "t1");
        store
            .update_with(&node_key, 0, |o| {
                if let ObjectData::Node(n) = &mut o.data {
                    n.taints.push(Taint {
                        key: "dedicated".to_string(),
                        value: "db".to_string(),
                        effect: TaintEffect::NoSchedule,
                    });
                }
            })
            .unwrap();
        add_pod(&mut store, "p", "100m", "128Mi");
        let outcome = schedule(&mut store, 1);
        assert_eq!(outcome.unschedulable.len(), 1);
        // Tolerating pod schedules.
        let mut pod = Pod::default();
        pod.tolerations.push(Toleration {
            key: "dedicated".to_string(),
            value: "db".to_string(),
            operator: TolerationOperator::Equal,
        });
        store
            .create(ObjectMeta::named("ns", "tolerant"), ObjectData::Pod(pod), 0)
            .unwrap();
        let outcome = schedule(&mut store, 2);
        assert!(outcome.bound.iter().any(|(p, _)| p == "tolerant"));
    }

    #[test]
    fn anti_affinity_spreads_pods() {
        let mut store = ObjectStore::new();
        add_node(&mut store, "n1", "4", "8Gi");
        add_node(&mut store, "n2", "4", "8Gi");
        for name in ["zk-0", "zk-1", "zk-2"] {
            let mut pod = Pod::default();
            pod.affinity.pod_anti_affinity.push(PodAffinityTerm {
                key: "app".to_string(),
                value: "zk".to_string(),
            });
            let meta = ObjectMeta::named("ns", name).with_label("app", "zk");
            store.create(meta, ObjectData::Pod(pod), 0).unwrap();
        }
        let outcome = schedule(&mut store, 1);
        // Two nodes, three pods with anti-affinity: one must stay pending.
        assert_eq!(outcome.bound.len(), 2);
        assert_eq!(outcome.unschedulable.len(), 1);
        assert!(outcome.unschedulable[0].1.contains("anti-affinity"));
    }

    #[test]
    fn pod_affinity_requires_co_located_match() {
        let mut store = ObjectStore::new();
        add_node(&mut store, "n1", "4", "8Gi");
        // The dependent pod requires a pod labelled app=primary on the node.
        let mut pod = Pod::default();
        pod.affinity.pod_affinity.push(PodAffinityTerm {
            key: "app".to_string(),
            value: "primary".to_string(),
        });
        store
            .create(ObjectMeta::named("ns", "dep"), ObjectData::Pod(pod), 0)
            .unwrap();
        let outcome = schedule(&mut store, 1);
        assert_eq!(outcome.unschedulable.len(), 1);
        // Schedule the primary first, then the dependent fits.
        let meta = ObjectMeta::named("ns", "primary").with_label("app", "primary");
        store
            .create(meta, ObjectData::Pod(Pod::default()), 0)
            .unwrap();
        let outcome = schedule(&mut store, 2);
        assert_eq!(outcome.unschedulable.len(), 1); // dep sorted before primary
        let outcome = schedule(&mut store, 3);
        assert!(outcome.bound.iter().any(|(p, _)| p == "dep"));
        let _ = outcome;
    }

    #[test]
    fn not_ready_nodes_excluded() {
        let mut store = ObjectStore::new();
        add_node(&mut store, "down", "4", "8Gi");
        let node_key = ObjKey::new(Kind::Node, "", "down");
        store
            .update_with(&node_key, 0, |o| {
                if let ObjectData::Node(n) = &mut o.data {
                    n.ready = false;
                }
            })
            .unwrap();
        add_pod(&mut store, "p", "100m", "128Mi");
        let outcome = schedule(&mut store, 1);
        assert_eq!(outcome.unschedulable.len(), 1);
        assert!(outcome.unschedulable[0].1.contains("not ready"));
    }
}
