//! The pod scheduler.
//!
//! Assigns pending pods to nodes, honouring resource capacity, node
//! selectors, required node affinity, taints/tolerations, and pod
//! (anti-)affinity within the hostname topology. Misoperation scenarios in
//! the paper (unsatisfiable affinity rules, unavailable resources) manifest
//! here as permanently `Pending` pods with an `Unschedulable` reason.
//!
//! Two implementations share one placement policy:
//!
//! - [`schedule`] is the exhaustive baseline: every pass re-scans the whole
//!   store to rebuild node usage. Simple, obviously correct, O(total pods)
//!   per pass — the ticked engine uses it, and the indexed path is checked
//!   against it (debug asserts + proptests).
//! - [`schedule_indexed`] runs the same policy over a [`SchedIndex`] that is
//!   kept in sync with the store via the watch-event log, so a pass costs
//!   O(pending + events since last pass), not O(total pods). The
//!   event-driven engine uses it; this is what makes 100k-pod clusters
//!   tractable.

use std::cmp::Reverse;
use std::collections::BTreeMap;

use crate::objects::StoredObject;
use crate::objects::{Kind, ObjectData, Pod, PodPhase};
use crate::pmap::PMap;
use crate::quantity::Quantity;
use crate::resources::{Taint, TaintEffect};
use crate::store::{ObjKey, ObjectStore};

/// The outcome of one scheduling pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScheduleOutcome {
    /// Pods bound to nodes this pass, with their node names.
    pub bound: Vec<(String, String)>,
    /// Pods that could not be placed, with the reasons.
    pub unschedulable: Vec<(String, String)>,
}

/// Runs one scheduling pass over all pending pods in the store.
pub fn schedule(store: &mut ObjectStore, time: u64) -> ScheduleOutcome {
    let mut outcome = ScheduleOutcome::default();
    // Snapshot node state.
    let nodes: Vec<(String, crate::objects::Node)> = store
        .list_all(&Kind::Node)
        .into_iter()
        .filter_map(|o| match &o.data {
            ObjectData::Node(n) => Some((o.meta.name.clone(), n.clone())),
            _ => None,
        })
        .collect();
    // Snapshot current assignments: node -> (used cpu, used memory) and
    // node -> pod labels (for pod affinity).
    let mut used: BTreeMap<String, (Quantity, Quantity)> = BTreeMap::new();
    let mut node_pod_labels: BTreeMap<String, Vec<BTreeMap<String, String>>> = BTreeMap::new();
    let mut pending: Vec<ObjKey> = Vec::new();
    for (key, obj) in store.iter() {
        if let ObjectData::Pod(pod) = &obj.data {
            match &pod.node_name {
                Some(node) if pod.phase != PodPhase::Succeeded && pod.phase != PodPhase::Failed => {
                    let entry = used
                        .entry(node.clone())
                        .or_insert((Quantity::zero(), Quantity::zero()));
                    entry.0 = entry.0 + pod.total_request("cpu");
                    entry.1 = entry.1 + pod.total_request("memory");
                    node_pod_labels
                        .entry(node.clone())
                        .or_default()
                        .push(obj.meta.labels.clone());
                }
                None if pod.phase == PodPhase::Pending => pending.push(key.clone()),
                _ => {}
            }
        }
    }
    // Deterministic order: by key.
    pending.sort();
    for key in pending {
        let (pod, labels) = match store.get(&key) {
            Some(obj) => match &obj.data {
                ObjectData::Pod(p) => (p.clone(), obj.meta.labels.clone()),
                _ => continue,
            },
            None => continue,
        };
        // Memoized per pod: `total_request` re-sums container requests, so
        // compute it once per pass instead of once per candidate node.
        let need_cpu = pod.total_request("cpu");
        let need_mem = pod.total_request("memory");
        match place(&pod, need_cpu, need_mem, &nodes, &used, &node_pod_labels) {
            Ok(node_name) => {
                let entry = used
                    .entry(node_name.clone())
                    .or_insert((Quantity::zero(), Quantity::zero()));
                entry.0 = entry.0 + need_cpu;
                entry.1 = entry.1 + need_mem;
                node_pod_labels
                    .entry(node_name.clone())
                    .or_default()
                    .push(labels);
                store
                    .update_with(&key, time, |obj| {
                        if let ObjectData::Pod(p) = &mut obj.data {
                            p.node_name = Some(node_name.clone());
                            p.reason = String::new();
                            p.phase_since = time;
                        }
                    })
                    .expect("pod exists");
                outcome.bound.push((key.name.clone(), node_name));
            }
            Err(reason) => {
                store
                    .update_with(&key, time, |obj| {
                        if let ObjectData::Pod(p) = &mut obj.data {
                            if p.reason != "Unschedulable" {
                                p.reason = "Unschedulable".to_string();
                            }
                        }
                    })
                    .expect("pod exists");
                outcome.unschedulable.push((key.name.clone(), reason));
            }
        }
    }
    outcome
}

/// Attempts to find a node for `pod`. Returns the node name or the reason
/// no node fits.
fn place(
    pod: &Pod,
    need_cpu: Quantity,
    need_mem: Quantity,
    nodes: &[(String, crate::objects::Node)],
    used: &BTreeMap<String, (Quantity, Quantity)>,
    node_pod_labels: &BTreeMap<String, Vec<BTreeMap<String, String>>>,
) -> Result<String, String> {
    let mut reasons: Vec<String> = Vec::new();
    let mut candidates: Vec<(&String, Quantity)> = Vec::new();
    for (name, node) in nodes {
        if !node.ready {
            reasons.push(format!("{name}: not ready"));
            continue;
        }
        // Node selector.
        if !pod
            .node_selector
            .iter()
            .all(|(k, v)| node.labels.get(k) == Some(v))
        {
            reasons.push(format!("{name}: node selector mismatch"));
            continue;
        }
        // Required node affinity.
        if !pod
            .affinity
            .node_required
            .iter()
            .all(|t| node.labels.get(&t.key) == Some(&t.value))
        {
            reasons.push(format!("{name}: node affinity unsatisfied"));
            continue;
        }
        // Taints.
        let intolerable = node.taints.iter().any(|taint| {
            matches!(
                taint.effect,
                TaintEffect::NoSchedule | TaintEffect::PreferNoSchedule | TaintEffect::NoExecute
            ) && !pod.tolerations.iter().any(|tol| tol.tolerates(taint))
        });
        if intolerable {
            reasons.push(format!("{name}: untolerated taint"));
            continue;
        }
        // Resources.
        let (used_cpu, used_mem) = used
            .get(name)
            .copied()
            .unwrap_or((Quantity::zero(), Quantity::zero()));
        let cap_cpu = node
            .capacity
            .get("cpu")
            .copied()
            .unwrap_or_else(Quantity::zero);
        let cap_mem = node
            .capacity
            .get("memory")
            .copied()
            .unwrap_or_else(Quantity::zero);
        if used_cpu + need_cpu > cap_cpu || used_mem + need_mem > cap_mem {
            reasons.push(format!("{name}: insufficient resources"));
            continue;
        }
        let empty = Vec::new();
        let labels_here = node_pod_labels.get(name).unwrap_or(&empty);
        // Pod anti-affinity: no pod on this node may match any term.
        let anti_violated = pod.affinity.pod_anti_affinity.iter().any(|term| {
            labels_here
                .iter()
                .any(|l| l.get(&term.key) == Some(&term.value))
        });
        if anti_violated {
            reasons.push(format!("{name}: anti-affinity conflict"));
            continue;
        }
        // Pod affinity: every term must match some pod on this node.
        let affinity_unmet = pod.affinity.pod_affinity.iter().any(|term| {
            !labels_here
                .iter()
                .any(|l| l.get(&term.key) == Some(&term.value))
        });
        if affinity_unmet {
            reasons.push(format!("{name}: pod affinity unmet"));
            continue;
        }
        candidates.push((name, cap_cpu.saturating_sub(&(used_cpu + need_cpu))));
    }
    // Most free CPU wins; ties break by name for determinism.
    candidates.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
    match candidates.first() {
        Some((name, _)) => Ok((*name).clone()),
        None => Err(if reasons.is_empty() {
            "no nodes registered".to_string()
        } else {
            reasons.join(", ")
        }),
    }
}

/// What a resident pod contributes to its node: resource usage plus labels
/// for (anti-)affinity. Cached per pod so unbinding can subtract exactly
/// what binding added, without re-reading a since-deleted object.
#[derive(Debug, Clone, PartialEq)]
struct PodContrib {
    node: String,
    cpu: Quantity,
    mem: Quantity,
    labels: BTreeMap<String, String>,
}

/// Per-node scheduling state maintained incrementally by [`SchedIndex`].
#[derive(Debug, Clone, PartialEq)]
struct NodeSlot {
    ready: bool,
    labels: BTreeMap<String, String>,
    taints: Vec<Taint>,
    cap_cpu: Quantity,
    cap_mem: Quantity,
    used_cpu: Quantity,
    used_mem: Quantity,
    /// label key -> value -> number of resident pods carrying it. A count
    /// above zero is exactly the baseline's "some pod on this node has this
    /// label", which is all the (anti-)affinity checks ever ask.
    pod_label_counts: BTreeMap<String, BTreeMap<String, u32>>,
}

impl NodeSlot {
    fn fresh(node: &crate::objects::Node) -> NodeSlot {
        NodeSlot {
            ready: node.ready,
            labels: node.labels.clone(),
            taints: node.taints.clone(),
            cap_cpu: node
                .capacity
                .get("cpu")
                .copied()
                .unwrap_or_else(Quantity::zero),
            cap_mem: node
                .capacity
                .get("memory")
                .copied()
                .unwrap_or_else(Quantity::zero),
            used_cpu: Quantity::zero(),
            used_mem: Quantity::zero(),
            pod_label_counts: BTreeMap::new(),
        }
    }

    /// Free CPU before the incoming pod's own request. The baseline ranks
    /// feasible nodes by `cap - (used + need)`; `need` is constant across a
    /// pod's candidates and feasibility rules out saturation, so ranking by
    /// `cap - used` (with the same name tie-break) picks the same winner.
    fn residual(&self) -> Quantity {
        self.cap_cpu.saturating_sub(&self.used_cpu)
    }

    fn has_pod_label(&self, key: &str, value: &str) -> bool {
        self.pod_label_counts
            .get(key)
            .and_then(|vals| vals.get(value))
            .is_some_and(|count| *count > 0)
    }
}

/// Incrementally-maintained scheduling state: the pending-pod set, per-node
/// residual capacity and resident-pod labels, a residual-ordered node ranking,
/// and a node-label index for selector/affinity prefiltering.
///
/// The index is a pure function of the store content it is synced to:
/// [`SchedIndex::sync`] replays the watch-event log from the last synced
/// revision (or rebuilds from a full scan when compaction swallowed the gap),
/// so a maintained index and a freshly rebuilt one are always identical.
/// That property is what lets checkpoints simply clone the index (all state
/// is `PMap`-backed, so a clone is O(1)) and lets the ticked engine ignore
/// it entirely.
#[derive(Debug, Clone, Default)]
pub struct SchedIndex {
    /// Store revision this index reflects.
    synced: u64,
    /// Pods with `phase == Pending` and no node, in scheduling order.
    pending: PMap<ObjKey, ()>,
    /// What each resident pod currently contributes to its node.
    contrib: PMap<ObjKey, PodContrib>,
    /// Per-node state, keyed by node name.
    nodes: PMap<String, NodeSlot>,
    /// Nodes ordered best-first: ascending `(Reverse(residual), name)` is
    /// residual-descending with the baseline's name tie-break, so the first
    /// feasible node in iteration order is the baseline's winner.
    by_residual: PMap<(Reverse<Quantity>, String), ()>,
    /// `(label key, label value, node name)` — candidate prefilter for pods
    /// with a node selector or required node affinity.
    node_labels: PMap<(String, String, String), ()>,
    /// Number of nodes carrying at least one taint; when zero the
    /// per-candidate toleration check is skipped wholesale.
    tainted_nodes: u32,
}

impl SchedIndex {
    /// Brings the index up to date with `store` by replaying watch events
    /// recorded after the last sync. Falls back to a full rebuild when the
    /// event log has been compacted past our cursor. Replays are keyed off
    /// the object's *current* state, so re-processing a key is idempotent.
    pub fn sync(&mut self, store: &ObjectStore) {
        if store.revision() == self.synced {
            return;
        }
        if store.events_floor() > self.synced {
            self.rebuild(store);
            return;
        }
        let events = store.events_since(self.synced);
        // The refresh reads current state, so each key needs exactly one
        // refresh no matter how often it recurs in the batch; a reverse
        // scan with a seen-set keeps the dedup O(batch log batch).
        let mut seen: std::collections::BTreeSet<&ObjKey> = std::collections::BTreeSet::new();
        for event in events.iter().rev() {
            let key = &event.key;
            if !matches!(key.kind, Kind::Pod | Kind::Node) {
                continue;
            }
            if !seen.insert(key) {
                continue;
            }
            // The dedup keeps only each key's last event, whose payload is
            // exactly the object's current state — no store descent needed.
            match key.kind {
                Kind::Pod => self.refresh_pod(event.obj.as_deref(), key),
                Kind::Node => self.refresh_node(event.obj.as_deref(), &key.name),
                _ => {}
            }
        }
        self.synced = store.revision();
    }

    /// Revision the index currently reflects.
    pub fn synced_revision(&self) -> u64 {
        self.synced
    }

    fn rebuild(&mut self, store: &ObjectStore) {
        *self = SchedIndex::default();
        for obj in store.list_all(&Kind::Node) {
            if let ObjectData::Node(n) = &obj.data {
                self.install_node(&obj.meta.name, NodeSlot::fresh(n));
            }
        }
        for (key, obj) in store.iter() {
            if let ObjectData::Pod(pod) = &obj.data {
                if pod.phase == PodPhase::Pending && pod.node_name.is_none() {
                    self.pending.insert(key.clone(), ());
                }
                if let Some(c) = Self::contribution(pod, &obj.meta.labels) {
                    self.add_contrib(key.clone(), c);
                }
            }
        }
        self.synced = store.revision();
    }

    /// What `pod` contributes to a node, if it is resident on one.
    fn contribution(pod: &Pod, labels: &BTreeMap<String, String>) -> Option<PodContrib> {
        match &pod.node_name {
            Some(node) if pod.phase != PodPhase::Succeeded && pod.phase != PodPhase::Failed => {
                Some(PodContrib {
                    node: node.clone(),
                    cpu: pod.total_request("cpu"),
                    mem: pod.total_request("memory"),
                    labels: labels.clone(),
                })
            }
            _ => None,
        }
    }

    /// Re-derives one pod's index state from its current object
    /// (`None` = deleted).
    fn refresh_pod(&mut self, current: Option<&StoredObject>, key: &ObjKey) {
        let (pending_now, contrib_now) = match current {
            Some(obj) => match &obj.data {
                ObjectData::Pod(pod) => (
                    pod.phase == PodPhase::Pending && pod.node_name.is_none(),
                    Self::contribution(pod, &obj.meta.labels),
                ),
                _ => (false, None),
            },
            None => (false, None),
        };
        if pending_now {
            self.pending.insert(key.clone(), ());
        } else {
            self.pending.remove(key);
        }
        let contrib_before = self.contrib.get(key).cloned();
        if contrib_before == contrib_now {
            return;
        }
        if let Some(old) = contrib_before {
            self.contrib.remove(key);
            self.apply_contrib(&old, false);
        }
        if let Some(new) = contrib_now {
            self.add_contrib(key.clone(), new);
        }
    }

    /// Re-derives one node's index state from the store. Usage and resident
    /// labels are owned by the pod contributions, so a modified node only
    /// refreshes its own fields; a (re)created node re-accumulates existing
    /// contributions pointing at its name.
    fn refresh_node(&mut self, current: Option<&StoredObject>, name: &str) {
        let node_key = ObjKey::new(Kind::Node, "", name);
        let current = match current {
            Some(obj) => match &obj.data {
                ObjectData::Node(n) => Some(n),
                _ => None,
            },
            None => None,
        };
        let previous = self.nodes.get(&node_key.name).cloned();
        match (previous, current) {
            (None, None) => {}
            (Some(old), None) => {
                self.by_residual
                    .remove(&(Reverse(old.residual()), name.to_string()));
                for (k, v) in &old.labels {
                    self.node_labels
                        .remove(&(k.clone(), v.clone(), name.to_string()));
                }
                if !old.taints.is_empty() {
                    self.tainted_nodes -= 1;
                }
                self.nodes.remove(&node_key.name);
            }
            (None, Some(node)) => {
                let mut slot = NodeSlot::fresh(node);
                for (_, c) in self.contrib.iter() {
                    if c.node == name {
                        slot.used_cpu = slot.used_cpu + c.cpu;
                        slot.used_mem = slot.used_mem + c.mem;
                        for (k, v) in &c.labels {
                            *slot
                                .pod_label_counts
                                .entry(k.clone())
                                .or_default()
                                .entry(v.clone())
                                .or_insert(0) += 1;
                        }
                    }
                }
                self.install_node(name, slot);
            }
            (Some(old), Some(node)) => {
                let mut slot = old.clone();
                slot.ready = node.ready;
                slot.labels = node.labels.clone();
                slot.taints = node.taints.clone();
                slot.cap_cpu = node
                    .capacity
                    .get("cpu")
                    .copied()
                    .unwrap_or_else(Quantity::zero);
                slot.cap_mem = node
                    .capacity
                    .get("memory")
                    .copied()
                    .unwrap_or_else(Quantity::zero);
                if slot == old {
                    return;
                }
                self.by_residual
                    .remove(&(Reverse(old.residual()), name.to_string()));
                self.by_residual
                    .insert((Reverse(slot.residual()), name.to_string()), ());
                for (k, v) in &old.labels {
                    if slot.labels.get(k) != Some(v) {
                        self.node_labels
                            .remove(&(k.clone(), v.clone(), name.to_string()));
                    }
                }
                for (k, v) in &slot.labels {
                    if old.labels.get(k) != Some(v) {
                        self.node_labels
                            .insert((k.clone(), v.clone(), name.to_string()), ());
                    }
                }
                match (old.taints.is_empty(), slot.taints.is_empty()) {
                    (true, false) => self.tainted_nodes += 1,
                    (false, true) => self.tainted_nodes -= 1,
                    _ => {}
                }
                self.nodes.insert(name.to_string(), slot);
            }
        }
    }

    /// Registers a brand-new node slot in every index.
    fn install_node(&mut self, name: &str, slot: NodeSlot) {
        self.by_residual
            .insert((Reverse(slot.residual()), name.to_string()), ());
        for (k, v) in &slot.labels {
            self.node_labels
                .insert((k.clone(), v.clone(), name.to_string()), ());
        }
        if !slot.taints.is_empty() {
            self.tainted_nodes += 1;
        }
        self.nodes.insert(name.to_string(), slot);
    }

    fn add_contrib(&mut self, key: ObjKey, c: PodContrib) {
        self.apply_contrib(&c, true);
        self.contrib.insert(key, c);
    }

    /// Adds or subtracts one pod's contribution from its node slot,
    /// re-ranking the node in the residual order if its free CPU moved.
    fn apply_contrib(&mut self, c: &PodContrib, add: bool) {
        let (old_res, new_res) = {
            let Some(slot) = self.nodes.get_mut(&c.node) else {
                // Contribution to an unregistered node: usage is tracked
                // only through the contrib cache until the node appears.
                return;
            };
            let before = slot.residual();
            if add {
                slot.used_cpu = slot.used_cpu + c.cpu;
                slot.used_mem = slot.used_mem + c.mem;
            } else {
                slot.used_cpu = slot.used_cpu - c.cpu;
                slot.used_mem = slot.used_mem - c.mem;
            }
            for (k, v) in &c.labels {
                if add {
                    *slot
                        .pod_label_counts
                        .entry(k.clone())
                        .or_default()
                        .entry(v.clone())
                        .or_insert(0) += 1;
                } else if let Some(vals) = slot.pod_label_counts.get_mut(k) {
                    if let Some(count) = vals.get_mut(v) {
                        *count -= 1;
                        if *count == 0 {
                            vals.remove(v);
                        }
                    }
                    if vals.is_empty() {
                        slot.pod_label_counts.remove(k);
                    }
                }
            }
            (before, slot.residual())
        };
        if old_res != new_res {
            self.by_residual.remove(&(Reverse(old_res), c.node.clone()));
            self.by_residual
                .insert((Reverse(new_res), c.node.clone()), ());
        }
    }

    /// Same placement policy as the baseline [`place`], answered from the
    /// indexes: either a residual-ordered scan (first feasible node is the
    /// winner) or, for selector/affinity-constrained pods, a scan of only
    /// the nodes carrying the required label.
    fn place_indexed(
        &self,
        pod: &Pod,
        need_cpu: Quantity,
        need_mem: Quantity,
    ) -> Result<String, String> {
        if self.nodes.is_empty() {
            return Err("no nodes registered".to_string());
        }
        let prefilter = pod
            .node_selector
            .iter()
            .next()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .or_else(|| {
                pod.affinity
                    .node_required
                    .first()
                    .map(|t| (t.key.as_str(), t.value.as_str()))
            });
        let winner: Option<&String> = match prefilter {
            Some((lk, lv)) => {
                // Candidates must carry this label; rank them by the same
                // (residual desc, name asc) order as the full scan. The max
                // is order-independent, so set iteration order is free.
                let mut best: Option<(Quantity, &String)> = None;
                for ((k, v, name), _) in self.node_labels.range_from_by(|key| {
                    (key.0.as_str(), key.1.as_str(), key.2.as_str()).cmp(&(lk, lv, ""))
                }) {
                    if k != lk || v != lv {
                        break;
                    }
                    let slot = self.nodes.get(name).expect("label index points at slot");
                    if self.slot_reject(pod, need_cpu, need_mem, slot).is_some() {
                        continue;
                    }
                    let res = slot.residual();
                    let better = match &best {
                        None => true,
                        Some((best_res, best_name)) => {
                            res > *best_res || (res == *best_res && name < *best_name)
                        }
                    };
                    if better {
                        best = Some((res, name));
                    }
                }
                best.map(|(_, name)| name)
            }
            None => {
                let mut found = None;
                for ((_, name), _) in self.by_residual.iter() {
                    let slot = self.nodes.get(name).expect("residual index points at slot");
                    if self.slot_reject(pod, need_cpu, need_mem, slot).is_none() {
                        found = Some(name);
                        break;
                    }
                }
                found
            }
        };
        match winner {
            Some(name) => Ok(name.clone()),
            None => Err(self.unschedulable_reasons(pod, need_cpu, need_mem)),
        }
    }

    /// First baseline filter that rejects this node, or `None` if feasible.
    /// Check order matches [`place`] so per-node reasons are byte-identical.
    fn slot_reject(
        &self,
        pod: &Pod,
        need_cpu: Quantity,
        need_mem: Quantity,
        slot: &NodeSlot,
    ) -> Option<&'static str> {
        if !slot.ready {
            return Some("not ready");
        }
        if !pod
            .node_selector
            .iter()
            .all(|(k, v)| slot.labels.get(k) == Some(v))
        {
            return Some("node selector mismatch");
        }
        if !pod
            .affinity
            .node_required
            .iter()
            .all(|t| slot.labels.get(&t.key) == Some(&t.value))
        {
            return Some("node affinity unsatisfied");
        }
        if self.tainted_nodes > 0 {
            let intolerable = slot.taints.iter().any(|taint| {
                matches!(
                    taint.effect,
                    TaintEffect::NoSchedule
                        | TaintEffect::PreferNoSchedule
                        | TaintEffect::NoExecute
                ) && !pod.tolerations.iter().any(|tol| tol.tolerates(taint))
            });
            if intolerable {
                return Some("untolerated taint");
            }
        }
        if slot.used_cpu + need_cpu > slot.cap_cpu || slot.used_mem + need_mem > slot.cap_mem {
            return Some("insufficient resources");
        }
        if pod
            .affinity
            .pod_anti_affinity
            .iter()
            .any(|t| slot.has_pod_label(&t.key, &t.value))
        {
            return Some("anti-affinity conflict");
        }
        if pod
            .affinity
            .pod_affinity
            .iter()
            .any(|t| !slot.has_pod_label(&t.key, &t.value))
        {
            return Some("pod affinity unmet");
        }
        None
    }

    /// The baseline's unschedulable message: per-node reasons joined in
    /// node-name order. Only paid for pods that failed to place.
    fn unschedulable_reasons(&self, pod: &Pod, need_cpu: Quantity, need_mem: Quantity) -> String {
        let mut reasons: Vec<String> = Vec::new();
        for (name, slot) in self.nodes.iter() {
            if let Some(why) = self.slot_reject(pod, need_cpu, need_mem, slot) {
                reasons.push(format!("{name}: {why}"));
            }
        }
        if reasons.is_empty() {
            "no nodes registered".to_string()
        } else {
            reasons.join(", ")
        }
    }
}

/// Runs one scheduling pass using the maintained [`SchedIndex`]: identical
/// outcomes and store writes to [`schedule`], at O(pending + events since
/// the last pass) instead of O(total pods). In debug builds every pass is
/// cross-checked against the exhaustive baseline on a pre-pass snapshot.
pub fn schedule_indexed(
    store: &mut ObjectStore,
    time: u64,
    index: &mut SchedIndex,
) -> ScheduleOutcome {
    index.sync(store);
    #[cfg(debug_assertions)]
    let baseline_input = store.snapshot();
    let mut outcome = ScheduleOutcome::default();
    let pending: Vec<ObjKey> = index.pending.keys().cloned().collect();
    for key in pending {
        // A shared handle instead of a deep clone: cloning 20k pods per
        // deploy-scale pass (containers, resource maps) would dominate the
        // pass, and the handle releases the store borrow for the writes
        // below.
        let handle = match store.get_shared(&key) {
            Some(obj) => std::sync::Arc::clone(obj),
            None => continue,
        };
        let ObjectData::Pod(pod) = &handle.data else {
            continue;
        };
        let labels = handle.meta.labels.clone();
        let need_cpu = pod.total_request("cpu");
        let need_mem = pod.total_request("memory");
        match index.place_indexed(pod, need_cpu, need_mem) {
            Ok(node_name) => {
                index.pending.remove(&key);
                index.add_contrib(
                    key.clone(),
                    PodContrib {
                        node: node_name.clone(),
                        cpu: need_cpu,
                        mem: need_mem,
                        labels,
                    },
                );
                store
                    .update_with(&key, time, |obj| {
                        if let ObjectData::Pod(p) = &mut obj.data {
                            p.node_name = Some(node_name.clone());
                            p.reason = String::new();
                            p.phase_since = time;
                        }
                    })
                    .expect("pod exists");
                outcome.bound.push((key.name.clone(), node_name));
            }
            Err(reason) => {
                store
                    .update_with(&key, time, |obj| {
                        if let ObjectData::Pod(p) = &mut obj.data {
                            if p.reason != "Unschedulable" {
                                p.reason = "Unschedulable".to_string();
                            }
                        }
                    })
                    .expect("pod exists");
                outcome.unschedulable.push((key.name.clone(), reason));
            }
        }
    }
    // The pass's own writes are already reflected in the index (bindings
    // update it directly; reason strings are not index state), so the
    // cursor absorbs them instead of replaying them next sync.
    index.synced = store.revision();
    #[cfg(debug_assertions)]
    {
        let mut baseline_store = baseline_input;
        let baseline = schedule(&mut baseline_store, time);
        debug_assert_eq!(
            outcome, baseline,
            "indexed scheduler diverged from exhaustive baseline"
        );
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::ObjectMeta;
    use crate::objects::{Container, Node};
    use crate::resources::{
        NodeAffinityTerm, PodAffinityTerm, ResourceRequirements, Taint, TaintEffect, Toleration,
        TolerationOperator,
    };

    fn add_node(store: &mut ObjectStore, name: &str, cpu: &str, mem: &str) {
        store
            .create(
                ObjectMeta::named("", name),
                ObjectData::Node(Node::with_capacity(cpu, mem)),
                0,
            )
            .unwrap();
    }

    fn add_pod(store: &mut ObjectStore, name: &str, cpu: &str, mem: &str) -> ObjKey {
        let pod = Pod {
            containers: vec![Container {
                name: "c".to_string(),
                image: "img:1".to_string(),
                resources: ResourceRequirements::new()
                    .request("cpu", cpu)
                    .request("memory", mem),
                ..Container::default()
            }],
            ..Pod::default()
        };
        store
            .create(ObjectMeta::named("ns", name), ObjectData::Pod(pod), 0)
            .unwrap()
    }

    #[test]
    fn binds_to_node_with_most_free_cpu() {
        let mut store = ObjectStore::new();
        add_node(&mut store, "small", "2", "4Gi");
        add_node(&mut store, "big", "8", "16Gi");
        let key = add_pod(&mut store, "p", "1", "1Gi");
        let outcome = schedule(&mut store, 1);
        assert_eq!(outcome.bound.len(), 1);
        let pod = store.get(&key).unwrap();
        if let ObjectData::Pod(p) = &pod.data {
            assert_eq!(p.node_name.as_deref(), Some("big"));
        }
    }

    #[test]
    fn respects_capacity_accounting_across_pods() {
        let mut store = ObjectStore::new();
        add_node(&mut store, "n1", "2", "4Gi");
        add_pod(&mut store, "a", "1500m", "1Gi");
        add_pod(&mut store, "b", "1500m", "1Gi");
        let outcome = schedule(&mut store, 1);
        assert_eq!(outcome.bound.len(), 1);
        assert_eq!(outcome.unschedulable.len(), 1);
        assert!(outcome.unschedulable[0].1.contains("insufficient"));
    }

    #[test]
    fn node_selector_and_affinity_filter() {
        let mut store = ObjectStore::new();
        add_node(&mut store, "plain", "4", "8Gi");
        let key = {
            let mut pod = Pod::default();
            pod.node_selector
                .insert("disk".to_string(), "ssd".to_string());
            store
                .create(ObjectMeta::named("ns", "p"), ObjectData::Pod(pod), 0)
                .unwrap()
        };
        let outcome = schedule(&mut store, 1);
        assert_eq!(outcome.unschedulable.len(), 1);
        if let ObjectData::Pod(p) = &store.get(&key).unwrap().data {
            assert_eq!(p.reason, "Unschedulable");
        }
        // Label the node and try again.
        let node_key = ObjKey::new(Kind::Node, "", "plain");
        store
            .update_with(&node_key, 2, |o| {
                if let ObjectData::Node(n) = &mut o.data {
                    n.labels.insert("disk".to_string(), "ssd".to_string());
                }
            })
            .unwrap();
        let outcome = schedule(&mut store, 3);
        assert_eq!(outcome.bound.len(), 1);
    }

    #[test]
    fn unsatisfiable_node_affinity_is_reported() {
        let mut store = ObjectStore::new();
        add_node(&mut store, "n1", "4", "8Gi");
        let mut pod = Pod::default();
        pod.affinity.node_required.push(NodeAffinityTerm {
            key: "zone".to_string(),
            value: "nowhere".to_string(),
        });
        store
            .create(ObjectMeta::named("ns", "p"), ObjectData::Pod(pod), 0)
            .unwrap();
        let outcome = schedule(&mut store, 1);
        assert_eq!(outcome.unschedulable.len(), 1);
        assert!(outcome.unschedulable[0].1.contains("affinity"));
    }

    #[test]
    fn taints_block_unless_tolerated() {
        let mut store = ObjectStore::new();
        add_node(&mut store, "t1", "4", "8Gi");
        let node_key = ObjKey::new(Kind::Node, "", "t1");
        store
            .update_with(&node_key, 0, |o| {
                if let ObjectData::Node(n) = &mut o.data {
                    n.taints.push(Taint {
                        key: "dedicated".to_string(),
                        value: "db".to_string(),
                        effect: TaintEffect::NoSchedule,
                    });
                }
            })
            .unwrap();
        add_pod(&mut store, "p", "100m", "128Mi");
        let outcome = schedule(&mut store, 1);
        assert_eq!(outcome.unschedulable.len(), 1);
        // Tolerating pod schedules.
        let mut pod = Pod::default();
        pod.tolerations.push(Toleration {
            key: "dedicated".to_string(),
            value: "db".to_string(),
            operator: TolerationOperator::Equal,
        });
        store
            .create(ObjectMeta::named("ns", "tolerant"), ObjectData::Pod(pod), 0)
            .unwrap();
        let outcome = schedule(&mut store, 2);
        assert!(outcome.bound.iter().any(|(p, _)| p == "tolerant"));
    }

    #[test]
    fn anti_affinity_spreads_pods() {
        let mut store = ObjectStore::new();
        add_node(&mut store, "n1", "4", "8Gi");
        add_node(&mut store, "n2", "4", "8Gi");
        for name in ["zk-0", "zk-1", "zk-2"] {
            let mut pod = Pod::default();
            pod.affinity.pod_anti_affinity.push(PodAffinityTerm {
                key: "app".to_string(),
                value: "zk".to_string(),
            });
            let meta = ObjectMeta::named("ns", name).with_label("app", "zk");
            store.create(meta, ObjectData::Pod(pod), 0).unwrap();
        }
        let outcome = schedule(&mut store, 1);
        // Two nodes, three pods with anti-affinity: one must stay pending.
        assert_eq!(outcome.bound.len(), 2);
        assert_eq!(outcome.unschedulable.len(), 1);
        assert!(outcome.unschedulable[0].1.contains("anti-affinity"));
    }

    #[test]
    fn pod_affinity_requires_co_located_match() {
        let mut store = ObjectStore::new();
        add_node(&mut store, "n1", "4", "8Gi");
        // The dependent pod requires a pod labelled app=primary on the node.
        let mut pod = Pod::default();
        pod.affinity.pod_affinity.push(PodAffinityTerm {
            key: "app".to_string(),
            value: "primary".to_string(),
        });
        store
            .create(ObjectMeta::named("ns", "dep"), ObjectData::Pod(pod), 0)
            .unwrap();
        let outcome = schedule(&mut store, 1);
        assert_eq!(outcome.unschedulable.len(), 1);
        // Schedule the primary first, then the dependent fits.
        let meta = ObjectMeta::named("ns", "primary").with_label("app", "primary");
        store
            .create(meta, ObjectData::Pod(Pod::default()), 0)
            .unwrap();
        let outcome = schedule(&mut store, 2);
        assert_eq!(outcome.unschedulable.len(), 1); // dep sorted before primary
        let outcome = schedule(&mut store, 3);
        assert!(outcome.bound.iter().any(|(p, _)| p == "dep"));
        let _ = outcome;
    }

    #[test]
    fn not_ready_nodes_excluded() {
        let mut store = ObjectStore::new();
        add_node(&mut store, "down", "4", "8Gi");
        let node_key = ObjKey::new(Kind::Node, "", "down");
        store
            .update_with(&node_key, 0, |o| {
                if let ObjectData::Node(n) = &mut o.data {
                    n.ready = false;
                }
            })
            .unwrap();
        add_pod(&mut store, "p", "100m", "128Mi");
        let outcome = schedule(&mut store, 1);
        assert_eq!(outcome.unschedulable.len(), 1);
        assert!(outcome.unschedulable[0].1.contains("not ready"));
    }
}
