//! The simulated cluster: API server, scheduler, controllers, pod lifecycle,
//! simulated clock, logs, and convergence detection.
//!
//! [`SimCluster::step`] advances the world one simulated second: built-in
//! controllers reconcile, the scheduler binds pods, and pod lifecycle
//! progresses (image pulls, container starts, crash loops). Acto's
//! convergence detection ([`SimCluster::run_until_converged`]) implements
//! the paper's reset timer (§5.5): the timer restarts on every observed
//! state event and convergence is declared when it expires.
//!
//! # The event-driven step engine
//!
//! By default the cluster runs an event-driven engine: controllers and the
//! scheduler only re-run when one of their input kinds changed since their
//! last run ([`crate::controllers::run_all_dirty`]), and once a tick changes
//! nothing observable ([`SimCluster::quiescence_fingerprint`]) the clock
//! jumps straight to the next timer wakeup ([`SimCluster::next_wakeup`]: pod
//! start/readiness deadlines, fault firings, node returns, blackout expiry)
//! or to the reset-timer expiry, instead of ticking through idle seconds.
//! Every skipped tick is provably a no-op, so sim timestamps, logs, and
//! watch events are byte-identical to the legacy ticked loop, which remains
//! available behind [`set_ticked_engine`] for equivalence testing.

use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::api::ApiServer;
use crate::controllers::ControllerCursors;
use crate::meta::ObjectMeta;
use crate::objects::{Container, Kind, Node, ObjectData, Pod, PodPhase, StoredObject};
use crate::platform::PlatformBugs;
use crate::pmap::PMap;
use crate::scheduler;
use crate::store::{ObjKey, ObjectStore};

/// Seconds a scheduled pod takes to pull its image and start containers.
pub const POD_START_DELAY: u64 = 3;

/// Seconds a running pod takes to pass readiness.
pub const POD_READY_DELAY: u64 = 2;

/// Watch events retained below the current revision before the event log is
/// compacted (event-driven mode only; far above any consumer's look-back).
pub const EVENT_LOG_KEEP: u64 = 256;

thread_local! {
    static TICKED_ENGINE: Cell<bool> = const { Cell::new(false) };
}

/// Selects the legacy ticked loop (`true`) or the event-driven engine
/// (`false`, the default) for clusters stepped on this thread. Exists for
/// the equivalence harness and the `step_engine` bench baseline.
pub fn set_ticked_engine(enabled: bool) {
    TICKED_ENGINE.with(|f| f.set(enabled));
}

/// Returns `true` when the legacy ticked loop is selected on this thread.
pub fn ticked_engine() -> bool {
    TICKED_ENGINE.with(|f| f.get())
}

static TICKS_EXECUTED: AtomicU64 = AtomicU64::new(0);
static TICKS_SKIPPED: AtomicU64 = AtomicU64::new(0);

/// Process-wide `(ticks_executed, ticks_skipped)` across all clusters, for
/// benches. Skipped ticks are simulated seconds the engine fast-forwarded
/// over without executing.
pub fn engine_counters() -> (u64, u64) {
    (
        TICKS_EXECUTED.load(Ordering::Relaxed),
        TICKS_SKIPPED.load(Ordering::Relaxed),
    )
}

static CHECKPOINT_FORKS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of clusters materialized from checkpoints
/// ([`SimCluster::from_checkpoint`] and [`SimCluster::restore`]). The fuzz
/// bench uses the delta across a run to prove fork-from-checkpoint — not
/// redeploy — is the hot path.
pub fn checkpoint_forks() -> u64 {
    CHECKPOINT_FORKS.load(Ordering::Relaxed)
}

/// Dirty-tracking state of the event-driven engine: reconcile-queue cursors,
/// tick accounting, and the maintained indexes that make steady-state step
/// cost proportional to what changed (scheduler index, pod-deadline timer
/// index, dirty-pod cursor, waiter sets). Every index is a pure function of
/// store content plus its `synced` revision, kept current by replaying the
/// store's watch-event log, so checkpointing this struct (an O(1) persistent
///-map clone) captures the whole engine and restored clusters replay
/// bit-for-bit.
#[derive(Debug, Clone, Default)]
pub struct StepEngine {
    cursors: ControllerCursors,
    ticks_executed: u64,
    ticks_skipped: u64,
    /// Incremental scheduler index (event-driven mode only).
    sched: scheduler::SchedIndex,
    /// `(deadline, pod)` timer index backing [`SimCluster::next_wakeup`]
    /// and the due-timer part of the dirty-pod set.
    timers: PodTimers,
    /// Store revision up to which [`SimCluster::advance_pods`] has already
    /// observed pod events; only pods with events past it are revisited.
    pod_cursor: u64,
    /// Pods that must be revisited regardless of store events (crash
    /// conditions toggle without a store write).
    forced_dirty: BTreeSet<ObjKey>,
    /// Pods last seen blocked on an unbound claim: revisited whenever any
    /// PVC event lands.
    vol_waiters: PMap<ObjKey, ()>,
    /// Pods last seen in ImagePullBackOff: revisited whenever the image
    /// catalog changes.
    image_waiters: PMap<ObjKey, ()>,
    /// Catalog epoch the waiter pass last observed.
    image_epoch_seen: u64,
}

/// Timer index over `(deadline, pod key)`: every pod sitting in a timed
/// phase (Pending-and-bound waiting out [`POD_START_DELAY`], Running-not-
/// ready waiting out [`POD_READY_DELAY`]) appears exactly once, keyed by
/// the absolute sim-time at which its transition fires. Synchronized from
/// the store's watch-event log (full rebuild when the log was compacted
/// past `synced`), so [`SimCluster::next_wakeup`] reads the earliest
/// deadline in O(log n) instead of scanning every pod.
#[derive(Debug, Clone, Default)]
pub struct PodTimers {
    synced: u64,
    by_deadline: PMap<(u64, ObjKey), ()>,
    per_pod: PMap<ObjKey, u64>,
}

impl PodTimers {
    /// The deadline rule. Must mirror the legacy full scan in
    /// [`SimCluster::next_wakeup`] exactly: a pod has a timer iff the scan
    /// would consider it.
    fn deadline_for(pod: &Pod) -> Option<u64> {
        match pod.phase {
            PodPhase::Pending if pod.node_name.is_some() => Some(pod.phase_since + POD_START_DELAY),
            PodPhase::Running if !pod.ready => Some(pod.phase_since + POD_READY_DELAY),
            _ => None,
        }
    }

    /// Brings the index up to the store's current revision by replaying
    /// pod events, or rebuilding from a full scan if the event log was
    /// compacted past our cursor.
    fn sync(&mut self, store: &ObjectStore) {
        if store.revision() == self.synced {
            return;
        }
        if store.events_floor() > self.synced {
            self.rebuild(store);
            return;
        }
        let events = store.events_since(self.synced);
        // Refreshing reads *current* store state, so each key needs exactly
        // one refresh no matter how often it recurs in the batch; a reverse
        // scan with a seen-set keeps that O(batch log batch) even when one
        // tick touches every pod (e.g. a 20k-pod start-delay burst).
        let mut seen: BTreeSet<&ObjKey> = BTreeSet::new();
        for event in events.iter().rev() {
            if event.key.kind != Kind::Pod {
                continue;
            }
            if !seen.insert(&event.key) {
                continue;
            }
            // The dedup keeps only each key's last event, whose payload is
            // exactly the object's current state — no store descent needed.
            self.refresh(&event.key, event.obj.as_deref());
        }
        self.synced = store.revision();
    }

    fn rebuild(&mut self, store: &ObjectStore) {
        *self = PodTimers::default();
        for (key, obj) in store.iter() {
            if let ObjectData::Pod(p) = &obj.data {
                if let Some(d) = Self::deadline_for(p) {
                    self.per_pod.insert(key.clone(), d);
                    self.by_deadline.insert((d, key.clone()), ());
                }
            }
        }
        self.synced = store.revision();
    }

    fn refresh(&mut self, key: &ObjKey, current_obj: Option<&StoredObject>) {
        let current = current_obj.and_then(|obj| match &obj.data {
            ObjectData::Pod(p) => Self::deadline_for(p),
            _ => None,
        });
        let cached = self.per_pod.get(key).copied();
        if cached == current {
            return;
        }
        if let Some(d) = cached {
            self.by_deadline.remove(&(d, key.clone()));
            self.per_pod.remove(key);
        }
        if let Some(d) = current {
            self.by_deadline.insert((d, key.clone()), ());
            self.per_pod.insert(key.clone(), d);
        }
    }

    /// Earliest deadline strictly after `now`, if any.
    fn next_after(&self, now: u64) -> Option<u64> {
        self.by_deadline
            .range_from_by(|k| {
                if k.0 <= now {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Greater
                }
            })
            .next()
            .map(|(k, _)| k.0)
    }

    /// Pod keys whose deadline is at or before `now` (due or overdue).
    fn due_keys(&self, now: u64) -> impl Iterator<Item = &ObjKey> {
        self.by_deadline
            .iter()
            .take_while(move |(k, _)| k.0 <= now)
            .map(|(k, _)| &k.1)
    }
}

/// Crash conditions keyed `(namespace, pod name)`, stored as a sorted vec
/// so the per-pod lookup in [`SimCluster::advance_pods`] is a zero-
/// allocation binary search on borrowed strings (the old `BTreeMap<String,
/// String>` keyed `"ns/name"` allocated a fresh key per pod per tick).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct CrashMap {
    entries: Vec<((String, String), String)>,
}

impl CrashMap {
    fn position(&self, namespace: &str, pod_name: &str) -> Result<usize, usize> {
        self.entries.binary_search_by(|((ns, name), _)| {
            (ns.as_str(), name.as_str()).cmp(&(namespace, pod_name))
        })
    }

    fn get(&self, namespace: &str, pod_name: &str) -> Option<&str> {
        self.position(namespace, pod_name)
            .ok()
            .map(|i| self.entries[i].1.as_str())
    }

    /// Returns the previous reason, like `BTreeMap::insert`.
    fn insert(&mut self, namespace: &str, pod_name: &str, reason: &str) -> Option<String> {
        match self.position(namespace, pod_name) {
            Ok(i) => Some(std::mem::replace(
                &mut self.entries[i].1,
                reason.to_string(),
            )),
            Err(i) => {
                self.entries.insert(
                    i,
                    (
                        (namespace.to_string(), pod_name.to_string()),
                        reason.to_string(),
                    ),
                );
                None
            }
        }
    }

    fn remove(&mut self, namespace: &str, pod_name: &str) -> Option<String> {
        self.position(namespace, pod_name)
            .ok()
            .map(|i| self.entries.remove(i).1)
    }

    fn iter(&self) -> impl Iterator<Item = (&(String, String), &String)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// Lifecycle transition decided for one pod by the read pass of
/// [`SimCluster::advance_pods`], applied by the mutation pass.
#[derive(Debug)]
/// How a dirty pod's current object is obtained in the decide pass:
/// `Event` carries the post-write handle from the pod's last watch event
/// (`None` when that event was a deletion); `Probe` means the pod is dirty
/// for a non-event reason (timer due, waiter refresh, forced) and must be
/// read from the store.
enum DirtySource {
    Event(Option<Arc<StoredObject>>),
    Probe,
}

enum PodAction {
    /// Enter (or stay in) a crash loop; `already` suppresses the restart
    /// counter bump and the log line.
    CrashLoop { already: bool, msg: Option<String> },
    /// Record a stuck reason (config error, unbound volume).
    SetReason(&'static str),
    /// Record ImagePullBackOff, logging on the first occurrence.
    ImagePull { log: Option<String> },
    /// Pending pod finished its start delay.
    Start,
    /// Running pod passed readiness.
    MarkReady,
    /// Failed pod with no crash condition restarts.
    Restart,
}

/// Observable-state fingerprint used by the engine's no-op detection: two
/// equal fingerprints around a tick prove the tick changed nothing any
/// oracle, transcript, or controller can see.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterFingerprint {
    revision: u64,
    logs: usize,
    crash_epoch: u64,
    pending_conflicts: u32,
    faults: Option<(usize, u32, u64, usize)>,
    /// Crash-point interposer state: `(operator_writes, armed crash
    /// point)`. The write counter only advances with the store revision,
    /// so including it never blocks fast-forward; the armed countdown
    /// keeps a pending crash point from being skipped over.
    crash_points: (u64, Option<(u32, u64)>),
}

impl ClusterFingerprint {
    /// Hash of the fingerprint's *repeatable* components, for coverage
    /// bucketing in the fuzzer. Monotonic counters (store revision, log
    /// length, cumulative operator writes, fault-event count) are excluded
    /// — they grow with execution history, so hashing them would make every
    /// execution trivially "novel" and collapse coverage guidance into pure
    /// random search. What remains distinguishes genuinely different
    /// quiescent conditions: crash epoch, pending injected conflicts,
    /// fault-injector progress, and any armed crash point.
    pub fn coverage_hash(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        let mut mix = |n: u64| {
            for byte in n.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(self.crash_epoch);
        mix(u64::from(self.pending_conflicts));
        // The fault injector's cursor and blackout deadline are excluded on
        // purpose: the cursor tracks plan length and the deadline is an
        // absolute sim-time, so hashing either would mint a "novel" bucket
        // for every distinct fault plan — trivial novelty that says nothing
        // about the observable system. Only undrained transient errors
        // (pending work the operator still owes) are territory.
        match &self.faults {
            None => mix(0),
            Some((_next, errors, _blackout, _events)) => {
                mix(1);
                mix(u64::from(*errors));
            }
        }
        match self.crash_points.1 {
            None => mix(0),
            Some((at_write, down_for)) => {
                mix(1);
                mix(u64::from(at_write));
                mix(down_for);
            }
        }
        h
    }
}

/// Log severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogLevel {
    /// Informational message.
    Info,
    /// Warning.
    Warn,
    /// Error (scanned by Acto's error-log oracle).
    Error,
    /// Unrecoverable operator crash (panic).
    Panic,
}

/// One log entry from the operator or the platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Simulated time of the entry.
    pub time: u64,
    /// Severity.
    pub level: LogLevel,
    /// Component that produced it (e.g. the operator name).
    pub source: String,
    /// Message text.
    pub message: String,
}

/// Generated node topology for production-sized clusters: `count` uniform
/// nodes spread round-robin across `zones` availability zones, optionally
/// pre-populated with inert background pods that load the scheduler and
/// store the way a busy shared cluster would.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeTopology {
    /// Number of nodes to generate (`node-00000`, `node-00001`, ...).
    pub nodes: usize,
    /// Per-node CPU capacity (e.g. `"16"`).
    pub cpu: String,
    /// Per-node memory capacity (e.g. `"64Gi"`).
    pub memory: String,
    /// Availability zones; node `i` gets label `zone=zone-{i % zones}`.
    pub zones: usize,
    /// Background pods (`bg-000000`, ... in namespace `"background"`) to
    /// seed, each requesting 50m CPU / 64Mi memory. They schedule and run
    /// like any workload but live in their own namespace, so per-namespace
    /// controller scans stay small while the scheduler, timer index, and
    /// fingerprint paths all carry the full population.
    pub background_pods: usize,
}

impl NodeTopology {
    /// A `count`-node topology with the default node shape (16 CPU / 64Gi,
    /// two zones, no background pods).
    pub fn new(count: usize) -> NodeTopology {
        NodeTopology {
            nodes: count,
            cpu: "16".to_string(),
            memory: "64Gi".to_string(),
            zones: 2,
            background_pods: 0,
        }
    }
}

/// Namespace that generated background pods live in.
pub const BACKGROUND_NAMESPACE: &str = "background";

/// Image used by generated background pods (auto-added to the catalog).
pub const BACKGROUND_IMAGE: &str = "pause:3.9";

/// Static configuration of a simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Nodes to create: `(name, cpu, memory)`.
    pub nodes: Vec<(String, String, String)>,
    /// Container images that can be pulled.
    pub image_catalog: Vec<String>,
    /// Platform-bug configuration.
    pub bugs: PlatformBugs,
    /// Generated large-cluster topology. When set, replaces `nodes` and may
    /// seed background pods; when `None` the explicit `nodes` list is used.
    pub topology: Option<NodeTopology>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: (0..4)
                .map(|i| (format!("node-{i}"), "16".to_string(), "64Gi".to_string()))
                .collect(),
            image_catalog: Vec::new(),
            bugs: PlatformBugs::all(),
            topology: None,
        }
    }
}

/// A deep, resumable snapshot of a [`SimCluster`] at an instant.
///
/// Built on [`crate::store::ObjectStore::snapshot`] (via
/// [`crate::api::ApiServer::snapshot`]), plus the simulated clock, the log
/// buffer, the image catalog, crash-loop conditions, any mid-flight
/// fault-injector state, and the step engine's reconcile cursors
/// ([`StepEngine`]; timer wakeups are derived from object state, so the
/// cursors are the engine's only persistent state). The scheduler and the
/// built-in controllers are otherwise stateless functions over the store:
/// restoring a checkpoint and stepping forward replays bit-for-bit what the
/// original cluster would have done.
///
/// Checkpoints power Acto's test partitioning (paper §5.5): a parallel
/// worker starting plan segment `k` restores the converged prefix state
/// instead of redeploying and re-converging from scratch.
#[derive(Debug, Clone)]
pub struct ClusterCheckpoint {
    api: ApiServer,
    time: u64,
    /// Shared with the live cluster until either side logs again.
    logs: Arc<Vec<LogEntry>>,
    image_catalog: BTreeSet<String>,
    catalog_epoch: u64,
    crashing: CrashMap,
    faults: Option<crate::faults::FaultInjector>,
    engine: StepEngine,
    crash_epoch: u64,
}

impl ClusterCheckpoint {
    /// Simulated time at which the checkpoint was taken.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Objects shared with other snapshots versus uniquely owned by this
    /// checkpoint: `(shared, uniquely_owned)`. See
    /// [`crate::store::ObjectStore::sharing_stats`].
    pub fn sharing_stats(&self) -> (usize, usize) {
        self.api.store().sharing_stats()
    }

    /// Number of objects captured by this checkpoint.
    pub fn object_count(&self) -> usize {
        self.api.store().len()
    }
}

/// The simulated cluster.
///
/// # Examples
///
/// ```
/// use simkube::{ClusterConfig, SimCluster};
///
/// let mut cluster = SimCluster::new(ClusterConfig::default());
/// cluster.step();
/// assert_eq!(cluster.now(), 1);
/// ```
#[derive(Debug)]
pub struct SimCluster {
    api: ApiServer,
    time: u64,
    /// Copy-on-write log buffer: checkpoints share it until the cluster
    /// logs again, at which point only this side pays for the copy.
    logs: Arc<Vec<LogEntry>>,
    image_catalog: BTreeSet<String>,
    /// Bumped whenever the image catalog actually changes; lets the dirty
    /// pod pass revisit ImagePullBackOff waiters only when a pull could
    /// newly succeed.
    catalog_epoch: u64,
    /// Pods forced into a crash loop by the managed-system model, with the
    /// reason, keyed `(namespace, pod name)`.
    crashing: CrashMap,
    /// Installed fault plan, if any.
    faults: Option<crate::faults::FaultInjector>,
    /// Event-driven engine state (reconcile cursors, tick accounting).
    engine: StepEngine,
    /// Bumped whenever a crash condition actually changes. Crash-map edits
    /// write no store event, so the quiescence fingerprint needs this.
    crash_epoch: u64,
}

impl SimCluster {
    /// Builds a cluster with the given configuration and registers its
    /// nodes.
    pub fn new(config: ClusterConfig) -> SimCluster {
        let mut cluster = SimCluster {
            api: ApiServer::new(config.bugs),
            time: 0,
            logs: Arc::new(Vec::new()),
            image_catalog: config.image_catalog.into_iter().collect(),
            catalog_epoch: 0,
            crashing: CrashMap::default(),
            faults: None,
            engine: StepEngine::default(),
            crash_epoch: 0,
        };
        if let Some(topology) = config.topology {
            cluster.seed_topology(&topology);
            return cluster;
        }
        for (i, (name, cpu, memory)) in config.nodes.into_iter().enumerate() {
            let mut node = Node::with_capacity(&cpu, &memory);
            // Deterministic topology labels so selector/affinity scenarios
            // have satisfiable and unsatisfiable variants.
            node.labels.insert(
                "zone".to_string(),
                if i % 2 == 0 { "zone-a" } else { "zone-b" }.to_string(),
            );
            if i < 2 {
                node.labels.insert("disk".to_string(), "ssd".to_string());
            }
            cluster
                .api
                .store_mut()
                .create(ObjectMeta::named("", &name), ObjectData::Node(node), 0)
                .expect("node creation");
        }
        cluster
    }

    /// Registers a generated [`NodeTopology`]: uniform nodes spread across
    /// zones, plus optional inert background pods in
    /// [`BACKGROUND_NAMESPACE`].
    fn seed_topology(&mut self, topology: &NodeTopology) {
        let zones = topology.zones.max(1);
        for i in 0..topology.nodes {
            let mut node = Node::with_capacity(&topology.cpu, &topology.memory);
            node.labels
                .insert("zone".to_string(), format!("zone-{}", i % zones));
            if i < 2 {
                node.labels.insert("disk".to_string(), "ssd".to_string());
            }
            self.api
                .store_mut()
                .create(
                    ObjectMeta::named("", &format!("node-{i:05}")),
                    ObjectData::Node(node),
                    0,
                )
                .expect("node creation");
        }
        if topology.background_pods > 0 {
            self.image_catalog.insert(BACKGROUND_IMAGE.to_string());
            for i in 0..topology.background_pods {
                let pod = Pod {
                    containers: vec![Container {
                        name: "bg".to_string(),
                        image: BACKGROUND_IMAGE.to_string(),
                        resources: crate::resources::ResourceRequirements::new()
                            .request("cpu", "50m")
                            .request("memory", "64Mi"),
                        ..Container::default()
                    }],
                    ..Pod::default()
                };
                self.api
                    .store_mut()
                    .create(
                        ObjectMeta::named(BACKGROUND_NAMESPACE, &format!("bg-{i:06}")),
                        ObjectData::Pod(pod),
                        0,
                    )
                    .expect("background pod creation");
            }
        }
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> u64 {
        self.time
    }

    /// Takes an O(1) copy-on-write checkpoint of the whole cluster (store,
    /// clock, logs, catalog, crash conditions, fault state, engine
    /// cursors): the store and log buffer are shared handles, only the
    /// small scalar state is copied eagerly. See [`ClusterCheckpoint`].
    pub fn checkpoint(&self) -> ClusterCheckpoint {
        ClusterCheckpoint {
            api: self.api.snapshot(),
            time: self.time,
            logs: self.logs.clone(),
            image_catalog: self.image_catalog.clone(),
            catalog_epoch: self.catalog_epoch,
            crashing: self.crashing.clone(),
            faults: self.faults.clone(),
            engine: self.engine.clone(),
            crash_epoch: self.crash_epoch,
        }
    }

    /// Rewinds (or fast-forwards) this cluster to a checkpoint. All state —
    /// including the simulated clock — becomes exactly what
    /// [`SimCluster::checkpoint`] captured.
    pub fn restore(&mut self, cp: &ClusterCheckpoint) {
        CHECKPOINT_FORKS.fetch_add(1, Ordering::Relaxed);
        self.api = cp.api.snapshot();
        self.time = cp.time;
        self.logs = cp.logs.clone();
        self.image_catalog = cp.image_catalog.clone();
        self.catalog_epoch = cp.catalog_epoch;
        self.crashing = cp.crashing.clone();
        self.faults = cp.faults.clone();
        self.engine = cp.engine.clone();
        self.crash_epoch = cp.crash_epoch;
    }

    /// Builds a new cluster directly from a checkpoint.
    pub fn from_checkpoint(cp: &ClusterCheckpoint) -> SimCluster {
        CHECKPOINT_FORKS.fetch_add(1, Ordering::Relaxed);
        SimCluster {
            api: cp.api.snapshot(),
            time: cp.time,
            logs: cp.logs.clone(),
            image_catalog: cp.image_catalog.clone(),
            catalog_epoch: cp.catalog_epoch,
            crashing: cp.crashing.clone(),
            faults: cp.faults.clone(),
            engine: cp.engine.clone(),
            crash_epoch: cp.crash_epoch,
        }
    }

    /// The API server.
    pub fn api(&self) -> &ApiServer {
        &self.api
    }

    /// Mutable API server access.
    pub fn api_mut(&mut self) -> &mut ApiServer {
        &mut self.api
    }

    /// Registers an image as pullable.
    pub fn add_image(&mut self, image: &str) {
        if self.image_catalog.insert(image.to_string()) {
            self.catalog_epoch += 1;
        }
    }

    /// Returns `true` when the image can be pulled. Images with an explicit
    /// catalog entry always can; otherwise any syntactically valid
    /// `repo:tag` reference whose repository is known succeeds.
    pub fn image_exists(&self, image: &str) -> bool {
        if self.image_catalog.contains(image) {
            return true;
        }
        // A reference without a tag or with an unknown repository fails.
        match image.split_once(':') {
            Some((repo, tag)) if !tag.is_empty() => self
                .image_catalog
                .iter()
                .any(|known| known.split_once(':').map(|(r, _)| r) == Some(repo) && known == image),
            _ => false,
        }
    }

    /// Appends a log entry.
    pub fn log(&mut self, level: LogLevel, source: &str, message: impl Into<String>) {
        let time = self.time;
        Arc::make_mut(&mut self.logs).push(LogEntry {
            time,
            level,
            source: source.to_string(),
            message: message.into(),
        });
    }

    /// All log entries.
    pub fn logs(&self) -> &[LogEntry] {
        &self.logs
    }

    /// Log entries at `Error` severity or above after a given time.
    pub fn error_logs_since(&self, time: u64) -> Vec<&LogEntry> {
        self.logs
            .iter()
            .filter(|e| e.time >= time && matches!(e.level, LogLevel::Error | LogLevel::Panic))
            .collect()
    }

    /// Marks a pod as crash-looping for a managed-system reason (e.g. "the
    /// binlog pump cluster is missing"). Cleared with
    /// [`SimCluster::clear_crash`]. Conditions are namespace-qualified so
    /// same-named pods under different operators never share crash state.
    pub fn set_crashing(&mut self, namespace: &str, pod_name: &str, reason: &str) {
        let prev = self.crashing.insert(namespace, pod_name, reason);
        if prev.as_deref() != Some(reason) {
            self.crash_epoch += 1;
            self.engine
                .forced_dirty
                .insert(ObjKey::new(Kind::Pod, namespace, pod_name));
        }
    }

    /// Clears a crash-loop condition.
    pub fn clear_crash(&mut self, namespace: &str, pod_name: &str) {
        if self.crashing.remove(namespace, pod_name).is_some() {
            self.crash_epoch += 1;
            self.engine
                .forced_dirty
                .insert(ObjKey::new(Kind::Pod, namespace, pod_name));
        }
    }

    /// Returns crash conditions currently in force, keyed
    /// `(namespace, pod name)`.
    pub fn crashing(&self) -> impl Iterator<Item = (&(String, String), &String)> {
        self.crashing.iter()
    }

    /// Advances the world by one simulated second.
    pub fn step(&mut self) {
        let ticked = ticked_engine();
        self.time += 1;
        let time = self.time;
        // Installed faults fire before anything else reacts: the rest of
        // the tick then observes (and may start repairing) the damage.
        if let Some(injector) = &mut self.faults {
            let conflicts = injector.apply_due(&mut self.api, time);
            if conflicts > 0 {
                self.api.inject_conflicts(conflicts);
            }
        }
        let bugs = self.api.bugs();
        if !self.watch_blackout_active() {
            if ticked {
                crate::controllers::run_all(self.api.store_mut(), time, bugs);
            } else {
                crate::controllers::run_all_dirty(
                    self.api.store_mut(),
                    time,
                    bugs,
                    &mut self.engine.cursors,
                );
            }
        }
        let schedule_due = ticked
            || self
                .api
                .store()
                .kinds_dirty_since(&[Kind::Pod, Kind::Node], self.engine.cursors.scheduler);
        if schedule_due {
            if ticked {
                scheduler::schedule(self.api.store_mut(), time);
            } else {
                self.engine.cursors.scheduler = self.api.store().revision();
                scheduler::schedule_indexed(self.api.store_mut(), time, &mut self.engine.sched);
            }
        }
        self.advance_pods();
        self.engine.ticks_executed += 1;
        TICKS_EXECUTED.fetch_add(1, Ordering::Relaxed);
        if !ticked {
            // Absorb this tick's own writes into the timer index while the
            // events are still in the log, then compact; `next_wakeup` only
            // trusts a fully-synced index.
            self.engine.timers.sync(self.api.store());
            let floor = self.api.store().revision().saturating_sub(EVENT_LOG_KEEP);
            if floor > self.api.store().events_floor() {
                self.api.store_mut().compact_events(floor);
            }
        }
    }

    /// Fingerprint of everything a tick can observably change. See
    /// [`ClusterFingerprint`].
    pub fn quiescence_fingerprint(&self) -> ClusterFingerprint {
        ClusterFingerprint {
            revision: self.api.store().revision(),
            logs: self.logs.len(),
            crash_epoch: self.crash_epoch,
            pending_conflicts: self.api.pending_conflicts(),
            faults: self.faults.as_ref().map(|f| f.fingerprint()),
            crash_points: (self.api.operator_writes(), self.api.armed_operator_crash()),
        }
    }

    /// Earliest future time at which a purely time-based transition can
    /// fire: a scheduled pod finishing its start delay, a running pod
    /// passing readiness, or fault-injector timers (next firing, node
    /// return, blackout expiry). `None` when no timer is pending — any
    /// further change must come from a store event. Conservative early
    /// wakeups are safe: the woken tick is simply another no-op.
    pub fn next_wakeup(&self) -> Option<u64> {
        let now = self.time;
        let mut wake: Option<u64> = None;
        let mut consider = |t: u64| {
            if t > now {
                wake = Some(wake.map_or(t, |w: u64| w.min(t)));
            }
        };
        if let Some(f) = &self.faults {
            if let Some(t) = f.next_wakeup(now) {
                consider(t);
            }
        }
        if !ticked_engine() && self.engine.timers.synced == self.api.store().revision() {
            // The timer index is current: the earliest future deadline is
            // one ordered lookup instead of an all-pods scan.
            if let Some(t) = self.engine.timers.next_after(now) {
                consider(t);
            }
        } else {
            for obj in self.api.store().list_all(&Kind::Pod) {
                if let ObjectData::Pod(p) = &obj.data {
                    if let Some(d) = PodTimers::deadline_for(p) {
                        consider(d);
                    }
                }
            }
        }
        wake
    }

    /// Jumps the clock to `target` without executing the intervening ticks.
    /// Only sound when every skipped tick is provably a no-op (unchanged
    /// fingerprint and no timer wakeup before `target`).
    pub fn fast_forward_to(&mut self, target: u64) {
        if target > self.time {
            let skipped = target - self.time;
            self.engine.ticks_skipped += skipped;
            TICKS_SKIPPED.fetch_add(skipped, Ordering::Relaxed);
            self.time = target;
        }
    }

    /// `(ticks_executed, ticks_skipped)` for this cluster since creation.
    pub fn engine_stats(&self) -> (u64, u64) {
        (self.engine.ticks_executed, self.engine.ticks_skipped)
    }

    /// Installs a fault plan; its offsets are relative to the current
    /// simulated time. Replaces any previously installed plan.
    pub fn install_fault_plan(&mut self, plan: crate::faults::FaultPlan) {
        self.faults = Some(crate::faults::FaultInjector::new(plan, self.time));
    }

    /// Returns `true` while an injected watch blackout suppresses the
    /// built-in controllers and operator watches.
    pub fn watch_blackout_active(&self) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|f| f.blackout_active(self.time))
    }

    /// Consumes one injected transient reconcile error, if armed.
    pub fn take_injected_reconcile_error(&mut self) -> bool {
        self.faults
            .as_mut()
            .is_some_and(|f| f.take_reconcile_error())
    }

    /// Returns `true` once every installed fault has fired and lapsed
    /// (vacuously true with no plan installed).
    pub fn faults_exhausted(&self) -> bool {
        self.faults.as_ref().is_none_or(|f| f.exhausted(self.time))
    }

    /// Transcript lines for every fault applied so far.
    pub fn fault_events(&self) -> Vec<String> {
        self.faults
            .as_ref()
            .map(|f| f.events().iter().map(|e| e.render()).collect())
            .unwrap_or_default()
    }

    /// Decides the lifecycle transition (if any) for one pod. Reads only
    /// the pod itself plus claims/images/crash conditions, never other
    /// pods.
    fn decide_pod(&self, obj: &StoredObject, time: u64) -> Option<PodAction> {
        let ObjectData::Pod(pod) = &obj.data else {
            return None;
        };
        let name = &obj.meta.name;
        // Crash condition set by the managed-system model wins.
        if let Some(reason) = self.crashing.get(&obj.meta.namespace, name) {
            let already = pod.phase == PodPhase::Failed && pod.reason == "CrashLoopBackOff";
            // The message is only logged on the first transition; skip the
            // allocation on the (hot) steady-state revisits.
            return Some(PodAction::CrashLoop {
                already,
                msg: (!already).then(|| format!("pod {name} crash-looping: {reason}")),
            });
        }
        let action = match pod.phase {
            PodPhase::Pending => {
                pod.node_name.as_ref()?;
                // Security context must be valid.
                let mut sec_errors = pod.security.validate();
                for c in &pod.containers {
                    sec_errors.extend(c.security.validate());
                }
                if !sec_errors.is_empty() {
                    PodAction::SetReason("CreateContainerConfigError")
                } else if pod.claims.iter().any(|cname| {
                    // All claims must be bound.
                    match self.api.store().get(&ObjKey::new(
                        Kind::PersistentVolumeClaim,
                        &obj.meta.namespace,
                        cname,
                    )) {
                        Some(c) => !matches!(
                            &c.data,
                            ObjectData::PersistentVolumeClaim(c)
                                if c.phase == crate::objects::ClaimPhase::Bound
                        ),
                        None => true,
                    }
                }) {
                    PodAction::SetReason("WaitingForVolume")
                } else {
                    // Images must exist.
                    let missing: Vec<&str> = pod
                        .containers
                        .iter()
                        .filter(|c| !self.image_exists(&c.image))
                        .map(|c| c.image.as_str())
                        .collect();
                    if !missing.is_empty() {
                        PodAction::ImagePull {
                            log: (pod.reason != "ImagePullBackOff").then(|| {
                                format!("pod {name}: failed to pull {}", missing.join(", "))
                            }),
                        }
                    } else if time.saturating_sub(pod.phase_since) >= POD_START_DELAY {
                        // Start after the pull/start delay.
                        PodAction::Start
                    } else {
                        return None;
                    }
                }
            }
            PodPhase::Running => {
                if !pod.ready && time.saturating_sub(pod.phase_since) >= POD_READY_DELAY {
                    PodAction::MarkReady
                } else {
                    return None;
                }
            }
            // Crash condition cleared: restart the container.
            PodPhase::Failed => PodAction::Restart,
            PodPhase::Succeeded => return None,
        };
        Some(action)
    }

    /// Assembles the set of pods the event engine must revisit this tick:
    /// pods with store events past the last pass, pods whose start/ready
    /// deadline is due, pods whose crash condition toggled, claim-blocked
    /// pods after any PVC event, and ImagePullBackOff pods after a catalog
    /// change. Every pod outside this set would decide `None` and (per
    /// `update_with`'s no-op suppression) leave no trace even if visited,
    /// so skipping it is unobservable. Falls back to all pods when the
    /// event log was compacted past the cursor (engine switch).
    fn dirty_pods(&mut self, time: u64) -> BTreeMap<ObjKey, DirtySource> {
        self.engine.timers.sync(self.api.store());
        let store = self.api.store();
        let mut dirty: BTreeMap<ObjKey, DirtySource> = BTreeMap::new();
        if store.events_floor() > self.engine.pod_cursor {
            for (key, obj) in store.iter() {
                if matches!(obj.data, ObjectData::Pod(_)) {
                    dirty.insert(key.clone(), DirtySource::Probe);
                }
            }
            self.engine.forced_dirty.clear();
        } else {
            let mut pvc_dirty = false;
            // Forward order: later events overwrite, so each dirty pod ends
            // up holding its *last* event's payload — exactly its current
            // object — and the decide pass needs no store descent for it.
            for event in store.events_since(self.engine.pod_cursor) {
                match event.key.kind {
                    Kind::Pod => {
                        dirty.insert(event.key.clone(), DirtySource::Event(event.obj.clone()));
                    }
                    Kind::PersistentVolumeClaim => pvc_dirty = true,
                    _ => {}
                }
            }
            // Keys dirty for non-event reasons fall back to a store probe —
            // unless an event already supplied the current object.
            if pvc_dirty {
                for (key, _) in self.engine.vol_waiters.iter() {
                    dirty.entry(key.clone()).or_insert(DirtySource::Probe);
                }
            }
            if self.engine.image_epoch_seen != self.catalog_epoch {
                for (key, _) in self.engine.image_waiters.iter() {
                    dirty.entry(key.clone()).or_insert(DirtySource::Probe);
                }
            }
            for key in self.engine.timers.due_keys(time) {
                dirty.entry(key.clone()).or_insert(DirtySource::Probe);
            }
            for key in std::mem::take(&mut self.engine.forced_dirty) {
                dirty.entry(key).or_insert(DirtySource::Probe);
            }
        }
        self.engine.pod_cursor = store.revision();
        self.engine.image_epoch_seen = self.catalog_epoch;
        dirty
    }

    /// Inserts or removes `key` without disturbing structural sharing when
    /// membership is already correct.
    fn set_membership(map: &mut PMap<ObjKey, ()>, key: &ObjKey, member: bool) {
        if member {
            if !map.contains_key(key) {
                map.insert(key.clone(), ());
            }
        } else if map.contains_key(key) {
            map.remove(key);
        }
    }

    /// Advances pod lifecycle: image pulls, container start, readiness,
    /// crash loops.
    ///
    /// Runs in two passes — a read-only pass deciding each pod's
    /// transition, then a mutation pass applying them — so no pod is ever
    /// cloned. Decisions depend only on the decided pod itself plus
    /// claims/images/crash conditions, never on other pods, so batching the
    /// reads is equivalent to the old interleaved read-mutate loop. The
    /// ticked loop visits every pod; the event engine only visits the
    /// dirty set ([`SimCluster::dirty_pods`]) — both walk pods in key
    /// order, so decisions, writes, and logs land identically.
    fn advance_pods(&mut self) {
        let time = self.time;
        let mut visited: Vec<ObjKey> = Vec::new();
        let decisions: Vec<(ObjKey, PodAction)> = if ticked_engine() {
            self.api
                .store()
                .list_all(&Kind::Pod)
                .iter()
                .filter_map(|obj| {
                    let key = ObjKey::new(Kind::Pod, &obj.meta.namespace, &obj.meta.name);
                    self.decide_pod(obj, time).map(|action| (key, action))
                })
                .collect()
        } else {
            let dirty = self.dirty_pods(time);
            let decided = dirty
                .iter()
                .filter_map(|(key, source)| {
                    let obj = match source {
                        DirtySource::Event(Some(obj)) => &**obj,
                        DirtySource::Event(None) => return None,
                        DirtySource::Probe => self.api.store().get(key)?,
                    };
                    self.decide_pod(obj, time)
                        .map(|action| (key.clone(), action))
                })
                .collect();
            visited = dirty.into_keys().collect();
            decided
        };
        if !ticked_engine() {
            // Refresh waiter membership for every visited pod: `visited`
            // and `decisions` are both in key order, so one merge walk
            // pairs each pod with its decision (if any).
            let mut di = 0;
            for key in &visited {
                let action = if di < decisions.len() && &decisions[di].0 == key {
                    di += 1;
                    Some(&decisions[di - 1].1)
                } else {
                    None
                };
                let vol =
                    matches!(action, Some(PodAction::SetReason(r)) if *r == "WaitingForVolume");
                let img = matches!(action, Some(PodAction::ImagePull { .. }));
                Self::set_membership(&mut self.engine.vol_waiters, key, vol);
                Self::set_membership(&mut self.engine.image_waiters, key, img);
            }
        }
        for (key, action) in decisions {
            match action {
                PodAction::CrashLoop { already, msg } => {
                    let _ = self.api.store_mut().update_with(&key, time, |o| {
                        if let ObjectData::Pod(p) = &mut o.data {
                            p.phase = PodPhase::Failed;
                            p.reason = "CrashLoopBackOff".to_string();
                            p.ready = false;
                            if !already {
                                p.restarts += 1;
                                p.phase_since = time;
                            }
                        }
                    });
                    if let Some(msg) = msg {
                        self.log(LogLevel::Error, "kubelet", msg);
                    }
                }
                PodAction::SetReason(reason) => {
                    let _ = self.api.store_mut().update_with(&key, time, |o| {
                        if let ObjectData::Pod(p) = &mut o.data {
                            p.reason = reason.to_string();
                        }
                    });
                }
                PodAction::ImagePull { log } => {
                    let _ = self.api.store_mut().update_with(&key, time, |o| {
                        if let ObjectData::Pod(p) = &mut o.data {
                            p.reason = "ImagePullBackOff".to_string();
                        }
                    });
                    if let Some(msg) = log {
                        self.log(LogLevel::Error, "kubelet", msg);
                    }
                }
                PodAction::Start => {
                    let _ = self.api.store_mut().update_with(&key, time, |o| {
                        if let ObjectData::Pod(p) = &mut o.data {
                            p.phase = PodPhase::Running;
                            p.reason = String::new();
                            p.phase_since = time;
                        }
                    });
                }
                PodAction::MarkReady => {
                    let _ = self.api.store_mut().update_with(&key, time, |o| {
                        if let ObjectData::Pod(p) = &mut o.data {
                            p.ready = true;
                        }
                    });
                }
                PodAction::Restart => {
                    let _ = self.api.store_mut().update_with(&key, time, |o| {
                        if let ObjectData::Pod(p) = &mut o.data {
                            p.phase = PodPhase::Pending;
                            p.reason = String::new();
                            p.phase_since = time;
                        }
                    });
                }
            }
        }
    }

    /// Runs until no watch event has occurred for `reset_timeout` simulated
    /// seconds (the paper's reset-timer convergence), or `max_seconds`
    /// elapse.
    ///
    /// Returns `true` on convergence, `false` on timeout. In event-driven
    /// mode, once a tick changes nothing observable the clock jumps to the
    /// earlier of the next timer wakeup and the reset-timer expiry; since
    /// every skipped tick is a provable no-op, the convergence (or timeout)
    /// timestamp is identical to the ticked loop's.
    pub fn run_until_converged(&mut self, reset_timeout: u64, max_seconds: u64) -> bool {
        let deadline = self.time + max_seconds;
        let mut last_event_time = self.time;
        let mut last_revision = self.api.store().revision();
        let ticked = ticked_engine();
        let mut fingerprint = self.quiescence_fingerprint();
        while self.time < deadline {
            self.step();
            let revision = self.api.store().revision();
            if revision != last_revision {
                last_revision = revision;
                last_event_time = self.time;
            } else if self.time - last_event_time >= reset_timeout {
                return true;
            }
            if !ticked {
                let after = self.quiescence_fingerprint();
                if after == fingerprint {
                    // A fully-no-op tick: every tick until the next timer
                    // wakeup is identical, so land the next step() exactly
                    // on the first tick that can matter.
                    let mut target = (last_event_time + reset_timeout).min(deadline);
                    if let Some(wake) = self.next_wakeup() {
                        target = target.min(wake);
                    }
                    if target > self.time + 1 {
                        self.fast_forward_to(target - 1);
                    }
                } else {
                    fingerprint = after;
                }
            }
        }
        false
    }

    /// Convenience: lists pods of a namespace as `(name, phase, ready,
    /// reason)` tuples, sorted by name.
    pub fn pod_summaries(&self, namespace: &str) -> Vec<(String, PodPhase, bool, String)> {
        self.api
            .store()
            .list(&Kind::Pod, namespace)
            .iter()
            .filter_map(|o| match &o.data {
                ObjectData::Pod(p) => {
                    Some((o.meta.name.clone(), p.phase, p.ready, p.reason.clone()))
                }
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::LabelSelector;
    use crate::objects::{Container, PodTemplate, StatefulSet};

    fn test_config() -> ClusterConfig {
        ClusterConfig {
            image_catalog: vec!["zk:3.8".to_string(), "zk:3.9".to_string()],
            bugs: PlatformBugs::none(),
            ..ClusterConfig::default()
        }
    }

    fn make_sts(replicas: i32, image: &str) -> StatefulSet {
        StatefulSet {
            replicas,
            selector: LabelSelector::match_labels([("app", "zk")]),
            template: PodTemplate {
                labels: [("app".to_string(), "zk".to_string())]
                    .into_iter()
                    .collect(),
                containers: vec![Container {
                    name: "zk".to_string(),
                    image: image.to_string(),
                    ..Container::default()
                }],
                ..PodTemplate::default()
            },
            service_name: "zk".to_string(),
            ..StatefulSet::default()
        }
    }

    #[test]
    fn statefulset_converges_to_running_pods() {
        let mut cluster = SimCluster::new(test_config());
        cluster
            .api_mut()
            .apply_object(
                ObjectMeta::named("ns", "zk"),
                ObjectData::StatefulSet(make_sts(3, "zk:3.8")),
                0,
            )
            .unwrap();
        assert!(cluster.run_until_converged(10, 600));
        let pods = cluster.pod_summaries("ns");
        assert_eq!(pods.len(), 3);
        assert!(pods
            .iter()
            .all(|(_, phase, ready, _)| *phase == PodPhase::Running && *ready));
    }

    #[test]
    fn bad_image_never_converges_to_running() {
        let mut cluster = SimCluster::new(test_config());
        cluster
            .api_mut()
            .apply_object(
                ObjectMeta::named("ns", "zk"),
                ObjectData::StatefulSet(make_sts(1, "zk:missing")),
                0,
            )
            .unwrap();
        assert!(cluster.run_until_converged(10, 300));
        let pods = cluster.pod_summaries("ns");
        assert_eq!(pods.len(), 1);
        assert_eq!(pods[0].3, "ImagePullBackOff");
        assert!(!cluster.error_logs_since(0).is_empty());
    }

    #[test]
    fn crash_loop_and_recovery() {
        let mut cluster = SimCluster::new(test_config());
        cluster
            .api_mut()
            .apply_object(
                ObjectMeta::named("ns", "zk"),
                ObjectData::StatefulSet(make_sts(1, "zk:3.8")),
                0,
            )
            .unwrap();
        assert!(cluster.run_until_converged(10, 300));
        cluster.set_crashing("ns", "zk-0", "missing pump cluster");
        assert!(cluster.run_until_converged(10, 300));
        let pods = cluster.pod_summaries("ns");
        assert_eq!(pods[0].1, PodPhase::Failed);
        assert_eq!(pods[0].3, "CrashLoopBackOff");
        // Clearing the condition lets the pod restart and recover.
        cluster.clear_crash("ns", "zk-0");
        assert!(cluster.run_until_converged(10, 300));
        let pods = cluster.pod_summaries("ns");
        assert_eq!(pods[0].1, PodPhase::Running);
        assert!(pods[0].2);
    }

    #[test]
    fn invalid_security_context_blocks_start() {
        let mut cluster = SimCluster::new(test_config());
        let mut sts = make_sts(1, "zk:3.8");
        sts.template.security.run_as_user = Some(0);
        sts.template.security.run_as_non_root = true;
        cluster
            .api_mut()
            .apply_object(
                ObjectMeta::named("ns", "zk"),
                ObjectData::StatefulSet(sts),
                0,
            )
            .unwrap();
        assert!(cluster.run_until_converged(10, 300));
        let pods = cluster.pod_summaries("ns");
        assert_eq!(pods[0].1, PodPhase::Pending);
        assert_eq!(pods[0].3, "CreateContainerConfigError");
    }

    #[test]
    fn convergence_times_out_on_endless_churn() {
        let mut cluster = SimCluster::new(test_config());
        cluster
            .api_mut()
            .apply_object(
                ObjectMeta::named("ns", "zk"),
                ObjectData::StatefulSet(make_sts(1, "zk:3.8")),
                0,
            )
            .unwrap();
        assert!(cluster.run_until_converged(10, 300));
        // A permanently crashing pod flaps between Failed and Pending,
        // producing endless events.
        cluster.set_crashing("ns", "zk-0", "flap");
        // It still "converges" in the sense that the crash state is sticky;
        // verify the reset timer actually waits for quiet.
        let t0 = cluster.now();
        cluster.run_until_converged(10, 50);
        assert!(cluster.now() > t0);
    }

    #[test]
    fn image_catalog_lookup() {
        let mut cluster = SimCluster::new(test_config());
        assert!(cluster.image_exists("zk:3.8"));
        assert!(!cluster.image_exists("zk:4.0"));
        assert!(!cluster.image_exists("zk"));
        assert!(!cluster.image_exists("zk:"));
        cluster.add_image("redis:7");
        assert!(cluster.image_exists("redis:7"));
    }
    #[test]
    fn default_nodes_carry_topology_labels() {
        let cluster = SimCluster::new(test_config());
        let nodes = cluster.api().store().list_all(&crate::objects::Kind::Node);
        assert_eq!(nodes.len(), 4);
        let mut zones = std::collections::BTreeSet::new();
        let mut ssd = 0;
        for n in nodes {
            if let ObjectData::Node(node) = &n.data {
                zones.insert(node.labels.get("zone").cloned().unwrap_or_default());
                if node.labels.get("disk").map(String::as_str) == Some("ssd") {
                    ssd += 1;
                }
            }
        }
        assert_eq!(zones.len(), 2, "two availability zones");
        assert_eq!(ssd, 2, "two ssd nodes");
    }

    #[test]
    fn checkpoint_restore_replays_bit_for_bit() {
        let mut cluster = SimCluster::new(test_config());
        cluster
            .api_mut()
            .apply_object(
                ObjectMeta::named("ns", "zk"),
                ObjectData::StatefulSet(make_sts(2, "zk:3.8")),
                0,
            )
            .unwrap();
        assert!(cluster.run_until_converged(10, 600));
        let cp = cluster.checkpoint();
        assert_eq!(cp.time(), cluster.now());

        // Two futures from the same checkpoint must be identical.
        let mut a = SimCluster::from_checkpoint(&cp);
        let mut b = SimCluster::from_checkpoint(&cp);
        assert_eq!(a.now(), cluster.now());
        for c in [&mut a, &mut b] {
            let t = c.now();
            c.api_mut()
                .apply_object(
                    ObjectMeta::named("ns", "zk"),
                    ObjectData::StatefulSet(make_sts(4, "zk:3.8")),
                    t,
                )
                .unwrap();
            assert!(c.run_until_converged(10, 600));
        }
        assert_eq!(a.now(), b.now());
        assert_eq!(a.pod_summaries("ns"), b.pod_summaries("ns"));
        assert_eq!(a.api().store().revision(), b.api().store().revision());
        assert_eq!(a.logs(), b.logs());

        // Restoring rolls the original back: the scale-up never happened.
        let t = cluster.now();
        cluster
            .api_mut()
            .apply_object(
                ObjectMeta::named("ns", "zk"),
                ObjectData::StatefulSet(make_sts(4, "zk:3.8")),
                t,
            )
            .unwrap();
        cluster.run_until_converged(10, 600);
        assert_eq!(cluster.pod_summaries("ns").len(), 4);
        cluster.restore(&cp);
        assert_eq!(cluster.pod_summaries("ns").len(), 2);
        assert_eq!(cluster.now(), cp.time());
    }

    #[test]
    fn checkpoint_captures_crash_conditions_and_faults() {
        let mut cluster = SimCluster::new(test_config());
        cluster
            .api_mut()
            .apply_object(
                ObjectMeta::named("ns", "zk"),
                ObjectData::StatefulSet(make_sts(1, "zk:3.8")),
                0,
            )
            .unwrap();
        assert!(cluster.run_until_converged(10, 300));
        cluster.set_crashing("ns", "zk-0", "wedged");
        let mut plan = crate::faults::FaultPlan::new();
        plan.push(5, crate::faults::Fault::WatchBlackout { duration: 30 });
        cluster.install_fault_plan(plan);
        let cp = cluster.checkpoint();
        let mut copy = SimCluster::from_checkpoint(&cp);
        assert_eq!(
            copy.crashing().collect::<Vec<_>>(),
            cluster.crashing().collect::<Vec<_>>()
        );
        // The restored fault plan fires on schedule.
        for _ in 0..6 {
            copy.step();
        }
        assert!(copy.watch_blackout_active());
        assert!(!copy.faults_exhausted());
    }

    /// Runs the same scenario under both engines and asserts identical
    /// observable state, clock included.
    fn assert_engines_agree(scenario: impl Fn(&mut SimCluster)) {
        let run = |ticked: bool| {
            let was = ticked_engine();
            set_ticked_engine(ticked);
            let mut cluster = SimCluster::new(test_config());
            scenario(&mut cluster);
            set_ticked_engine(was);
            cluster
        };
        let ticked = run(true);
        let event = run(false);
        assert_eq!(ticked.now(), event.now(), "clocks diverged");
        assert_eq!(
            ticked.api().store().revision(),
            event.api().store().revision(),
            "revisions diverged"
        );
        assert_eq!(ticked.logs(), event.logs(), "logs diverged");
        assert_eq!(ticked.pod_summaries("ns"), event.pod_summaries("ns"));
        assert_eq!(ticked.fault_events(), event.fault_events());
    }

    #[test]
    fn event_engine_matches_ticked_loop_on_rollout_and_crash() {
        assert_engines_agree(|cluster| {
            cluster
                .api_mut()
                .apply_object(
                    ObjectMeta::named("ns", "zk"),
                    ObjectData::StatefulSet(make_sts(3, "zk:3.8")),
                    0,
                )
                .unwrap();
            assert!(cluster.run_until_converged(10, 600));
            cluster.set_crashing("ns", "zk-0", "wedged");
            assert!(cluster.run_until_converged(10, 300));
            cluster.clear_crash("ns", "zk-0");
            assert!(cluster.run_until_converged(10, 300));
            let t = cluster.now();
            cluster
                .api_mut()
                .apply_object(
                    ObjectMeta::named("ns", "zk"),
                    ObjectData::StatefulSet(make_sts(1, "zk:3.9")),
                    t,
                )
                .unwrap();
            assert!(cluster.run_until_converged(10, 600));
        });
    }

    #[test]
    fn event_engine_matches_ticked_loop_under_faults() {
        assert_engines_agree(|cluster| {
            cluster
                .api_mut()
                .apply_object(
                    ObjectMeta::named("ns", "zk"),
                    ObjectData::StatefulSet(make_sts(2, "zk:3.8")),
                    0,
                )
                .unwrap();
            assert!(cluster.run_until_converged(10, 600));
            let mut plan = crate::faults::FaultPlan::new();
            plan.push(
                3,
                crate::faults::Fault::PodKill {
                    namespace: "ns".to_string(),
                    pod: "zk-1".to_string(),
                },
            );
            plan.push(
                9,
                crate::faults::Fault::NodeCrash {
                    node: "node-0".to_string(),
                    down_for: 25,
                },
            );
            plan.push(17, crate::faults::Fault::WatchBlackout { duration: 12 });
            cluster.install_fault_plan(plan);
            cluster.run_until_converged(15, 300);
        });
    }

    #[test]
    fn event_engine_matches_ticked_loop_on_timeouts() {
        assert_engines_agree(|cluster| {
            cluster
                .api_mut()
                .apply_object(
                    ObjectMeta::named("ns", "zk"),
                    ObjectData::StatefulSet(make_sts(1, "zk:missing")),
                    0,
                )
                .unwrap();
            // Converges (stuck but quiet), then a short window that times out.
            assert!(cluster.run_until_converged(10, 300));
            assert!(!cluster.run_until_converged(10, 7));
        });
    }

    #[test]
    fn fast_forward_skips_most_idle_ticks() {
        let mut cluster = SimCluster::new(test_config());
        cluster
            .api_mut()
            .apply_object(
                ObjectMeta::named("ns", "zk"),
                ObjectData::StatefulSet(make_sts(3, "zk:3.8")),
                0,
            )
            .unwrap();
        assert!(cluster.run_until_converged(15, 600));
        let (executed, skipped) = cluster.engine_stats();
        assert_eq!(executed + skipped, cluster.now(), "accounting covers clock");
        // At minimum the 15-second reset tail collapses into one executed
        // tick plus one fast-forward (pod start/ready gaps skip more).
        assert!(
            skipped >= 14,
            "skipped only {skipped} of {} simulated seconds",
            cluster.now()
        );
    }

    #[test]
    fn checkpoint_carries_engine_state() {
        let mut cluster = SimCluster::new(test_config());
        cluster
            .api_mut()
            .apply_object(
                ObjectMeta::named("ns", "zk"),
                ObjectData::StatefulSet(make_sts(2, "zk:3.8")),
                0,
            )
            .unwrap();
        assert!(cluster.run_until_converged(10, 600));
        let cp = cluster.checkpoint();
        let copy = SimCluster::from_checkpoint(&cp);
        assert_eq!(copy.engine_stats(), cluster.engine_stats());
        assert_eq!(copy.engine.cursors, cluster.engine.cursors);
        assert_eq!(copy.crash_epoch, cluster.crash_epoch);
    }

    #[test]
    fn compaction_bounds_event_log_without_changing_replay() {
        let mut cluster = SimCluster::new(test_config());
        // Scale repeatedly so the store accumulates far more than
        // EVENT_LOG_KEEP events.
        for round in 0..20 {
            for replicas in [4, 1] {
                let t = cluster.now();
                cluster
                    .api_mut()
                    .apply_object(
                        ObjectMeta::named("ns", "zk"),
                        ObjectData::StatefulSet(make_sts(replicas, "zk:3.8")),
                        t,
                    )
                    .unwrap();
                assert!(cluster.run_until_converged(10, 600), "round {round}");
            }
        }
        let store = cluster.api().store();
        assert!(store.revision() > EVENT_LOG_KEEP, "scenario too small");
        assert!(store.events_floor() > 0, "nothing was compacted");
        assert!(store.events_len() as u64 <= EVENT_LOG_KEEP + 1);
        // A checkpoint taken from the compacted cluster still replays
        // bit-for-bit against an uncompacted (ticked) twin.
        assert_engines_agree(|c| {
            for replicas in [3, 1, 4, 1, 4, 1, 4, 1, 4, 3] {
                let t = c.now();
                c.api_mut()
                    .apply_object(
                        ObjectMeta::named("ns", "zk"),
                        ObjectData::StatefulSet(make_sts(replicas, "zk:3.8")),
                        t,
                    )
                    .unwrap();
                assert!(c.run_until_converged(10, 600));
            }
            let cp = c.checkpoint();
            let restored = SimCluster::from_checkpoint(&cp);
            assert_eq!(restored.pod_summaries("ns"), c.pod_summaries("ns"));
        });
    }

    #[test]
    fn unbindable_claims_keep_pods_waiting_for_volume() {
        let mut cluster = SimCluster::new(test_config());
        let mut sts = make_sts(1, "zk:3.8");
        sts.claim_templates.push(crate::objects::ClaimTemplate {
            name: "data".to_string(),
            size: "1Gi".parse().expect("quantity"),
            storage_class: "no-such-class".to_string(),
        });
        cluster
            .api_mut()
            .apply_object(
                ObjectMeta::named("ns", "zk"),
                ObjectData::StatefulSet(sts),
                0,
            )
            .unwrap();
        cluster.run_until_converged(10, 300);
        let pods = cluster.pod_summaries("ns");
        assert_eq!(pods.len(), 1);
        assert_eq!(pods[0].3, "WaitingForVolume");
    }
}
