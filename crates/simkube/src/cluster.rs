//! The simulated cluster: API server, scheduler, controllers, pod lifecycle,
//! simulated clock, logs, and convergence detection.
//!
//! [`SimCluster::step`] advances the world one simulated second: built-in
//! controllers reconcile, the scheduler binds pods, and pod lifecycle
//! progresses (image pulls, container starts, crash loops). Acto's
//! convergence detection ([`SimCluster::run_until_converged`]) implements
//! the paper's reset timer (§5.5): the timer restarts on every observed
//! state event and convergence is declared when it expires.

use std::collections::BTreeSet;

use crate::api::ApiServer;
use crate::meta::ObjectMeta;
use crate::objects::{Kind, Node, ObjectData, PodPhase};
use crate::platform::PlatformBugs;
use crate::scheduler;
use crate::store::ObjKey;

/// Seconds a scheduled pod takes to pull its image and start containers.
pub const POD_START_DELAY: u64 = 3;

/// Seconds a running pod takes to pass readiness.
pub const POD_READY_DELAY: u64 = 2;

/// Log severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogLevel {
    /// Informational message.
    Info,
    /// Warning.
    Warn,
    /// Error (scanned by Acto's error-log oracle).
    Error,
    /// Unrecoverable operator crash (panic).
    Panic,
}

/// One log entry from the operator or the platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Simulated time of the entry.
    pub time: u64,
    /// Severity.
    pub level: LogLevel,
    /// Component that produced it (e.g. the operator name).
    pub source: String,
    /// Message text.
    pub message: String,
}

/// Static configuration of a simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Nodes to create: `(name, cpu, memory)`.
    pub nodes: Vec<(String, String, String)>,
    /// Container images that can be pulled.
    pub image_catalog: Vec<String>,
    /// Platform-bug configuration.
    pub bugs: PlatformBugs,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: (0..4)
                .map(|i| (format!("node-{i}"), "16".to_string(), "64Gi".to_string()))
                .collect(),
            image_catalog: Vec::new(),
            bugs: PlatformBugs::all(),
        }
    }
}

/// A deep, resumable snapshot of a [`SimCluster`] at an instant.
///
/// Built on [`crate::store::ObjectStore::snapshot`] (via
/// [`crate::api::ApiServer::snapshot`]), plus the simulated clock, the log
/// buffer, the image catalog, crash-loop conditions, and any mid-flight
/// fault-injector state. The scheduler and the built-in controllers are
/// stateless functions over the store, so nothing else needs capturing:
/// restoring a checkpoint and stepping forward replays bit-for-bit what the
/// original cluster would have done.
///
/// Checkpoints power Acto's test partitioning (paper §5.5): a parallel
/// worker starting plan segment `k` restores the converged prefix state
/// instead of redeploying and re-converging from scratch.
#[derive(Debug, Clone)]
pub struct ClusterCheckpoint {
    api: ApiServer,
    time: u64,
    logs: Vec<LogEntry>,
    image_catalog: BTreeSet<String>,
    crashing: std::collections::BTreeMap<String, String>,
    faults: Option<crate::faults::FaultInjector>,
}

impl ClusterCheckpoint {
    /// Simulated time at which the checkpoint was taken.
    pub fn time(&self) -> u64 {
        self.time
    }
}

/// The simulated cluster.
///
/// # Examples
///
/// ```
/// use simkube::{ClusterConfig, SimCluster};
///
/// let mut cluster = SimCluster::new(ClusterConfig::default());
/// cluster.step();
/// assert_eq!(cluster.now(), 1);
/// ```
#[derive(Debug)]
pub struct SimCluster {
    api: ApiServer,
    time: u64,
    logs: Vec<LogEntry>,
    image_catalog: BTreeSet<String>,
    /// Pods forced into a crash loop by the managed-system model, with the
    /// reason (`pod name -> reason`).
    crashing: std::collections::BTreeMap<String, String>,
    /// Installed fault plan, if any.
    faults: Option<crate::faults::FaultInjector>,
}

impl SimCluster {
    /// Builds a cluster with the given configuration and registers its
    /// nodes.
    pub fn new(config: ClusterConfig) -> SimCluster {
        let mut cluster = SimCluster {
            api: ApiServer::new(config.bugs),
            time: 0,
            logs: Vec::new(),
            image_catalog: config.image_catalog.into_iter().collect(),
            crashing: std::collections::BTreeMap::new(),
            faults: None,
        };
        for (i, (name, cpu, memory)) in config.nodes.into_iter().enumerate() {
            let mut node = Node::with_capacity(&cpu, &memory);
            // Deterministic topology labels so selector/affinity scenarios
            // have satisfiable and unsatisfiable variants.
            node.labels.insert(
                "zone".to_string(),
                if i % 2 == 0 { "zone-a" } else { "zone-b" }.to_string(),
            );
            if i < 2 {
                node.labels.insert("disk".to_string(), "ssd".to_string());
            }
            cluster
                .api
                .store_mut()
                .create(ObjectMeta::named("", &name), ObjectData::Node(node), 0)
                .expect("node creation");
        }
        cluster
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> u64 {
        self.time
    }

    /// Takes a cheap deep snapshot of the whole cluster (store, clock,
    /// logs, catalog, crash conditions, fault state). See
    /// [`ClusterCheckpoint`].
    pub fn checkpoint(&self) -> ClusterCheckpoint {
        ClusterCheckpoint {
            api: self.api.snapshot(),
            time: self.time,
            logs: self.logs.clone(),
            image_catalog: self.image_catalog.clone(),
            crashing: self.crashing.clone(),
            faults: self.faults.clone(),
        }
    }

    /// Rewinds (or fast-forwards) this cluster to a checkpoint. All state —
    /// including the simulated clock — becomes exactly what
    /// [`SimCluster::checkpoint`] captured.
    pub fn restore(&mut self, cp: &ClusterCheckpoint) {
        self.api = cp.api.snapshot();
        self.time = cp.time;
        self.logs = cp.logs.clone();
        self.image_catalog = cp.image_catalog.clone();
        self.crashing = cp.crashing.clone();
        self.faults = cp.faults.clone();
    }

    /// Builds a new cluster directly from a checkpoint.
    pub fn from_checkpoint(cp: &ClusterCheckpoint) -> SimCluster {
        SimCluster {
            api: cp.api.snapshot(),
            time: cp.time,
            logs: cp.logs.clone(),
            image_catalog: cp.image_catalog.clone(),
            crashing: cp.crashing.clone(),
            faults: cp.faults.clone(),
        }
    }

    /// The API server.
    pub fn api(&self) -> &ApiServer {
        &self.api
    }

    /// Mutable API server access.
    pub fn api_mut(&mut self) -> &mut ApiServer {
        &mut self.api
    }

    /// Registers an image as pullable.
    pub fn add_image(&mut self, image: &str) {
        self.image_catalog.insert(image.to_string());
    }

    /// Returns `true` when the image can be pulled. Images with an explicit
    /// catalog entry always can; otherwise any syntactically valid
    /// `repo:tag` reference whose repository is known succeeds.
    pub fn image_exists(&self, image: &str) -> bool {
        if self.image_catalog.contains(image) {
            return true;
        }
        // A reference without a tag or with an unknown repository fails.
        match image.split_once(':') {
            Some((repo, tag)) if !tag.is_empty() => self
                .image_catalog
                .iter()
                .any(|known| known.split_once(':').map(|(r, _)| r) == Some(repo) && known == image),
            _ => false,
        }
    }

    /// Appends a log entry.
    pub fn log(&mut self, level: LogLevel, source: &str, message: impl Into<String>) {
        self.logs.push(LogEntry {
            time: self.time,
            level,
            source: source.to_string(),
            message: message.into(),
        });
    }

    /// All log entries.
    pub fn logs(&self) -> &[LogEntry] {
        &self.logs
    }

    /// Log entries at `Error` severity or above after a given time.
    pub fn error_logs_since(&self, time: u64) -> Vec<&LogEntry> {
        self.logs
            .iter()
            .filter(|e| e.time >= time && matches!(e.level, LogLevel::Error | LogLevel::Panic))
            .collect()
    }

    /// Marks a pod as crash-looping for a managed-system reason (e.g. "the
    /// binlog pump cluster is missing"). Cleared with
    /// [`SimCluster::clear_crash`].
    pub fn set_crashing(&mut self, pod_name: &str, reason: &str) {
        self.crashing
            .insert(pod_name.to_string(), reason.to_string());
    }

    /// Clears a crash-loop condition.
    pub fn clear_crash(&mut self, pod_name: &str) {
        self.crashing.remove(pod_name);
    }

    /// Returns crash conditions currently in force.
    pub fn crashing(&self) -> impl Iterator<Item = (&String, &String)> {
        self.crashing.iter()
    }

    /// Advances the world by one simulated second.
    pub fn step(&mut self) {
        self.time += 1;
        let time = self.time;
        // Installed faults fire before anything else reacts: the rest of
        // the tick then observes (and may start repairing) the damage.
        if let Some(injector) = &mut self.faults {
            let conflicts = injector.apply_due(&mut self.api, time);
            if conflicts > 0 {
                self.api.inject_conflicts(conflicts);
            }
        }
        let bugs = self.api.bugs();
        if !self.watch_blackout_active() {
            crate::controllers::run_all(self.api.store_mut(), time, bugs);
        }
        scheduler::schedule(self.api.store_mut(), time);
        self.advance_pods();
    }

    /// Installs a fault plan; its offsets are relative to the current
    /// simulated time. Replaces any previously installed plan.
    pub fn install_fault_plan(&mut self, plan: crate::faults::FaultPlan) {
        self.faults = Some(crate::faults::FaultInjector::new(plan, self.time));
    }

    /// Returns `true` while an injected watch blackout suppresses the
    /// built-in controllers and operator watches.
    pub fn watch_blackout_active(&self) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|f| f.blackout_active(self.time))
    }

    /// Consumes one injected transient reconcile error, if armed.
    pub fn take_injected_reconcile_error(&mut self) -> bool {
        self.faults
            .as_mut()
            .is_some_and(|f| f.take_reconcile_error())
    }

    /// Returns `true` once every installed fault has fired and lapsed
    /// (vacuously true with no plan installed).
    pub fn faults_exhausted(&self) -> bool {
        self.faults
            .as_ref()
            .is_none_or(|f| f.exhausted(self.time))
    }

    /// Transcript lines for every fault applied so far.
    pub fn fault_events(&self) -> Vec<String> {
        self.faults
            .as_ref()
            .map(|f| f.events().iter().map(|e| e.render()).collect())
            .unwrap_or_default()
    }

    /// Advances pod lifecycle: image pulls, container start, readiness,
    /// crash loops.
    fn advance_pods(&mut self) {
        let time = self.time;
        let pod_keys: Vec<ObjKey> = self
            .api
            .store()
            .list_all(&Kind::Pod)
            .iter()
            .map(|o| ObjKey::new(Kind::Pod, &o.meta.namespace, &o.meta.name))
            .collect();
        for key in pod_keys {
            let (pod, name) = match self.api.store().get(&key) {
                Some(obj) => match &obj.data {
                    ObjectData::Pod(p) => (p.clone(), obj.meta.name.clone()),
                    _ => continue,
                },
                None => continue,
            };
            // Crash condition set by the managed-system model wins.
            if let Some(reason) = self.crashing.get(&name).cloned() {
                let msg = format!("pod {name} crash-looping: {reason}");
                let already = pod.phase == PodPhase::Failed && pod.reason == "CrashLoopBackOff";
                let _ = self.api.store_mut().update_with(&key, time, |o| {
                    if let ObjectData::Pod(p) = &mut o.data {
                        p.phase = PodPhase::Failed;
                        p.reason = "CrashLoopBackOff".to_string();
                        p.ready = false;
                        if !already {
                            p.restarts += 1;
                            p.phase_since = time;
                        }
                    }
                });
                if !already {
                    self.log(LogLevel::Error, "kubelet", msg);
                }
                continue;
            }
            match pod.phase {
                PodPhase::Pending => {
                    let Some(_node) = pod.node_name.as_ref() else {
                        continue;
                    };
                    // Security context must be valid.
                    let mut sec_errors = pod.security.validate();
                    for c in &pod.containers {
                        sec_errors.extend(c.security.validate());
                    }
                    if !sec_errors.is_empty() {
                        let _ = self.api.store_mut().update_with(&key, time, |o| {
                            if let ObjectData::Pod(p) = &mut o.data {
                                p.reason = "CreateContainerConfigError".to_string();
                            }
                        });
                        continue;
                    }
                    // All claims must be bound.
                    let unbound = pod.claims.iter().any(|cname| {
                        match self.api.store().get(&ObjKey::new(
                            Kind::PersistentVolumeClaim,
                            &key.namespace,
                            cname,
                        )) {
                            Some(obj) => !matches!(
                                &obj.data,
                                ObjectData::PersistentVolumeClaim(c)
                                    if c.phase == crate::objects::ClaimPhase::Bound
                            ),
                            None => true,
                        }
                    });
                    if unbound {
                        let _ = self.api.store_mut().update_with(&key, time, |o| {
                            if let ObjectData::Pod(p) = &mut o.data {
                                p.reason = "WaitingForVolume".to_string();
                            }
                        });
                        continue;
                    }
                    // Images must exist.
                    let missing: Vec<String> = pod
                        .containers
                        .iter()
                        .filter(|c| !self.image_exists(&c.image))
                        .map(|c| c.image.clone())
                        .collect();
                    if !missing.is_empty() {
                        let first_time = pod.reason != "ImagePullBackOff";
                        let _ = self.api.store_mut().update_with(&key, time, |o| {
                            if let ObjectData::Pod(p) = &mut o.data {
                                p.reason = "ImagePullBackOff".to_string();
                            }
                        });
                        if first_time {
                            self.log(
                                LogLevel::Error,
                                "kubelet",
                                format!("pod {name}: failed to pull {}", missing.join(", ")),
                            );
                        }
                        continue;
                    }
                    // Start after the pull/start delay.
                    if time.saturating_sub(pod.phase_since) >= POD_START_DELAY {
                        let _ = self.api.store_mut().update_with(&key, time, |o| {
                            if let ObjectData::Pod(p) = &mut o.data {
                                p.phase = PodPhase::Running;
                                p.reason = String::new();
                                p.phase_since = time;
                            }
                        });
                    }
                }
                PodPhase::Running => {
                    if !pod.ready && time.saturating_sub(pod.phase_since) >= POD_READY_DELAY {
                        let _ = self.api.store_mut().update_with(&key, time, |o| {
                            if let ObjectData::Pod(p) = &mut o.data {
                                p.ready = true;
                            }
                        });
                    }
                }
                PodPhase::Failed => {
                    // Crash condition cleared: restart the container.
                    let _ = self.api.store_mut().update_with(&key, time, |o| {
                        if let ObjectData::Pod(p) = &mut o.data {
                            p.phase = PodPhase::Pending;
                            p.reason = String::new();
                            p.phase_since = time;
                        }
                    });
                }
                PodPhase::Succeeded => {}
            }
        }
    }

    /// Runs until no watch event has occurred for `reset_timeout` simulated
    /// seconds (the paper's reset-timer convergence), or `max_seconds`
    /// elapse.
    ///
    /// Returns `true` on convergence, `false` on timeout.
    pub fn run_until_converged(&mut self, reset_timeout: u64, max_seconds: u64) -> bool {
        let deadline = self.time + max_seconds;
        let mut last_event_time = self.time;
        let mut last_revision = self.api.store().revision();
        while self.time < deadline {
            self.step();
            let revision = self.api.store().revision();
            if revision != last_revision {
                last_revision = revision;
                last_event_time = self.time;
            } else if self.time - last_event_time >= reset_timeout {
                return true;
            }
        }
        false
    }

    /// Convenience: lists pods of a namespace as `(name, phase, ready,
    /// reason)` tuples, sorted by name.
    pub fn pod_summaries(&self, namespace: &str) -> Vec<(String, PodPhase, bool, String)> {
        self.api
            .store()
            .list(&Kind::Pod, namespace)
            .iter()
            .filter_map(|o| match &o.data {
                ObjectData::Pod(p) => {
                    Some((o.meta.name.clone(), p.phase, p.ready, p.reason.clone()))
                }
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::LabelSelector;
    use crate::objects::{Container, PodTemplate, StatefulSet};

    fn test_config() -> ClusterConfig {
        ClusterConfig {
            image_catalog: vec!["zk:3.8".to_string(), "zk:3.9".to_string()],
            bugs: PlatformBugs::none(),
            ..ClusterConfig::default()
        }
    }

    fn make_sts(replicas: i32, image: &str) -> StatefulSet {
        StatefulSet {
            replicas,
            selector: LabelSelector::match_labels([("app", "zk")]),
            template: PodTemplate {
                labels: [("app".to_string(), "zk".to_string())]
                    .into_iter()
                    .collect(),
                containers: vec![Container {
                    name: "zk".to_string(),
                    image: image.to_string(),
                    ..Container::default()
                }],
                ..PodTemplate::default()
            },
            service_name: "zk".to_string(),
            ..StatefulSet::default()
        }
    }

    #[test]
    fn statefulset_converges_to_running_pods() {
        let mut cluster = SimCluster::new(test_config());
        cluster
            .api_mut()
            .apply_object(
                ObjectMeta::named("ns", "zk"),
                ObjectData::StatefulSet(make_sts(3, "zk:3.8")),
                0,
            )
            .unwrap();
        assert!(cluster.run_until_converged(10, 600));
        let pods = cluster.pod_summaries("ns");
        assert_eq!(pods.len(), 3);
        assert!(pods
            .iter()
            .all(|(_, phase, ready, _)| *phase == PodPhase::Running && *ready));
    }

    #[test]
    fn bad_image_never_converges_to_running() {
        let mut cluster = SimCluster::new(test_config());
        cluster
            .api_mut()
            .apply_object(
                ObjectMeta::named("ns", "zk"),
                ObjectData::StatefulSet(make_sts(1, "zk:missing")),
                0,
            )
            .unwrap();
        assert!(cluster.run_until_converged(10, 300));
        let pods = cluster.pod_summaries("ns");
        assert_eq!(pods.len(), 1);
        assert_eq!(pods[0].3, "ImagePullBackOff");
        assert!(!cluster.error_logs_since(0).is_empty());
    }

    #[test]
    fn crash_loop_and_recovery() {
        let mut cluster = SimCluster::new(test_config());
        cluster
            .api_mut()
            .apply_object(
                ObjectMeta::named("ns", "zk"),
                ObjectData::StatefulSet(make_sts(1, "zk:3.8")),
                0,
            )
            .unwrap();
        assert!(cluster.run_until_converged(10, 300));
        cluster.set_crashing("zk-0", "missing pump cluster");
        assert!(cluster.run_until_converged(10, 300));
        let pods = cluster.pod_summaries("ns");
        assert_eq!(pods[0].1, PodPhase::Failed);
        assert_eq!(pods[0].3, "CrashLoopBackOff");
        // Clearing the condition lets the pod restart and recover.
        cluster.clear_crash("zk-0");
        assert!(cluster.run_until_converged(10, 300));
        let pods = cluster.pod_summaries("ns");
        assert_eq!(pods[0].1, PodPhase::Running);
        assert!(pods[0].2);
    }

    #[test]
    fn invalid_security_context_blocks_start() {
        let mut cluster = SimCluster::new(test_config());
        let mut sts = make_sts(1, "zk:3.8");
        sts.template.security.run_as_user = Some(0);
        sts.template.security.run_as_non_root = true;
        cluster
            .api_mut()
            .apply_object(
                ObjectMeta::named("ns", "zk"),
                ObjectData::StatefulSet(sts),
                0,
            )
            .unwrap();
        assert!(cluster.run_until_converged(10, 300));
        let pods = cluster.pod_summaries("ns");
        assert_eq!(pods[0].1, PodPhase::Pending);
        assert_eq!(pods[0].3, "CreateContainerConfigError");
    }

    #[test]
    fn convergence_times_out_on_endless_churn() {
        let mut cluster = SimCluster::new(test_config());
        cluster
            .api_mut()
            .apply_object(
                ObjectMeta::named("ns", "zk"),
                ObjectData::StatefulSet(make_sts(1, "zk:3.8")),
                0,
            )
            .unwrap();
        assert!(cluster.run_until_converged(10, 300));
        // A permanently crashing pod flaps between Failed and Pending,
        // producing endless events.
        cluster.set_crashing("zk-0", "flap");
        // It still "converges" in the sense that the crash state is sticky;
        // verify the reset timer actually waits for quiet.
        let t0 = cluster.now();
        cluster.run_until_converged(10, 50);
        assert!(cluster.now() > t0);
    }

    #[test]
    fn image_catalog_lookup() {
        let mut cluster = SimCluster::new(test_config());
        assert!(cluster.image_exists("zk:3.8"));
        assert!(!cluster.image_exists("zk:4.0"));
        assert!(!cluster.image_exists("zk"));
        assert!(!cluster.image_exists("zk:"));
        cluster.add_image("redis:7");
        assert!(cluster.image_exists("redis:7"));
    }
    #[test]
    fn default_nodes_carry_topology_labels() {
        let cluster = SimCluster::new(test_config());
        let nodes = cluster.api().store().list_all(&crate::objects::Kind::Node);
        assert_eq!(nodes.len(), 4);
        let mut zones = std::collections::BTreeSet::new();
        let mut ssd = 0;
        for n in nodes {
            if let ObjectData::Node(node) = &n.data {
                zones.insert(node.labels.get("zone").cloned().unwrap_or_default());
                if node.labels.get("disk").map(String::as_str) == Some("ssd") {
                    ssd += 1;
                }
            }
        }
        assert_eq!(zones.len(), 2, "two availability zones");
        assert_eq!(ssd, 2, "two ssd nodes");
    }

    #[test]
    fn checkpoint_restore_replays_bit_for_bit() {
        let mut cluster = SimCluster::new(test_config());
        cluster
            .api_mut()
            .apply_object(
                ObjectMeta::named("ns", "zk"),
                ObjectData::StatefulSet(make_sts(2, "zk:3.8")),
                0,
            )
            .unwrap();
        assert!(cluster.run_until_converged(10, 600));
        let cp = cluster.checkpoint();
        assert_eq!(cp.time(), cluster.now());

        // Two futures from the same checkpoint must be identical.
        let mut a = SimCluster::from_checkpoint(&cp);
        let mut b = SimCluster::from_checkpoint(&cp);
        assert_eq!(a.now(), cluster.now());
        for c in [&mut a, &mut b] {
            let t = c.now();
            c.api_mut()
                .apply_object(
                    ObjectMeta::named("ns", "zk"),
                    ObjectData::StatefulSet(make_sts(4, "zk:3.8")),
                    t,
                )
                .unwrap();
            assert!(c.run_until_converged(10, 600));
        }
        assert_eq!(a.now(), b.now());
        assert_eq!(a.pod_summaries("ns"), b.pod_summaries("ns"));
        assert_eq!(a.api().store().revision(), b.api().store().revision());
        assert_eq!(a.logs(), b.logs());

        // Restoring rolls the original back: the scale-up never happened.
        let t = cluster.now();
        cluster
            .api_mut()
            .apply_object(
                ObjectMeta::named("ns", "zk"),
                ObjectData::StatefulSet(make_sts(4, "zk:3.8")),
                t,
            )
            .unwrap();
        cluster.run_until_converged(10, 600);
        assert_eq!(cluster.pod_summaries("ns").len(), 4);
        cluster.restore(&cp);
        assert_eq!(cluster.pod_summaries("ns").len(), 2);
        assert_eq!(cluster.now(), cp.time());
    }

    #[test]
    fn checkpoint_captures_crash_conditions_and_faults() {
        let mut cluster = SimCluster::new(test_config());
        cluster
            .api_mut()
            .apply_object(
                ObjectMeta::named("ns", "zk"),
                ObjectData::StatefulSet(make_sts(1, "zk:3.8")),
                0,
            )
            .unwrap();
        assert!(cluster.run_until_converged(10, 300));
        cluster.set_crashing("zk-0", "wedged");
        let mut plan = crate::faults::FaultPlan::new();
        plan.push(5, crate::faults::Fault::WatchBlackout { duration: 30 });
        cluster.install_fault_plan(plan);
        let cp = cluster.checkpoint();
        let mut copy = SimCluster::from_checkpoint(&cp);
        assert_eq!(
            copy.crashing().collect::<Vec<_>>(),
            cluster.crashing().collect::<Vec<_>>()
        );
        // The restored fault plan fires on schedule.
        for _ in 0..6 {
            copy.step();
        }
        assert!(copy.watch_blackout_active());
        assert!(!copy.faults_exhausted());
    }

    #[test]
    fn unbindable_claims_keep_pods_waiting_for_volume() {
        let mut cluster = SimCluster::new(test_config());
        let mut sts = make_sts(1, "zk:3.8");
        sts.claim_templates.push(crate::objects::ClaimTemplate {
            name: "data".to_string(),
            size: "1Gi".parse().expect("quantity"),
            storage_class: "no-such-class".to_string(),
        });
        cluster
            .api_mut()
            .apply_object(
                ObjectMeta::named("ns", "zk"),
                ObjectData::StatefulSet(sts),
                0,
            )
            .unwrap();
        cluster.run_until_converged(10, 300);
        let pods = cluster.pod_summaries("ns");
        assert_eq!(pods.len(), 1);
        assert_eq!(pods[0].3, "WaitingForVolume");
    }
}
