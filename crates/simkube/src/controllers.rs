//! Built-in controllers: stateful sets, deployments, services, disruption
//! budgets, volume binding, and owner-reference garbage collection.
//!
//! Each controller is a pure reconcile function over the object store; the
//! cluster event loop ([`crate::cluster::SimCluster::step`]) runs them every
//! tick until the state is quiescent, mirroring how the Kubernetes control
//! plane converges.

use std::collections::{BTreeMap, BTreeSet};

use crate::meta::ObjectMeta;
use crate::objects::StoredObject;
use crate::objects::{
    ClaimPhase, Kind, ObjectData, PersistentVolumeClaim, PodPhase, UpdateStrategy,
};
use crate::platform::PlatformBugs;
use crate::pmap::PMap;
use crate::store::{ObjKey, ObjectStore, WatchEventKind};

/// Storage classes the simulated cluster provisions.
pub const KNOWN_STORAGE_CLASSES: &[&str] = &["standard", "fast", "local"];

/// Runs every built-in controller once. Returns `true` when any change was
/// made (the loop re-runs until a fixpoint).
pub fn run_all(store: &mut ObjectStore, time: u64, bugs: PlatformBugs) -> bool {
    let before = store.revision();
    // A throwaway memo: fingerprints are computed at most once per object
    // per tick, exactly the legacy per-tick cost. Cross-tick reuse is an
    // event-engine optimisation ([`run_all_dirty`]).
    let mut memo = TemplateFpMemo::new();
    reconcile_statefulsets(store, time, bugs, &mut memo);
    reconcile_deployments(store, time, bugs, &mut memo);
    bind_claims(store, time);
    reconcile_services(store, time);
    reconcile_pdbs(store, time);
    collect_garbage(store, time);
    store.revision() != before
}

/// Template-fingerprint memo keyed by object uid: an entry is valid while
/// the object's generation is unchanged, because generation bumps exactly
/// when the spec — which contains the pod template — changes
/// ([`ObjectStore::update`]). Uids are never reused, so a stale entry can
/// only miss, never alias.
pub(crate) type TemplateFpMemo = BTreeMap<u64, (u64, String)>;

/// Returns the memoized fingerprint for `(uid, generation)`, computing and
/// caching it on miss.
fn memoized_fingerprint(
    memo: &mut TemplateFpMemo,
    uid: u64,
    generation: u64,
    compute: impl FnOnce() -> String,
) -> String {
    match memo.get(&uid) {
        Some((gen, fp)) if *gen == generation => fp.clone(),
        _ => {
            let fp = compute();
            memo.insert(uid, (generation, fp.clone()));
            fp
        }
    }
}

/// Store-revision cursors recording, per controller, the revision *before*
/// its last run. A controller is dirty — and re-runs — when any of its input
/// kinds changed after its cursor, which includes its own writes (matching
/// the one-change-per-tick pacing of the ticked loop). Stale-low cursors are
/// always safe: they only cause extra (no-op) runs, never missed ones.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ControllerCursors {
    pub(crate) statefulsets: u64,
    pub(crate) deployments: u64,
    pub(crate) claims: u64,
    pub(crate) services: u64,
    pub(crate) pdbs: u64,
    pub(crate) garbage: u64,
    /// Pod/Node cursor for [`crate::scheduler::schedule`], kept here so one
    /// struct checkpoints the whole reconcile queue.
    pub(crate) scheduler: u64,
    /// Cross-tick template-fingerprint memo (see [`TemplateFpMemo`]). Pure
    /// cache: its contents never affect behaviour, only whether a
    /// fingerprint is recomputed.
    pub(crate) template_fps: TemplateFpMemo,
    /// Incremental owner-reference index so garbage collection visits only
    /// objects whose ownership could have changed (see [`GcIndex`]).
    pub(crate) garbage_index: GcIndex,
}

/// Incremental owner-reference index for garbage collection: the live-uid
/// set, each object's `(uid, owner uids)`, and the reverse `(owner uid,
/// dependent key)` edges, kept current by replaying the store's watch-event
/// log. Each sync yields the *candidate* set — evented objects carrying
/// owner references plus dependents of any uid that just died — which is a
/// superset of every new orphan, so checking candidates against the live
/// set deletes exactly what [`collect_garbage`]'s full scan would. Built on
/// persistent maps, so cloning it into a checkpoint is O(1).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcIndex {
    synced: u64,
    /// Uids of every object currently in the store.
    live: PMap<u64, ()>,
    /// Per-object identity and ownership cache: key → `(uid, owner uids)`.
    meta: PMap<ObjKey, (u64, Vec<u64>)>,
    /// Reverse ownership edges: `(owner uid, dependent key)`.
    dependents: PMap<(u64, ObjKey), ()>,
    /// Keys whose cached entry carries at least one owner reference — the
    /// only keys a phase-churn `Modified` event could matter for. Kept tiny
    /// (operator-owned objects only), it powers the sync fast path that
    /// skips the big `meta` descent for ownerless steady-state writes.
    owned: PMap<ObjKey, ()>,
}

impl GcIndex {
    /// Brings the index up to the store's current revision and returns the
    /// orphan-candidate set for this pass.
    fn sync(&mut self, store: &ObjectStore) -> BTreeSet<ObjKey> {
        let mut candidates = BTreeSet::new();
        if store.revision() == self.synced {
            return candidates;
        }
        if store.events_floor() > self.synced {
            // Event log compacted past our cursor (engine switch or
            // restore): rebuild, then re-check every owner-ref'd object —
            // exactly the legacy full pass.
            self.rebuild(store);
            for (key, (_, owners)) in self.meta.iter() {
                if !owners.is_empty() {
                    candidates.insert(key.clone());
                }
            }
            return candidates;
        }
        let events = store.events_since(self.synced);
        // A batch of nothing but `Modified` events cannot create, delete,
        // or re-uid any object (updates preserve `meta.uid`), so a key
        // whose payload carries no owner references and whose cached entry
        // carries none either (it is outside `owned`) is provably
        // unchanged as far as this index cares — skip it without touching
        // the full `meta` map. Any `Added`/`Deleted` event disables the
        // shortcut for the whole batch: a delete+recreate ending in
        // `Modified` changes the uid mid-batch.
        let only_modified = events
            .iter()
            .all(|e| matches!(e.kind, WatchEventKind::Modified));
        let mut died: Vec<u64> = Vec::new();
        // Refreshing reads *current* store state, so each key needs exactly
        // one refresh no matter how often it recurs in the batch (the cache
        // diff still surfaces every intermediate uid death); a reverse scan
        // with a seen-set keeps the dedup O(batch log batch).
        let mut seen: BTreeSet<&ObjKey> = BTreeSet::new();
        for event in events.iter().rev() {
            if !seen.insert(&event.key) {
                continue;
            }
            if only_modified
                && event
                    .obj
                    .as_deref()
                    .is_some_and(|o| o.meta.owner_references.is_empty())
                && !self.owned.contains_key(&event.key)
            {
                continue;
            }
            // The dedup keeps only each key's last event, whose payload is
            // exactly the object's current state — no store descent needed.
            self.refresh(event.obj.as_deref(), &event.key, &mut candidates, &mut died);
        }
        // Everything that depended on a dead uid must be re-checked.
        for uid in died {
            let deps = self
                .dependents
                .range_from_by(|k| {
                    if k.0 < uid {
                        std::cmp::Ordering::Less
                    } else {
                        std::cmp::Ordering::Greater
                    }
                })
                .take_while(|(k, _)| k.0 == uid)
                .map(|(k, _)| k.1.clone());
            candidates.extend(deps);
        }
        self.synced = store.revision();
        candidates
    }

    fn rebuild(&mut self, store: &ObjectStore) {
        *self = GcIndex::default();
        for (key, obj) in store.iter() {
            let owners: Vec<u64> = obj.meta.owner_references.iter().map(|r| r.uid).collect();
            self.live.insert(obj.meta.uid, ());
            for owner in &owners {
                self.dependents.insert((*owner, key.clone()), ());
            }
            if !obj.meta.owner_references.is_empty() {
                self.owned.insert(key.clone(), ());
            }
            self.meta.insert(key.clone(), (obj.meta.uid, owners));
        }
        self.synced = store.revision();
    }

    /// Reconciles one key's cache entry against current store state,
    /// recording owner-ref'd survivors as candidates and vanished uids in
    /// `died`.
    fn refresh(
        &mut self,
        current: Option<&StoredObject>,
        key: &ObjKey,
        candidates: &mut BTreeSet<ObjKey>,
        died: &mut Vec<u64>,
    ) {
        let current: Option<(u64, Vec<u64>)> = current.map(|o| {
            (
                o.meta.uid,
                o.meta.owner_references.iter().map(|r| r.uid).collect(),
            )
        });
        let cached = self.meta.get(key).cloned();
        if cached == current {
            return;
        }
        if let Some((uid, owners)) = cached {
            self.live.remove(&uid);
            self.meta.remove(key);
            for owner in owners {
                self.dependents.remove(&(owner, key.clone()));
            }
            died.push(uid);
        }
        if let Some((uid, owners)) = current {
            self.live.insert(uid, ());
            for owner in &owners {
                self.dependents.insert((*owner, key.clone()), ());
            }
            if !owners.is_empty() {
                candidates.insert(key.clone());
                if !self.owned.contains_key(key) {
                    self.owned.insert(key.clone(), ());
                }
            } else if self.owned.contains_key(key) {
                self.owned.remove(key);
            }
            self.meta.insert(key.clone(), (uid, owners));
        } else if self.owned.contains_key(key) {
            self.owned.remove(key);
        }
    }
}

/// Like [`run_all`] but skips controllers whose input kinds are unchanged
/// since their cursor. Controllers are deterministic functions of the store
/// (time is only a write timestamp) and suppress no-op writes, so a clean
/// controller would provably write nothing — skipping it is behaviour
/// preserving.
pub fn run_all_dirty(
    store: &mut ObjectStore,
    time: u64,
    bugs: PlatformBugs,
    cursors: &mut ControllerCursors,
) -> bool {
    let before = store.revision();
    // Each controller additionally skips when zero objects of its *top*
    // kind exist: a reconcile pass over an empty set provably writes
    // nothing, so a pod event in a cluster with no stateful sets (the
    // background-pod steady state at scale) costs nothing here. The cursor
    // still advances — exactly as if the no-op pass had run.
    if store.kinds_dirty_since(
        &[Kind::StatefulSet, Kind::Pod, Kind::PersistentVolumeClaim],
        cursors.statefulsets,
    ) {
        cursors.statefulsets = store.revision();
        if store.kind_count(&Kind::StatefulSet) > 0 {
            reconcile_statefulsets(store, time, bugs, &mut cursors.template_fps);
        }
    }
    if store.kinds_dirty_since(&[Kind::Deployment, Kind::Pod], cursors.deployments) {
        cursors.deployments = store.revision();
        if store.kind_count(&Kind::Deployment) > 0 {
            reconcile_deployments(store, time, bugs, &mut cursors.template_fps);
        }
    }
    if store.kinds_dirty_since(&[Kind::PersistentVolumeClaim], cursors.claims) {
        cursors.claims = store.revision();
        if store.kind_count(&Kind::PersistentVolumeClaim) > 0 {
            bind_claims(store, time);
        }
    }
    if store.kinds_dirty_since(&[Kind::Service, Kind::Pod], cursors.services) {
        cursors.services = store.revision();
        if store.kind_count(&Kind::Service) > 0 {
            reconcile_services(store, time);
        }
    }
    if store.kinds_dirty_since(&[Kind::PodDisruptionBudget, Kind::Pod], cursors.pdbs) {
        cursors.pdbs = store.revision();
        if store.kind_count(&Kind::PodDisruptionBudget) > 0 {
            reconcile_pdbs(store, time);
        }
    }
    // Garbage collection watches owner references on every kind: gate on the
    // full store revision rather than a kind set. The indexed pass deletes
    // exactly what [`collect_garbage`]'s full scan would, visiting only
    // candidates surfaced by the event log.
    if store.revision() > cursors.garbage {
        cursors.garbage = store.revision();
        collect_garbage_indexed(store, time, &mut cursors.garbage_index);
    }
    store.revision() != before
}

/// Incremental owner-reference garbage collection: candidates come from the
/// [`GcIndex`] event sync instead of a full-store scan; each is verified
/// against the live-uid set (which, like [`collect_garbage`]'s snapshot,
/// reflects the store *before* this pass's deletes) and deleted in key
/// order — the same objects, in the same order, as the full scan.
pub fn collect_garbage_indexed(store: &mut ObjectStore, time: u64, index: &mut GcIndex) {
    let candidates = index.sync(store);
    let orphans: Vec<ObjKey> = candidates
        .into_iter()
        .filter(|key| match store.get(key) {
            Some(o) => {
                !o.meta.owner_references.is_empty()
                    && o.meta
                        .owner_references
                        .iter()
                        .all(|r| !index.live.contains_key(&r.uid))
            }
            None => false,
        })
        .collect();
    for key in orphans {
        store.delete(&key, time);
    }
}

/// Reconciles every stateful set: ordered pod creation with stable names,
/// per-pod volume claims, rolling updates, and scale-down from the highest
/// ordinal.
pub fn reconcile_statefulsets(
    store: &mut ObjectStore,
    time: u64,
    bugs: PlatformBugs,
    memo: &mut TemplateFpMemo,
) {
    let sts_keys: Vec<ObjKey> = store
        .list_all(&Kind::StatefulSet)
        .iter()
        .map(|o| ObjKey::new(Kind::StatefulSet, &o.meta.namespace, &o.meta.name))
        .collect();
    for key in sts_keys {
        reconcile_one_statefulset(store, &key, time, bugs, memo);
    }
}

fn pod_name(sts: &str, ordinal: i32) -> String {
    format!("{sts}-{ordinal}")
}

fn claim_name(template: &str, sts: &str, ordinal: i32) -> String {
    format!("{template}-{sts}-{ordinal}")
}

/// A stable fingerprint of the pod-affecting parts of a stateful set.
/// Claim templates are intentionally excluded: volume claim templates are
/// immutable in Kubernetes and never roll pods.
fn sts_fingerprint(sts: &crate::objects::StatefulSet) -> String {
    crate::objects::fnv_fingerprint(&crdspec::json::to_string(&sts.template.to_value()))
}

/// Fingerprint of a deployment template (no claims).
fn template_fingerprint(tpl: &crate::objects::PodTemplate) -> String {
    crate::objects::fnv_fingerprint(&crdspec::json::to_string(&tpl.to_value()))
}

fn reconcile_one_statefulset(
    store: &mut ObjectStore,
    key: &ObjKey,
    time: u64,
    bugs: PlatformBugs,
    memo: &mut TemplateFpMemo,
) {
    let (sts, owner_uid, namespace, name, generation) = match store.get(key) {
        Some(obj) => match &obj.data {
            ObjectData::StatefulSet(s) => (
                s.clone(),
                obj.meta.uid,
                obj.meta.namespace.clone(),
                obj.meta.name.clone(),
                obj.meta.generation,
            ),
            _ => return,
        },
        None => return,
    };
    let replicas = sts.replicas.max(0);
    let fingerprint = memoized_fingerprint(memo, owner_uid, generation, || sts_fingerprint(&sts));

    // Collect existing pods of this set, by ordinal.
    let mut existing: Vec<(i32, ObjKey, PodPhase, bool, String)> = Vec::new();
    for obj in store.list(&Kind::Pod, &namespace) {
        if let ObjectData::Pod(p) = &obj.data {
            if let Some(ord) = ordinal_of(&obj.meta.name, &name) {
                if obj.meta.owner_references.iter().any(|o| o.uid == owner_uid) {
                    existing.push((
                        ord,
                        ObjKey::new(Kind::Pod, &namespace, &obj.meta.name),
                        p.phase,
                        p.ready,
                        obj.meta
                            .annotations
                            .get("template-fingerprint")
                            .cloned()
                            .unwrap_or_default(),
                    ));
                }
            }
        }
    }
    existing.sort_by_key(|(ord, ..)| *ord);

    // Scale down: delete the highest ordinal beyond the desired count.
    if let Some((ord, pod_key, ..)) = existing.last() {
        if *ord >= replicas {
            let pod_key = pod_key.clone();
            store.delete(&pod_key, time);
            update_sts_status(store, key, time, bugs, generation);
            return; // One change per tick keeps ordering faithful.
        }
    }

    // Rolling update: replace one stale pod per tick. A stale pod that is
    // not running is replaced immediately (it cannot make progress);
    // otherwise replacement waits for every pod to run and proceeds from
    // the highest ordinal.
    if sts.update_strategy == UpdateStrategy::RollingUpdate {
        if let Some((_, pod_key, ..)) = existing
            .iter()
            .find(|(_, _, phase, _, fp)| *fp != fingerprint && *phase != PodPhase::Running)
        {
            let pod_key = pod_key.clone();
            store.delete(&pod_key, time);
            update_sts_status(store, key, time, bugs, generation);
            return;
        }
        let all_running = existing
            .iter()
            .all(|(_, _, phase, ..)| *phase == PodPhase::Running);
        if all_running && existing.len() == replicas as usize {
            if let Some((_, pod_key, ..)) = existing
                .iter()
                .rev()
                .find(|(_, _, _, _, fp)| *fp != fingerprint)
            {
                let pod_key = pod_key.clone();
                store.delete(&pod_key, time);
                update_sts_status(store, key, time, bugs, generation);
                return;
            }
        }
    }

    // Scale up / replace missing: create the lowest missing ordinal, but
    // only when all lower ordinals are running and ready (OrderedReady).
    let have: BTreeSet<i32> = existing.iter().map(|(ord, ..)| *ord).collect();
    for ordinal in 0..replicas {
        if have.contains(&ordinal) {
            continue;
        }
        let lower_ready = existing
            .iter()
            .filter(|(ord, ..)| *ord < ordinal)
            .all(|(_, _, phase, ready, _)| *phase == PodPhase::Running && *ready);
        if !lower_ready {
            break;
        }
        // Create this pod's claims first.
        for tpl in &sts.claim_templates {
            let cname = claim_name(&tpl.name, &name, ordinal);
            let ckey = ObjKey::new(Kind::PersistentVolumeClaim, &namespace, &cname);
            if store.get(&ckey).is_none() {
                let claim = PersistentVolumeClaim {
                    size: tpl.size,
                    storage_class: tpl.storage_class.clone(),
                    phase: ClaimPhase::Pending,
                };
                let meta = ObjectMeta::named(&namespace, &cname).with_owner(
                    "StatefulSet",
                    &name,
                    owner_uid,
                );
                let _ = store.create(meta, ObjectData::PersistentVolumeClaim(claim), time);
            }
        }
        let mut pod = sts.template.make_pod();
        pod.claims = sts
            .claim_templates
            .iter()
            .map(|tpl| claim_name(&tpl.name, &name, ordinal))
            .collect();
        pod.phase_since = time;
        let mut meta = ObjectMeta::named(&namespace, &pod_name(&name, ordinal)).with_owner(
            "StatefulSet",
            &name,
            owner_uid,
        );
        meta.labels = sts.template.labels.clone();
        meta.annotations = sts.template.annotations.clone();
        meta.annotations
            .insert("template-fingerprint".to_string(), fingerprint.clone());
        let _ = store.create(meta, ObjectData::Pod(pod), time);
        break; // One pod per tick (OrderedReady).
    }
    update_sts_status(store, key, time, bugs, generation);
}

fn update_sts_status(
    store: &mut ObjectStore,
    key: &ObjKey,
    time: u64,
    bugs: PlatformBugs,
    generation: u64,
) {
    let (namespace, name, owner_uid, replicas) = match store.get(key) {
        Some(obj) => match &obj.data {
            ObjectData::StatefulSet(s) => (
                obj.meta.namespace.clone(),
                obj.meta.name.clone(),
                obj.meta.uid,
                s.replicas,
            ),
            _ => return,
        },
        None => return,
    };
    let mut ready = 0;
    let mut current = 0;
    for obj in store.list(&Kind::Pod, &namespace) {
        if let ObjectData::Pod(p) = &obj.data {
            if ordinal_of(&obj.meta.name, &name).is_some()
                && obj.meta.owner_references.iter().any(|o| o.uid == owner_uid)
            {
                current += 1;
                if p.phase == PodPhase::Running && p.ready {
                    ready += 1;
                }
            }
        }
    }
    let _ = store.update_with(key, time, |obj| {
        if let ObjectData::StatefulSet(s) = &mut obj.data {
            s.ready_replicas = ready;
            // PLAT-6: observedGeneration is bumped before the rollout
            // completes, so watchers believe convergence happened early.
            if bugs.premature_observed_generation || (ready == replicas && current == replicas) {
                s.observed_generation = generation;
            }
        }
    });
}

/// Extracts the ordinal from a pod name of the form `{set}-{ordinal}`.
fn ordinal_of(pod_name: &str, sts_name: &str) -> Option<i32> {
    let rest = pod_name.strip_prefix(sts_name)?.strip_prefix('-')?;
    rest.parse().ok().filter(|o| *o >= 0)
}

/// Reconciles every deployment: unordered pod management with rolling
/// replacement on template change.
pub fn reconcile_deployments(
    store: &mut ObjectStore,
    time: u64,
    bugs: PlatformBugs,
    memo: &mut TemplateFpMemo,
) {
    let keys: Vec<ObjKey> = store
        .list_all(&Kind::Deployment)
        .iter()
        .map(|o| ObjKey::new(Kind::Deployment, &o.meta.namespace, &o.meta.name))
        .collect();
    for key in keys {
        let (dep, owner_uid, namespace, name, generation) = match store.get(&key) {
            Some(obj) => match &obj.data {
                ObjectData::Deployment(d) => (
                    d.clone(),
                    obj.meta.uid,
                    obj.meta.namespace.clone(),
                    obj.meta.name.clone(),
                    obj.meta.generation,
                ),
                _ => continue,
            },
            None => continue,
        };
        let fingerprint = memoized_fingerprint(memo, owner_uid, generation, || {
            template_fingerprint(&dep.template)
        });
        let mut pods: Vec<(ObjKey, PodPhase, bool, String)> = Vec::new();
        for obj in store.list(&Kind::Pod, &namespace) {
            if obj.meta.owner_references.iter().any(|o| o.uid == owner_uid) {
                if let ObjectData::Pod(p) = &obj.data {
                    pods.push((
                        ObjKey::new(Kind::Pod, &namespace, &obj.meta.name),
                        p.phase,
                        p.ready,
                        obj.meta
                            .annotations
                            .get("template-fingerprint")
                            .cloned()
                            .unwrap_or_default(),
                    ));
                }
            }
        }
        let replicas = dep.replicas.max(0) as usize;
        if pods.len() > replicas {
            // Scale down: delete the lexically last pod.
            let victim = pods.last().expect("non-empty").0.clone();
            store.delete(&victim, time);
        } else if pods.len() < replicas {
            // Scale up: next free index.
            let mut idx = 0;
            loop {
                let pname = format!("{name}-{idx}");
                let pkey = ObjKey::new(Kind::Pod, &namespace, &pname);
                if store.get(&pkey).is_none() {
                    let mut pod = dep.template.make_pod();
                    pod.phase_since = time;
                    let mut meta = ObjectMeta::named(&namespace, &pname).with_owner(
                        "Deployment",
                        &name,
                        owner_uid,
                    );
                    meta.labels = dep.template.labels.clone();
                    meta.annotations
                        .insert("template-fingerprint".to_string(), fingerprint.clone());
                    let _ = store.create(meta, ObjectData::Pod(pod), time);
                    break;
                }
                idx += 1;
            }
        } else if let Some((stale, ..)) = pods
            .iter()
            .find(|(_, phase, _, fp)| *fp != fingerprint && *phase != PodPhase::Running)
            .or_else(|| pods.iter().find(|(_, _, _, fp)| *fp != fingerprint))
        {
            // Rolling replace one stale pod per tick; stale pods that are
            // stuck (not running) are replaced first.
            let stale = stale.clone();
            store.delete(&stale, time);
        }
        // Status.
        let mut ready = 0;
        for obj in store.list(&Kind::Pod, &namespace) {
            if obj.meta.owner_references.iter().any(|o| o.uid == owner_uid) {
                if let ObjectData::Pod(p) = &obj.data {
                    if p.phase == PodPhase::Running && p.ready {
                        ready += 1;
                    }
                }
            }
        }
        let _ = store.update_with(&key, time, |obj| {
            if let ObjectData::Deployment(d) = &mut obj.data {
                d.ready_replicas = ready;
                if bugs.premature_observed_generation || ready == d.replicas {
                    d.observed_generation = generation;
                }
            }
        });
    }
}

/// Binds pending claims whose storage class the cluster knows how to
/// provision; unknown classes stay `Pending` forever.
pub fn bind_claims(store: &mut ObjectStore, time: u64) {
    let keys: Vec<ObjKey> = store
        .list_all(&Kind::PersistentVolumeClaim)
        .iter()
        .filter(|o| {
            matches!(
                &o.data,
                ObjectData::PersistentVolumeClaim(c)
                    if c.phase == ClaimPhase::Pending
                        && KNOWN_STORAGE_CLASSES.contains(&c.storage_class.as_str())
                        && !c.size.is_negative()
            )
        })
        .map(|o| ObjKey::new(Kind::PersistentVolumeClaim, &o.meta.namespace, &o.meta.name))
        .collect();
    for key in keys {
        let _ = store.update_with(&key, time, |obj| {
            if let ObjectData::PersistentVolumeClaim(c) = &mut obj.data {
                c.phase = ClaimPhase::Bound;
            }
        });
    }
}

/// Refreshes service endpoints from ready pods matching each selector.
pub fn reconcile_services(store: &mut ObjectStore, time: u64) {
    let keys: Vec<ObjKey> = store
        .list_all(&Kind::Service)
        .iter()
        .map(|o| ObjKey::new(Kind::Service, &o.meta.namespace, &o.meta.name))
        .collect();
    for key in keys {
        let selector = match store.get(&key) {
            Some(obj) => match &obj.data {
                ObjectData::Service(s) => s.selector.clone(),
                _ => continue,
            },
            None => continue,
        };
        let mut endpoints: Vec<String> = store
            .list(&Kind::Pod, &key.namespace)
            .iter()
            .filter(|o| {
                selector.matches(&o.meta.labels)
                    && matches!(&o.data, ObjectData::Pod(p) if p.phase == PodPhase::Running && p.ready)
            })
            .map(|o| o.meta.name.clone())
            .collect();
        endpoints.sort();
        let _ = store.update_with(&key, time, |obj| {
            if let ObjectData::Service(s) = &mut obj.data {
                s.endpoints = endpoints;
            }
        });
    }
}

/// Updates disruption-budget status counts.
pub fn reconcile_pdbs(store: &mut ObjectStore, time: u64) {
    let keys: Vec<ObjKey> = store
        .list_all(&Kind::PodDisruptionBudget)
        .iter()
        .map(|o| ObjKey::new(Kind::PodDisruptionBudget, &o.meta.namespace, &o.meta.name))
        .collect();
    for key in keys {
        let selector = match store.get(&key) {
            Some(obj) => match &obj.data {
                ObjectData::PodDisruptionBudget(p) => p.selector.clone(),
                _ => continue,
            },
            None => continue,
        };
        let healthy = store
            .list(&Kind::Pod, &key.namespace)
            .iter()
            .filter(|o| {
                selector.matches(&o.meta.labels)
                    && matches!(&o.data, ObjectData::Pod(p) if p.phase == PodPhase::Running && p.ready)
            })
            .count() as i32;
        let _ = store.update_with(&key, time, |obj| {
            if let ObjectData::PodDisruptionBudget(p) = &mut obj.data {
                p.current_healthy = healthy;
            }
        });
    }
}

/// Deletes objects whose owners no longer exist (cascading deletion).
pub fn collect_garbage(store: &mut ObjectStore, time: u64) {
    let live_uids: BTreeSet<u64> = store.iter().map(|(_, o)| o.meta.uid).collect();
    let orphans: Vec<ObjKey> = store
        .iter()
        .filter(|(_, o)| {
            !o.meta.owner_references.is_empty()
                && o.meta
                    .owner_references
                    .iter()
                    .all(|r| !live_uids.contains(&r.uid))
        })
        .map(|(k, _)| k.clone())
        .collect();
    for key in orphans {
        store.delete(&key, time);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::LabelSelector;
    use crate::objects::{ClaimTemplate, Container, PodTemplate, StatefulSet};

    fn sts(replicas: i32) -> StatefulSet {
        StatefulSet {
            replicas,
            selector: LabelSelector::match_labels([("app", "zk")]),
            template: PodTemplate {
                labels: [("app".to_string(), "zk".to_string())]
                    .into_iter()
                    .collect(),
                containers: vec![Container {
                    name: "zk".to_string(),
                    image: "zk:3.8".to_string(),
                    ..Container::default()
                }],
                ..PodTemplate::default()
            },
            claim_templates: vec![ClaimTemplate {
                name: "data".to_string(),
                size: "1Gi".parse().unwrap(),
                storage_class: "standard".to_string(),
            }],
            service_name: "zk-headless".to_string(),
            ..StatefulSet::default()
        }
    }

    fn mark_all_running(store: &mut ObjectStore, time: u64) {
        let keys: Vec<ObjKey> = store
            .list_all(&Kind::Pod)
            .iter()
            .map(|o| ObjKey::new(Kind::Pod, &o.meta.namespace, &o.meta.name))
            .collect();
        for key in keys {
            store
                .update_with(&key, time, |o| {
                    if let ObjectData::Pod(p) = &mut o.data {
                        p.phase = PodPhase::Running;
                        p.ready = true;
                    }
                })
                .unwrap();
        }
    }

    fn converge(store: &mut ObjectStore, bugs: PlatformBugs) {
        for t in 0..100 {
            mark_all_running(store, t);
            if !run_all(store, t, bugs) {
                break;
            }
        }
    }

    #[test]
    fn statefulset_creates_pods_in_order_with_claims() {
        let mut store = ObjectStore::new();
        store
            .create(
                ObjectMeta::named("ns", "zk"),
                ObjectData::StatefulSet(sts(3)),
                0,
            )
            .unwrap();
        // First tick creates only ordinal 0 (OrderedReady).
        run_all(&mut store, 1, PlatformBugs::none());
        assert_eq!(store.list(&Kind::Pod, "ns").len(), 1);
        assert!(store.get(&ObjKey::new(Kind::Pod, "ns", "zk-0")).is_some());
        // Pod 1 is not created while pod 0 is pending.
        run_all(&mut store, 2, PlatformBugs::none());
        assert_eq!(store.list(&Kind::Pod, "ns").len(), 1);
        converge(&mut store, PlatformBugs::none());
        assert_eq!(store.list(&Kind::Pod, "ns").len(), 3);
        assert_eq!(store.list(&Kind::PersistentVolumeClaim, "ns").len(), 3);
        assert!(store
            .get(&ObjKey::new(Kind::PersistentVolumeClaim, "ns", "data-zk-1"))
            .is_some());
    }

    #[test]
    fn statefulset_scales_down_highest_ordinal_first() {
        let mut store = ObjectStore::new();
        let key = store
            .create(
                ObjectMeta::named("ns", "zk"),
                ObjectData::StatefulSet(sts(3)),
                0,
            )
            .unwrap();
        converge(&mut store, PlatformBugs::none());
        store
            .update_with(&key, 50, |o| {
                if let ObjectData::StatefulSet(s) = &mut o.data {
                    s.replicas = 1;
                }
            })
            .unwrap();
        run_all(&mut store, 51, PlatformBugs::none());
        assert!(store.get(&ObjKey::new(Kind::Pod, "ns", "zk-2")).is_none());
        assert!(store.get(&ObjKey::new(Kind::Pod, "ns", "zk-1")).is_some());
        converge(&mut store, PlatformBugs::none());
        assert_eq!(store.list(&Kind::Pod, "ns").len(), 1);
    }

    #[test]
    fn rolling_update_replaces_stale_pods() {
        let mut store = ObjectStore::new();
        let key = store
            .create(
                ObjectMeta::named("ns", "zk"),
                ObjectData::StatefulSet(sts(2)),
                0,
            )
            .unwrap();
        converge(&mut store, PlatformBugs::none());
        // Change the image.
        store
            .update_with(&key, 60, |o| {
                if let ObjectData::StatefulSet(s) = &mut o.data {
                    s.template.containers[0].image = "zk:3.9".to_string();
                }
            })
            .unwrap();
        run_all(&mut store, 61, PlatformBugs::none());
        // Highest ordinal replaced first.
        assert!(store.get(&ObjKey::new(Kind::Pod, "ns", "zk-1")).is_none());
        converge(&mut store, PlatformBugs::none());
        for pod in store.list(&Kind::Pod, "ns") {
            if let ObjectData::Pod(p) = &pod.data {
                assert_eq!(p.containers[0].image, "zk:3.9");
            }
        }
    }

    #[test]
    fn observed_generation_premature_under_plat6() {
        let mut store = ObjectStore::new();
        store
            .create(
                ObjectMeta::named("ns", "zk"),
                ObjectData::StatefulSet(sts(3)),
                0,
            )
            .unwrap();
        // One tick only: rollout far from finished.
        run_all(&mut store, 1, PlatformBugs::all());
        let obj = store
            .get(&ObjKey::new(Kind::StatefulSet, "ns", "zk"))
            .unwrap();
        if let ObjectData::StatefulSet(s) = &obj.data {
            assert_eq!(s.observed_generation, 1, "PLAT-6 reports early");
            assert_ne!(s.ready_replicas, s.replicas);
        }
        // Fixed platform withholds observedGeneration until ready.
        let mut store = ObjectStore::new();
        store
            .create(
                ObjectMeta::named("ns", "zk"),
                ObjectData::StatefulSet(sts(3)),
                0,
            )
            .unwrap();
        run_all(&mut store, 1, PlatformBugs::none());
        let obj = store
            .get(&ObjKey::new(Kind::StatefulSet, "ns", "zk"))
            .unwrap();
        if let ObjectData::StatefulSet(s) = &obj.data {
            assert_eq!(s.observed_generation, 0);
        }
    }

    #[test]
    fn unknown_storage_class_never_binds() {
        let mut store = ObjectStore::new();
        store
            .create(
                ObjectMeta::named("ns", "claim"),
                ObjectData::PersistentVolumeClaim(PersistentVolumeClaim {
                    size: "1Gi".parse().unwrap(),
                    storage_class: "nonexistent".to_string(),
                    phase: ClaimPhase::Pending,
                }),
                0,
            )
            .unwrap();
        bind_claims(&mut store, 1);
        if let ObjectData::PersistentVolumeClaim(c) = &store
            .get(&ObjKey::new(Kind::PersistentVolumeClaim, "ns", "claim"))
            .unwrap()
            .data
        {
            assert_eq!(c.phase, ClaimPhase::Pending);
        }
    }

    #[test]
    fn garbage_collection_cascades() {
        let mut store = ObjectStore::new();
        let owner = store
            .create(
                ObjectMeta::named("ns", "zk"),
                ObjectData::StatefulSet(sts(1)),
                0,
            )
            .unwrap();
        converge(&mut store, PlatformBugs::none());
        assert!(!store.list(&Kind::Pod, "ns").is_empty());
        store.delete(&owner, 99);
        collect_garbage(&mut store, 100);
        assert!(store.list(&Kind::Pod, "ns").is_empty());
        assert!(store.list(&Kind::PersistentVolumeClaim, "ns").is_empty());
    }

    #[test]
    fn deployment_scales_and_reports_status() {
        let mut store = ObjectStore::new();
        let dep = crate::objects::Deployment {
            replicas: 2,
            selector: LabelSelector::match_labels([("app", "web")]),
            template: PodTemplate {
                labels: [("app".to_string(), "web".to_string())]
                    .into_iter()
                    .collect(),
                containers: vec![Container {
                    name: "web".to_string(),
                    image: "web:1".to_string(),
                    ..Container::default()
                }],
                ..PodTemplate::default()
            },
            ..crate::objects::Deployment::default()
        };
        let key = store
            .create(
                ObjectMeta::named("ns", "web"),
                ObjectData::Deployment(dep),
                0,
            )
            .unwrap();
        converge(&mut store, PlatformBugs::none());
        assert_eq!(store.list(&Kind::Pod, "ns").len(), 2);
        if let ObjectData::Deployment(d) = &store.get(&key).unwrap().data {
            assert_eq!(d.ready_replicas, 2);
        }
        // Scale down.
        store
            .update_with(&key, 50, |o| {
                if let ObjectData::Deployment(d) = &mut o.data {
                    d.replicas = 0;
                }
            })
            .unwrap();
        converge(&mut store, PlatformBugs::none());
        assert_eq!(store.list(&Kind::Pod, "ns").len(), 0);
    }

    #[test]
    fn services_track_ready_endpoints() {
        let mut store = ObjectStore::new();
        let svc = crate::objects::Service {
            selector: LabelSelector::match_labels([("app", "zk")]),
            ports: vec![2181],
            ..crate::objects::Service::default()
        };
        let skey = store
            .create(
                ObjectMeta::named("ns", "zk-svc"),
                ObjectData::Service(svc),
                0,
            )
            .unwrap();
        store
            .create(
                ObjectMeta::named("ns", "zk-0").with_label("app", "zk"),
                ObjectData::Pod(crate::objects::Pod::default()),
                0,
            )
            .unwrap();
        reconcile_services(&mut store, 1);
        if let ObjectData::Service(s) = &store.get(&skey).unwrap().data {
            assert!(s.endpoints.is_empty(), "pending pod is not an endpoint");
        }
        mark_all_running(&mut store, 2);
        reconcile_services(&mut store, 3);
        if let ObjectData::Service(s) = &store.get(&skey).unwrap().data {
            assert_eq!(s.endpoints, vec!["zk-0".to_string()]);
        }
    }
}
