//! Pod scheduling-relevant resource types: compute requirements, affinity,
//! taints/tolerations, and security contexts.

use std::collections::BTreeMap;

use crdspec::Value;

use crate::quantity::Quantity;

/// Compute resource requests and limits for a container.
///
/// # Examples
///
/// ```
/// use simkube::ResourceRequirements;
///
/// let r = ResourceRequirements::new()
///     .request("cpu", "250m")
///     .limit("memory", "512Mi");
/// assert!(r.validate().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResourceRequirements {
    /// Minimum resources the scheduler must reserve.
    pub requests: BTreeMap<String, Quantity>,
    /// Maximum resources the container may consume.
    pub limits: BTreeMap<String, Quantity>,
}

impl ResourceRequirements {
    /// Creates empty requirements.
    pub fn new() -> ResourceRequirements {
        ResourceRequirements::default()
    }

    /// Adds a request (builder style).
    ///
    /// # Panics
    ///
    /// Panics when `quantity` is not parseable; requirements built in code
    /// use literals.
    pub fn request(mut self, resource: &str, quantity: &str) -> ResourceRequirements {
        self.requests
            .insert(resource.to_string(), quantity.parse().expect("quantity"));
        self
    }

    /// Adds a limit (builder style).
    ///
    /// # Panics
    ///
    /// Panics when `quantity` is not parseable.
    pub fn limit(mut self, resource: &str, quantity: &str) -> ResourceRequirements {
        self.limits
            .insert(resource.to_string(), quantity.parse().expect("quantity"));
        self
    }

    /// Validates internal consistency: no negative amounts, and every
    /// request must not exceed the matching limit.
    pub fn validate(&self) -> Vec<String> {
        let mut errors = Vec::new();
        for (name, q) in self.requests.iter().chain(self.limits.iter()) {
            if q.is_negative() {
                errors.push(format!("resource {name} is negative"));
            }
        }
        for (name, req) in &self.requests {
            if let Some(lim) = self.limits.get(name) {
                if req > lim {
                    errors.push(format!("request for {name} exceeds limit"));
                }
            }
        }
        errors
    }

    /// Returns the effective request for `resource` (falling back to the
    /// limit, then zero), as the scheduler accounts it.
    pub fn effective_request(&self, resource: &str) -> Quantity {
        self.requests
            .get(resource)
            .or_else(|| self.limits.get(resource))
            .copied()
            .unwrap_or_else(Quantity::zero)
    }

    /// Renders as a [`Value`].
    pub fn to_value(&self) -> Value {
        let render = |m: &BTreeMap<String, Quantity>| {
            Value::Object(
                m.iter()
                    .map(|(k, q)| (k.clone(), Value::from(q.to_string())))
                    .collect(),
            )
        };
        let mut out = Value::empty_object();
        if !self.requests.is_empty() {
            out.as_object_mut()
                .expect("object")
                .insert("requests".to_string(), render(&self.requests));
        }
        if !self.limits.is_empty() {
            out.as_object_mut()
                .expect("object")
                .insert("limits".to_string(), render(&self.limits));
        }
        out
    }
}

/// One node-affinity requirement: the node must carry `key=value`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeAffinityTerm {
    /// Node label key.
    pub key: String,
    /// Required node label value.
    pub value: String,
}

/// One pod-(anti-)affinity requirement against other pods' labels within a
/// topology domain (we model a single `kubernetes.io/hostname` topology).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PodAffinityTerm {
    /// Pod label key to match.
    pub key: String,
    /// Pod label value to match.
    pub value: String,
}

/// Scheduling affinity rules.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Affinity {
    /// Required node label matches.
    pub node_required: Vec<NodeAffinityTerm>,
    /// Pods we must be co-located with (same node).
    pub pod_affinity: Vec<PodAffinityTerm>,
    /// Pods we must not share a node with.
    pub pod_anti_affinity: Vec<PodAffinityTerm>,
}

impl Affinity {
    /// Returns `true` when no rules are present.
    pub fn is_empty(&self) -> bool {
        self.node_required.is_empty()
            && self.pod_affinity.is_empty()
            && self.pod_anti_affinity.is_empty()
    }

    /// Renders as a [`Value`].
    pub fn to_value(&self) -> Value {
        let term =
            |k: &str, v: &str| Value::object([("key", Value::from(k)), ("value", Value::from(v))]);
        Value::object([
            (
                "nodeRequired",
                Value::array(self.node_required.iter().map(|t| term(&t.key, &t.value))),
            ),
            (
                "podAffinity",
                Value::array(self.pod_affinity.iter().map(|t| term(&t.key, &t.value))),
            ),
            (
                "podAntiAffinity",
                Value::array(
                    self.pod_anti_affinity
                        .iter()
                        .map(|t| term(&t.key, &t.value)),
                ),
            ),
        ])
    }
}

/// The effect of a node taint on pods that do not tolerate it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaintEffect {
    /// New pods are not scheduled onto the node.
    NoSchedule,
    /// Scheduling is discouraged (modelled as NoSchedule for determinism).
    PreferNoSchedule,
    /// Running pods are evicted as well.
    NoExecute,
}

/// A node taint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Taint {
    /// Taint key.
    pub key: String,
    /// Taint value.
    pub value: String,
    /// Scheduling effect.
    pub effect: TaintEffect,
}

/// How a toleration matches a taint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TolerationOperator {
    /// Key and value must both match.
    Equal,
    /// Any taint with the key is tolerated.
    Exists,
}

/// A pod's tolerance of a node taint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Toleration {
    /// Taint key to tolerate (empty tolerates everything with `Exists`).
    pub key: String,
    /// Value to match under [`TolerationOperator::Equal`].
    pub value: String,
    /// Matching operator.
    pub operator: TolerationOperator,
}

impl Toleration {
    /// Returns `true` when this toleration covers `taint`.
    pub fn tolerates(&self, taint: &Taint) -> bool {
        match self.operator {
            TolerationOperator::Exists => self.key.is_empty() || self.key == taint.key,
            TolerationOperator::Equal => self.key == taint.key && self.value == taint.value,
        }
    }
}

/// Pod or container security context (the subset operators configure).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SecurityContext {
    /// Unix user id to run as.
    pub run_as_user: Option<i64>,
    /// Require a non-root user.
    pub run_as_non_root: bool,
    /// Mount the root filesystem read-only.
    pub read_only_root_filesystem: bool,
    /// Filesystem group for mounted volumes.
    pub fs_group: Option<i64>,
}

impl SecurityContext {
    /// Validates the context, returning the reasons a pod with this context
    /// would be rejected at admission or fail to start.
    pub fn validate(&self) -> Vec<String> {
        let mut errors = Vec::new();
        if let Some(uid) = self.run_as_user {
            if uid < 0 {
                errors.push(format!("runAsUser {uid} is negative"));
            }
            if self.run_as_non_root && uid == 0 {
                errors.push("runAsNonRoot is set but runAsUser is 0".to_string());
            }
        }
        if let Some(gid) = self.fs_group {
            if gid < 0 {
                errors.push(format!("fsGroup {gid} is negative"));
            }
        }
        errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requirements_validate_bounds() {
        let ok = ResourceRequirements::new()
            .request("cpu", "250m")
            .limit("cpu", "1");
        assert!(ok.validate().is_empty());
        let bad = ResourceRequirements::new()
            .request("cpu", "2")
            .limit("cpu", "1");
        assert_eq!(bad.validate().len(), 1);
        let neg = ResourceRequirements::new().request("memory", "-1Gi");
        assert_eq!(neg.validate().len(), 1);
    }

    #[test]
    fn effective_request_falls_back_to_limit() {
        let r = ResourceRequirements::new().limit("memory", "512Mi");
        assert_eq!(r.effective_request("memory"), "512Mi".parse().unwrap());
        assert_eq!(r.effective_request("cpu"), Quantity::zero());
    }

    #[test]
    fn tolerations_match_taints() {
        let taint = Taint {
            key: "dedicated".to_string(),
            value: "db".to_string(),
            effect: TaintEffect::NoSchedule,
        };
        let equal = Toleration {
            key: "dedicated".to_string(),
            value: "db".to_string(),
            operator: TolerationOperator::Equal,
        };
        let wrong_value = Toleration {
            value: "web".to_string(),
            ..equal.clone()
        };
        let exists = Toleration {
            key: "dedicated".to_string(),
            value: String::new(),
            operator: TolerationOperator::Exists,
        };
        let wildcard = Toleration {
            key: String::new(),
            value: String::new(),
            operator: TolerationOperator::Exists,
        };
        assert!(equal.tolerates(&taint));
        assert!(!wrong_value.tolerates(&taint));
        assert!(exists.tolerates(&taint));
        assert!(wildcard.tolerates(&taint));
    }

    #[test]
    fn security_context_validation() {
        let ok = SecurityContext {
            run_as_user: Some(1000),
            run_as_non_root: true,
            ..SecurityContext::default()
        };
        assert!(ok.validate().is_empty());
        let root_conflict = SecurityContext {
            run_as_user: Some(0),
            run_as_non_root: true,
            ..SecurityContext::default()
        };
        assert_eq!(root_conflict.validate().len(), 1);
        let negative = SecurityContext {
            run_as_user: Some(-5),
            fs_group: Some(-1),
            ..SecurityContext::default()
        };
        assert_eq!(negative.validate().len(), 2);
    }

    #[test]
    fn to_value_renders_quantities_canonically() {
        let r = ResourceRequirements::new().request("memory", "1024Mi");
        let v = r.to_value();
        assert_eq!(
            v.get_path(&"requests.memory".parse().unwrap()),
            Some(&Value::from("1Gi"))
        );
    }
}
