//! A simulated Kubernetes control plane for the Acto reproduction.
//!
//! The paper runs operators against virtualized Kubernetes clusters
//! (Kind/Minikube/K3d). This crate substitutes a deterministic, in-process
//! control plane that preserves the behaviours Acto observes:
//!
//! - Uniform, interpretable **state objects** with `metadata`/`spec`/`status`
//!   sections, resource versions, and owner references ([`objects`],
//!   [`store`]).
//! - An **API server** with validation, optimistic-concurrency conflicts, and
//!   admission webhooks ([`api`]).
//! - A **scheduler** honouring resources, node selectors, affinity rules, and
//!   taints/tolerations ([`scheduler`]).
//! - Built-in **controllers** for stateful sets, deployments, services,
//!   disruption budgets, and owner-reference garbage collection
//!   ([`controllers`]).
//! - A **simulated clock** and a discrete event loop with convergence
//!   detection matching Acto's reset-timer approach ([`cluster`]).
//! - Six injectable **platform bugs** mirroring the Kubernetes/Go-runtime
//!   bugs the paper reports ([`platform`]).
//! - Deterministic, seed-driven **fault injection** — node crashes, pod
//!   kills/evictions, write conflicts, watch blackouts, transient reconcile
//!   errors — scheduled from explicit plans ([`faults`]).

pub mod api;
pub mod cluster;
pub mod controllers;
pub mod faults;
pub mod meta;
pub mod objects;
pub mod platform;
pub mod pmap;
pub mod quantity;
pub mod resources;
pub mod scheduler;
pub mod store;

pub use api::{ApiError, ApiServer};
pub use cluster::{
    checkpoint_forks, engine_counters, set_ticked_engine, ticked_engine, ClusterCheckpoint,
    ClusterConfig, ClusterFingerprint, NodeTopology, SimCluster, StepEngine, BACKGROUND_NAMESPACE,
};
pub use controllers::ControllerCursors;
pub use faults::{
    Fault, FaultEvent, FaultInjector, FaultPlan, FaultProfile, SplitMix64, TimedFault,
};
pub use meta::{LabelSelector, ObjectMeta, OwnerReference};
pub use objects::{
    ConfigMap, Container, Deployment, Ingress, Kind, Node, ObjectData, Pdb, PersistentVolumeClaim,
    Pod, PodPhase, Secret, Service, StatefulSet, StoredObject,
};
pub use platform::PlatformBugs;
pub use quantity::{Quantity, QuantityError};
pub use resources::{
    Affinity, NodeAffinityTerm, PodAffinityTerm, ResourceRequirements, SecurityContext, Taint,
    TaintEffect, Toleration, TolerationOperator,
};
pub use store::{ObjKey, ObjectStore, WatchEvent, WatchEventKind};
