//! The interface between system models and the simulated cluster.

use std::collections::BTreeMap;

use simkube::objects::{Kind, ObjectData, PodPhase};
use simkube::store::ObjKey;
use simkube::SimCluster;

/// System-level health, the signal Acto's error oracle reads from runtime
/// status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Health {
    /// The system serves requests normally.
    Healthy,
    /// The system serves requests with reduced guarantees.
    Degraded(String),
    /// The system is unavailable.
    Down(String),
}

impl Health {
    /// Returns `true` for [`Health::Healthy`].
    pub fn is_healthy(&self) -> bool {
        matches!(self, Health::Healthy)
    }

    /// The human-readable reason for non-healthy states.
    pub fn reason(&self) -> Option<&str> {
        match self {
            Health::Healthy => None,
            Health::Degraded(r) | Health::Down(r) => Some(r),
        }
    }
}

/// A model's view of one pod.
#[derive(Debug, Clone, PartialEq)]
pub struct PodView {
    /// Pod name.
    pub name: String,
    /// Lifecycle phase.
    pub phase: PodPhase,
    /// Readiness.
    pub ready: bool,
    /// Failure reason, when not running.
    pub reason: String,
    /// Pod labels.
    pub labels: BTreeMap<String, String>,
    /// Pod annotations.
    pub annotations: BTreeMap<String, String>,
    /// First container's image.
    pub image: String,
    /// First container's configuration hash.
    pub config_hash: String,
}

/// A managed system's window into the cluster, scoped to one application
/// instance.
///
/// Conventions (followed by every operator in this repository):
/// - pods of the instance carry the label `app={instance}`;
/// - component pods additionally carry `component=<name>`;
/// - the instance's configuration lives in the `{instance}-config` config
///   map.
pub struct SystemView<'a> {
    cluster: &'a mut SimCluster,
    /// Namespace of the instance.
    pub namespace: String,
    /// Instance (application) name.
    pub instance: String,
}

impl<'a> SystemView<'a> {
    /// Creates a view of `instance` in `namespace`.
    pub fn new(cluster: &'a mut SimCluster, namespace: &str, instance: &str) -> SystemView<'a> {
        SystemView {
            cluster,
            namespace: namespace.to_string(),
            instance: instance.to_string(),
        }
    }

    /// All pods of the instance (label `app={instance}`), sorted by name.
    pub fn pods(&self) -> Vec<PodView> {
        self.pods_with("app", &self.instance)
    }

    /// Pods of one component (`component={component}`), sorted by name.
    pub fn component_pods(&self, component: &str) -> Vec<PodView> {
        self.pods()
            .into_iter()
            .filter(|p| p.labels.get("component").map(String::as_str) == Some(component))
            .collect()
    }

    /// Pods matching an arbitrary label.
    pub fn pods_with(&self, key: &str, value: &str) -> Vec<PodView> {
        self.cluster
            .api()
            .store()
            .list(&Kind::Pod, &self.namespace)
            .iter()
            .filter(|o| o.meta.labels.get(key).map(String::as_str) == Some(value))
            .filter_map(|o| match &o.data {
                ObjectData::Pod(p) => Some(PodView {
                    name: o.meta.name.clone(),
                    phase: p.phase,
                    ready: p.ready,
                    reason: p.reason.clone(),
                    labels: o.meta.labels.clone(),
                    annotations: o.meta.annotations.clone(),
                    image: p
                        .containers
                        .first()
                        .map(|c| c.image.clone())
                        .unwrap_or_default(),
                    config_hash: p
                        .containers
                        .first()
                        .map(|c| c.config_hash.clone())
                        .unwrap_or_default(),
                }),
                _ => None,
            })
            .collect()
    }

    /// Reads the instance's config map (`{instance}-config`).
    pub fn config(&self) -> BTreeMap<String, String> {
        let key = ObjKey::new(
            Kind::ConfigMap,
            &self.namespace,
            &format!("{}-config", self.instance),
        );
        match self.cluster.api().get(&key) {
            Some(obj) => match &obj.data {
                ObjectData::ConfigMap(c) => c.data.clone(),
                _ => BTreeMap::new(),
            },
            None => BTreeMap::new(),
        }
    }

    /// Reads one config entry.
    pub fn config_value(&self, key: &str) -> Option<String> {
        self.config().get(key).cloned()
    }

    /// Marks a pod as crash-looping for a system-semantic reason. The
    /// condition is scoped to this view's namespace.
    pub fn crash_pod(&mut self, pod: &str, reason: &str) {
        let namespace = self.namespace.clone();
        self.cluster.set_crashing(&namespace, pod, reason);
    }

    /// Clears a crash-loop condition.
    pub fn clear_crash(&mut self, pod: &str) {
        let namespace = self.namespace.clone();
        self.cluster.clear_crash(&namespace, pod);
    }

    /// Runs a closure over the underlying object store (read-only). Models
    /// use this for lookups beyond the pod/config conventions.
    pub fn with_store<R>(&self, f: impl FnOnce(&simkube::ObjectStore) -> R) -> R {
        f(self.cluster.api().store())
    }

    /// Generation of a secret object, if present (used by TLS-rotation
    /// models).
    pub fn secret_generation(&self, key: &ObjKey) -> Option<u64> {
        self.with_store(|store| {
            store.get(key).and_then(|obj| match &obj.data {
                ObjectData::Secret(_) => Some(obj.meta.generation),
                _ => None,
            })
        })
    }

    /// Number of ready pods among `pods`.
    pub fn ready_count(pods: &[PodView]) -> usize {
        pods.iter()
            .filter(|p| p.phase == PodPhase::Running && p.ready)
            .count()
    }

    /// Quorum check: more than half of `total` members are ready.
    pub fn has_quorum(ready: usize, total: usize) -> bool {
        total > 0 && ready * 2 > total
    }
}

/// A managed-system behavioural model.
pub trait SystemModel: Send {
    /// The system's name (matches the operator registry).
    fn name(&self) -> &'static str;

    /// Advances the model one tick: reads the cluster, injects semantic
    /// failures, and reports system health.
    fn tick(&mut self, view: &mut SystemView<'_>) -> Health;
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkube::meta::ObjectMeta;
    use simkube::objects::{ConfigMap, Pod};
    use simkube::{ClusterConfig, PlatformBugs};

    fn cluster() -> SimCluster {
        SimCluster::new(ClusterConfig {
            bugs: PlatformBugs::none(),
            ..ClusterConfig::default()
        })
    }

    #[test]
    fn pods_filtered_by_instance_label() {
        let mut c = cluster();
        for (name, app) in [("zk-0", "zk"), ("zk-1", "zk"), ("other-0", "other")] {
            c.api_mut()
                .create_object(
                    ObjectMeta::named("ns", name).with_label("app", app),
                    ObjectData::Pod(Pod::default()),
                    0,
                )
                .unwrap();
        }
        let view = SystemView::new(&mut c, "ns", "zk");
        assert_eq!(view.pods().len(), 2);
        assert_eq!(view.pods_with("app", "other").len(), 1);
    }

    #[test]
    fn config_map_lookup() {
        let mut c = cluster();
        let mut data = BTreeMap::new();
        data.insert("a".to_string(), "1".to_string());
        c.api_mut()
            .create_object(
                ObjectMeta::named("ns", "zk-config"),
                ObjectData::ConfigMap(ConfigMap { data }),
                0,
            )
            .unwrap();
        let view = SystemView::new(&mut c, "ns", "zk");
        assert_eq!(view.config_value("a").as_deref(), Some("1"));
        assert_eq!(view.config_value("b"), None);
    }

    #[test]
    fn quorum_math() {
        assert!(SystemView::has_quorum(2, 3));
        assert!(!SystemView::has_quorum(1, 3));
        assert!(!SystemView::has_quorum(2, 4));
        assert!(SystemView::has_quorum(3, 4));
        assert!(!SystemView::has_quorum(0, 0));
    }

    #[test]
    fn health_accessors() {
        assert!(Health::Healthy.is_healthy());
        assert_eq!(Health::Healthy.reason(), None);
        assert_eq!(
            Health::Down("quorum lost".to_string()).reason(),
            Some("quorum lost")
        );
        assert!(!Health::Degraded("x".to_string()).is_healthy());
    }
}
