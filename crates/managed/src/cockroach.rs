//! CockroachDB consensus model.

use simkube::objects::Kind;
use simkube::store::ObjKey;

use crate::view::{Health, SystemModel, SystemView};

/// CockroachDB: a Raft-consensus SQL cluster with TLS between nodes.
///
/// Health requires a Raft majority. Nodes keep serving with the
/// certificates they started with: when the `{instance}-tls` secret is
/// rotated but `tlsSecretVersion` in the running configuration still
/// references the old generation, the system is degraded on outdated
/// secrets — the security bug the paper reports against CockroachOp.
#[derive(Debug, Default)]
pub struct CockroachModel;

impl SystemModel for CockroachModel {
    fn name(&self) -> &'static str {
        "cockroachdb"
    }

    fn tick(&mut self, view: &mut SystemView<'_>) -> Health {
        let pods = view.pods();
        if pods.is_empty() {
            return Health::Down("no cockroach nodes".to_string());
        }
        // Binding a privileged port fails: processes run unprivileged.
        if let Some(port) = view
            .config_value("sqlPort")
            .and_then(|s| s.parse::<i64>().ok())
        {
            if port < 1024 {
                for pod in &pods {
                    view.crash_pod(&pod.name, "cannot bind privileged port");
                }
                return Health::Down(format!("nodes crash binding privileged SQL port {port}"));
            }
            for pod in &pods {
                view.clear_crash(&pod.name);
            }
        }
        let ready = pods.iter().filter(|p| p.ready).count();
        if !SystemView::has_quorum(ready, pods.len()) {
            return Health::Down(format!(
                "raft majority lost: {ready}/{} nodes ready",
                pods.len()
            ));
        }
        // Compare the certificate serial the nodes run with against the
        // serial of the secret currently served.
        let secret_key = ObjKey::new(
            Kind::Secret,
            &view.namespace,
            &format!("{}-tls", view.instance),
        );
        let actual_serial = view.with_store(|store| {
            store.get(&secret_key).and_then(|obj| match &obj.data {
                simkube::objects::ObjectData::Secret(s) => {
                    s.data.get("serial").and_then(|v| v.parse::<u64>().ok())
                }
                _ => None,
            })
        });
        if let (Some(running), Some(actual)) = (
            view.config_value("tlsSecretVersion")
                .and_then(|s| s.parse::<u64>().ok()),
            actual_serial,
        ) {
            if running < actual {
                return Health::Degraded("nodes serving with outdated TLS secrets".to_string());
            }
        }
        if ready < pods.len() {
            return Health::Degraded(format!("{ready}/{} nodes ready", pods.len()));
        }
        Health::Healthy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::*;
    use simkube::meta::ObjectMeta;
    use simkube::objects::{ObjectData, Secret};

    #[test]
    fn majority_governs_health() {
        let mut c = test_cluster();
        add_running_pods(&mut c, "ns", "crdb", 3);
        let mut model = CockroachModel;
        let mut view = SystemView::new(&mut c, "ns", "crdb");
        assert_eq!(model.tick(&mut view), Health::Healthy);
        fail_pod(&mut c, "ns", "crdb-1");
        fail_pod(&mut c, "ns", "crdb-2");
        let mut view = SystemView::new(&mut c, "ns", "crdb");
        assert!(matches!(model.tick(&mut view), Health::Down(_)));
    }

    #[test]
    fn outdated_tls_secret_degrades() {
        let mut c = test_cluster();
        add_running_pods(&mut c, "ns", "crdb", 3);
        // Secret serial 1; nodes claim they run with serial 1.
        let mut secret = Secret::default();
        secret.data.insert("serial".to_string(), "1".to_string());
        c.api_mut()
            .create_object(
                ObjectMeta::named("ns", "crdb-tls"),
                ObjectData::Secret(secret),
                0,
            )
            .unwrap();
        set_config(&mut c, "ns", "crdb", &[("tlsSecretVersion", "1")]);
        let mut model = CockroachModel;
        let mut view = SystemView::new(&mut c, "ns", "crdb");
        assert_eq!(model.tick(&mut view), Health::Healthy);
        // Rotate the secret to serial 2 without updating the running
        // configuration.
        let key = ObjKey::new(Kind::Secret, "ns", "crdb-tls");
        c.api_mut()
            .store_mut()
            .update_with(&key, 1, |o| {
                if let ObjectData::Secret(s) = &mut o.data {
                    s.data.insert("serial".to_string(), "2".to_string());
                }
            })
            .unwrap();
        let mut view = SystemView::new(&mut c, "ns", "crdb");
        match model.tick(&mut view) {
            Health::Degraded(reason) => assert!(reason.contains("outdated")),
            other => panic!("expected degraded, got {other:?}"),
        }
    }
}
