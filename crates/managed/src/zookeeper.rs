//! ZooKeeper ensemble model: quorum and split-brain detection.

use crate::view::{Health, SystemModel, SystemView};

/// ZooKeeper: a leader-based ensemble requiring a strict majority.
///
/// A reconfiguration that lets two pods claim leadership simultaneously
/// (annotation `zk-role=leader`) is a split brain and takes the system
/// down — the constraint that makes safe restart ordering hard (paper
/// §6.4).
#[derive(Debug, Default)]
pub struct ZooKeeperModel;

impl SystemModel for ZooKeeperModel {
    fn name(&self) -> &'static str {
        "zookeeper"
    }

    fn tick(&mut self, view: &mut SystemView<'_>) -> Health {
        let pods = view.pods();
        if pods.is_empty() {
            return Health::Down("no ensemble members".to_string());
        }
        let leaders = pods
            .iter()
            .filter(|p| p.annotations.get("zk-role").map(String::as_str) == Some("leader"))
            .count();
        if leaders > 1 {
            return Health::Down("split brain: multiple leaders".to_string());
        }
        let ensemble_size = view
            .config_value("ensembleSize")
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or(pods.len());
        // Binding a privileged port fails: the process runs unprivileged.
        if let Some(port) = view
            .config_value("clientPort")
            .and_then(|s| s.parse::<i64>().ok())
        {
            if port < 1024 {
                for pod in &pods {
                    view.crash_pod(&pod.name, "cannot bind privileged client port");
                }
                return Health::Down(format!("members crash binding privileged port {port}"));
            }
            for pod in &pods {
                view.clear_crash(&pod.name);
            }
        }
        // snapCount must be numeric; a bad value crashes members on load.
        if let Some(sc) = view.config_value("snapCount") {
            if sc.parse::<u64>().is_err() {
                for pod in &pods {
                    view.crash_pod(&pod.name, "invalid snapCount");
                }
                return Health::Down(format!("invalid snapCount {sc:?}"));
            }
            for pod in &pods {
                view.clear_crash(&pod.name);
            }
        }
        // A myid outside the ensemble range crashes that member.
        for pod in &pods {
            match view.config_value(&format!("myid.{}", pod.name)) {
                Some(id) if id.parse::<usize>().map_or(true, |i| i >= ensemble_size) => {
                    view.crash_pod(&pod.name, "myid out of ensemble range");
                }
                _ => {}
            }
        }
        let ready = SystemView::ready_count(&pods);
        if !SystemView::has_quorum(ready, ensemble_size) {
            return Health::Down(format!("quorum lost: {ready}/{ensemble_size} ready"));
        }
        if ready < ensemble_size {
            return Health::Degraded(format!("{ready}/{ensemble_size} members ready"));
        }
        Health::Healthy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::*;

    #[test]
    fn quorum_governs_health() {
        let mut c = test_cluster();
        add_running_pods(&mut c, "ns", "zk", 3);
        let mut model = ZooKeeperModel;
        let mut view = SystemView::new(&mut c, "ns", "zk");
        assert_eq!(model.tick(&mut view), Health::Healthy);
        // One member failing degrades; two lose quorum.
        fail_pod(&mut c, "ns", "zk-2");
        let mut view = SystemView::new(&mut c, "ns", "zk");
        assert!(matches!(model.tick(&mut view), Health::Degraded(_)));
        fail_pod(&mut c, "ns", "zk-1");
        let mut view = SystemView::new(&mut c, "ns", "zk");
        assert!(matches!(model.tick(&mut view), Health::Down(_)));
    }

    #[test]
    fn split_brain_is_down() {
        let mut c = test_cluster();
        add_running_pods(&mut c, "ns", "zk", 3);
        annotate_pod(&mut c, "ns", "zk-0", "zk-role", "leader");
        annotate_pod(&mut c, "ns", "zk-1", "zk-role", "leader");
        let mut model = ZooKeeperModel;
        let mut view = SystemView::new(&mut c, "ns", "zk");
        match model.tick(&mut view) {
            Health::Down(reason) => assert!(reason.contains("split brain")),
            other => panic!("expected down, got {other:?}"),
        }
    }

    #[test]
    fn ensemble_size_from_config_overrides_pod_count() {
        let mut c = test_cluster();
        add_running_pods(&mut c, "ns", "zk", 2);
        set_config(&mut c, "ns", "zk", &[("ensembleSize", "5")]);
        let mut model = ZooKeeperModel;
        let mut view = SystemView::new(&mut c, "ns", "zk");
        // 2 of 5 configured members is no quorum.
        assert!(matches!(model.tick(&mut view), Health::Down(_)));
    }

    #[test]
    fn bad_myid_crashes_member() {
        let mut c = test_cluster();
        add_running_pods(&mut c, "ns", "zk", 3);
        set_config(&mut c, "ns", "zk", &[("myid.zk-1", "9")]);
        let mut model = ZooKeeperModel;
        let mut view = SystemView::new(&mut c, "ns", "zk");
        model.tick(&mut view);
        assert!(c
            .crashing()
            .any(|((ns, pod), _)| ns == "ns" && pod == "zk-1"));
    }

    #[test]
    fn empty_ensemble_is_down() {
        let mut c = test_cluster();
        let mut model = ZooKeeperModel;
        let mut view = SystemView::new(&mut c, "ns", "zk");
        assert!(matches!(model.tick(&mut view), Health::Down(_)));
    }
}
