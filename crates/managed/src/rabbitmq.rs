//! RabbitMQ broker-cluster model.

use crate::view::{Health, SystemModel, SystemView};

/// RabbitMQ: a broker cluster whose membership is the set of ready pods.
///
/// The system serves with one broker but loses queue mirroring below two —
/// the membership-list semantics the single behaviour assertion in
/// RabbitMQOp's manual tests checks (paper §3, Finding 4). The storage
/// backend (`backend` config) must be one of the supported engines;
/// migrating to an unknown backend crashes brokers on restart.
#[derive(Debug, Default)]
pub struct RabbitMqModel;

/// Supported storage backends.
pub const VALID_BACKENDS: &[&str] = &["classic", "quorum", "stream"];

impl SystemModel for RabbitMqModel {
    fn name(&self) -> &'static str {
        "rabbitmq"
    }

    fn tick(&mut self, view: &mut SystemView<'_>) -> Health {
        let pods = view.pods();
        if pods.is_empty() {
            return Health::Down("no brokers".to_string());
        }
        if let Some(backend) = view.config_value("backend") {
            if !VALID_BACKENDS.contains(&backend.as_str()) {
                for pod in &pods {
                    view.crash_pod(&pod.name, "unknown queue backend");
                }
                return Health::Down(format!("unknown queue backend {backend:?}"));
            }
            for pod in &pods {
                view.clear_crash(&pod.name);
            }
        }
        // Binding a privileged port fails: processes run unprivileged.
        if let Some(port) = view
            .config_value("amqpPort")
            .and_then(|s| s.parse::<i64>().ok())
        {
            if port < 1024 {
                for pod in &pods {
                    view.crash_pod(&pod.name, "cannot bind privileged port");
                }
                return Health::Down(format!("brokers crash binding privileged AMQP port {port}"));
            }
            for pod in &pods {
                view.clear_crash(&pod.name);
            }
        }
        let ready = SystemView::ready_count(&pods);
        if ready == 0 {
            return Health::Down("no broker ready".to_string());
        }
        // Members must run the configuration currently declared; a stale
        // fingerprint means a config change never rolled the pods.
        {
            let mut rendered = String::new();
            for (k, v) in view.config() {
                rendered.push_str(&k);
                rendered.push('\0');
                rendered.push_str(&v);
                rendered.push('\0');
            }
            let expected = simkube::objects::fnv_fingerprint(&rendered);
            if pods
                .iter()
                .any(|p| !p.config_hash.is_empty() && p.config_hash != expected)
            {
                return Health::Degraded("members running stale configuration".to_string());
            }
        }

        let mirroring = view.config_value("mirroring").as_deref() == Some("true");
        if mirroring && ready < 2 {
            return Health::Degraded("queue mirroring requires at least two brokers".to_string());
        }
        if ready < pods.len() {
            return Health::Degraded(format!("{ready}/{} brokers ready", pods.len()));
        }
        Health::Healthy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::*;

    #[test]
    fn cluster_health_follows_membership() {
        let mut c = test_cluster();
        add_running_pods(&mut c, "ns", "rmq", 3);
        let mut model = RabbitMqModel;
        let mut view = SystemView::new(&mut c, "ns", "rmq");
        assert_eq!(model.tick(&mut view), Health::Healthy);
        fail_pod(&mut c, "ns", "rmq-0");
        let mut view = SystemView::new(&mut c, "ns", "rmq");
        assert!(matches!(model.tick(&mut view), Health::Degraded(_)));
    }

    #[test]
    fn unknown_backend_crashes_brokers() {
        let mut c = test_cluster();
        add_running_pods(&mut c, "ns", "rmq", 2);
        set_config(&mut c, "ns", "rmq", &[("backend", "etcd")]);
        let mut model = RabbitMqModel;
        let mut view = SystemView::new(&mut c, "ns", "rmq");
        assert!(matches!(model.tick(&mut view), Health::Down(_)));
        assert_eq!(c.crashing().count(), 2);
    }

    #[test]
    fn stale_configuration_degrades() {
        let mut c = test_cluster();
        add_running_pods(&mut c, "ns", "rmq", 2);
        set_config(&mut c, "ns", "rmq", &[("backend", "classic")]);
        // Stamp the pods with a hash that cannot match the config map.
        for name in ["rmq-0", "rmq-1"] {
            let key = simkube::store::ObjKey::new(simkube::objects::Kind::Pod, "ns", name);
            c.api_mut()
                .store_mut()
                .update_with(&key, 0, |o| {
                    if let simkube::objects::ObjectData::Pod(p) = &mut o.data {
                        p.containers[0].config_hash = "stale".to_string();
                    }
                })
                .unwrap();
        }
        let mut model = RabbitMqModel;
        let mut view = SystemView::new(&mut c, "ns", "rmq");
        match model.tick(&mut view) {
            Health::Degraded(reason) => assert!(reason.contains("stale")),
            other => panic!("expected degraded, got {other:?}"),
        }
    }

    #[test]
    fn privileged_amqp_port_crashes_brokers() {
        let mut c = test_cluster();
        add_running_pods(&mut c, "ns", "rmq", 2);
        set_config(&mut c, "ns", "rmq", &[("amqpPort", "80")]);
        let mut model = RabbitMqModel;
        let mut view = SystemView::new(&mut c, "ns", "rmq");
        assert!(matches!(model.tick(&mut view), Health::Down(_)));
        assert_eq!(c.crashing().count(), 2);
    }

    #[test]
    fn mirroring_needs_two_brokers() {
        let mut c = test_cluster();
        add_running_pods(&mut c, "ns", "rmq", 1);
        set_config(&mut c, "ns", "rmq", &[("mirroring", "true")]);
        let mut model = RabbitMqModel;
        let mut view = SystemView::new(&mut c, "ns", "rmq");
        match model.tick(&mut view) {
            Health::Degraded(reason) => assert!(reason.contains("mirroring")),
            other => panic!("expected degraded, got {other:?}"),
        }
    }
}
