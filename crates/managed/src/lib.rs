//! Behavioural models of the managed systems.
//!
//! The paper evaluates Acto on operators managing nine real cloud systems.
//! Acto's oracles observe those systems only through state objects (pod
//! phases, runtime status), so the reproduction substitutes each system
//! with a deterministic behavioural model that:
//!
//! 1. computes system-level **health** (quorum, primary election, component
//!    completeness) from the pods and configuration the operator created;
//! 2. injects **semantic failures** the real systems exhibit — e.g. TiDB
//!    replicas crash-looping when binlog is enabled without a pump cluster,
//!    or MongoDB going down on an invalid `featureCompatibilityVersion` —
//!    by marking pods as crash-looping in the cluster.
//!
//! Every model implements [`SystemModel`] and reads the cluster through a
//! [`SystemView`], which also carries the conventions operators follow
//! (instance-labelled pods, an `{instance}-config` config map).

pub mod cassandra;
pub mod cockroach;
pub mod knative;
pub mod mongodb;
pub mod rabbitmq;
pub mod redis;
pub mod testkit;
pub mod tidb;
pub mod view;
pub mod xtradb;
pub mod zookeeper;

pub use view::{Health, PodView, SystemModel, SystemView};

/// Instantiates the model for a managed-system name, as used by the
/// operator registry.
///
/// # Panics
///
/// Panics on an unknown system name; the set of systems is closed.
pub fn model_for(system: &str) -> Box<dyn SystemModel> {
    match system {
        "zookeeper" => Box::new(zookeeper::ZooKeeperModel),
        "redis" => Box::new(redis::RedisModel),
        "mongodb" => Box::new(mongodb::MongoDbModel),
        "cassandra" => Box::new(cassandra::CassandraModel),
        "cockroachdb" => Box::new(cockroach::CockroachModel),
        "tidb" => Box::new(tidb::TiDbModel),
        "rabbitmq" => Box::new(rabbitmq::RabbitMqModel),
        "xtradb" => Box::new(xtradb::XtraDbModel),
        "knative" => Box::new(knative::KnativeModel),
        other => panic!("unknown managed system {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_registry_covers_all_nine_systems() {
        for system in [
            "zookeeper",
            "redis",
            "mongodb",
            "cassandra",
            "cockroachdb",
            "tidb",
            "rabbitmq",
            "xtradb",
            "knative",
        ] {
            let model = model_for(system);
            assert_eq!(model.name(), system);
        }
    }

    #[test]
    #[should_panic(expected = "unknown managed system")]
    fn unknown_system_panics() {
        let _ = model_for("oracle-db");
    }
}
