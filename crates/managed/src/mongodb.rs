//! MongoDB replica-set model.

use crate::view::{Health, SystemModel, SystemView};

/// Versions the model accepts for `featureCompatibilityVersion`.
pub const VALID_FCV: &[&str] = &["4.4", "5.0", "6.0"];

/// Storage engines MongoDB members can start with.
pub const VALID_ENGINES: &[&str] = &["wiredTiger", "inMemory"];

/// MongoDB: a replica set with primary election, arbiters, and the
/// `featureCompatibilityVersion` semantics behind the paper's headline
/// OFC/MongoOp bug — an invalid FCV takes the whole system down and it
/// cannot recover until the value is corrected *and* members restart.
#[derive(Debug, Default)]
pub struct MongoDbModel;

impl SystemModel for MongoDbModel {
    fn name(&self) -> &'static str {
        "mongodb"
    }

    fn tick(&mut self, view: &mut SystemView<'_>) -> Health {
        let pods = view.pods();
        if pods.is_empty() {
            return Health::Down("no replica-set members".to_string());
        }
        if let Some(fcv) = view.config_value("featureCompatibilityVersion") {
            if !VALID_FCV.contains(&fcv.as_str()) {
                for pod in &pods {
                    view.crash_pod(&pod.name, "invalid featureCompatibilityVersion");
                }
                return Health::Down(format!("invalid featureCompatibilityVersion {fcv:?}"));
            }
            // Valid again: members may restart.
            for pod in &pods {
                view.clear_crash(&pod.name);
            }
        }
        if let Some(engine) = view.config_value("storageEngine") {
            if !VALID_ENGINES.contains(&engine.as_str()) {
                for pod in &pods {
                    view.crash_pod(&pod.name, "unknown storage engine");
                }
                return Health::Down(format!("unknown storage engine {engine:?}"));
            }
            for pod in &pods {
                view.clear_crash(&pod.name);
            }
        }
        // Members must run the configuration currently declared; a stale
        // fingerprint means a config change never rolled the pods.
        {
            let mut rendered = String::new();
            for (k, v) in view.config() {
                rendered.push_str(&k);
                rendered.push('\0');
                rendered.push_str(&v);
                rendered.push('\0');
            }
            let expected = simkube::objects::fnv_fingerprint(&rendered);
            if pods
                .iter()
                .any(|p| !p.config_hash.is_empty() && p.config_hash != expected)
            {
                return Health::Degraded("members running stale configuration".to_string());
            }
        }
        let arbiters = view
            .config_value("arbiters")
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or(0);
        let data_members: Vec<_> = pods
            .iter()
            .filter(|p| p.labels.get("component").map(String::as_str) != Some("arbiter"))
            .collect();
        if arbiters >= data_members.len() && !data_members.is_empty() {
            return Health::Degraded("arbiters outnumber data-bearing members".to_string());
        }
        let ready = pods.iter().filter(|p| p.ready).count();
        if !SystemView::has_quorum(ready, pods.len()) {
            return Health::Down(format!(
                "no primary electable: {ready}/{} voting members ready",
                pods.len()
            ));
        }
        if ready < pods.len() {
            return Health::Degraded(format!("{ready}/{} members ready", pods.len()));
        }
        Health::Healthy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::*;

    #[test]
    fn healthy_replica_set() {
        let mut c = test_cluster();
        add_running_pods(&mut c, "ns", "mongo", 3);
        set_config(
            &mut c,
            "ns",
            "mongo",
            &[("featureCompatibilityVersion", "6.0")],
        );
        let mut model = MongoDbModel;
        let mut view = SystemView::new(&mut c, "ns", "mongo");
        assert_eq!(model.tick(&mut view), Health::Healthy);
    }

    #[test]
    fn invalid_fcv_takes_system_down_and_recovers_on_fix() {
        let mut c = test_cluster();
        add_running_pods(&mut c, "ns", "mongo", 3);
        set_config(
            &mut c,
            "ns",
            "mongo",
            &[("featureCompatibilityVersion", "9.9")],
        );
        let mut model = MongoDbModel;
        let mut view = SystemView::new(&mut c, "ns", "mongo");
        assert!(matches!(model.tick(&mut view), Health::Down(_)));
        assert_eq!(c.crashing().count(), 3);
        // Correcting the value clears the crash condition.
        set_config(
            &mut c,
            "ns",
            "mongo",
            &[("featureCompatibilityVersion", "6.0")],
        );
        let mut view = SystemView::new(&mut c, "ns", "mongo");
        model.tick(&mut view);
        assert_eq!(c.crashing().count(), 0);
    }

    #[test]
    fn quorum_loss_prevents_primary() {
        let mut c = test_cluster();
        add_running_pods(&mut c, "ns", "mongo", 3);
        fail_pod(&mut c, "ns", "mongo-1");
        fail_pod(&mut c, "ns", "mongo-2");
        let mut model = MongoDbModel;
        let mut view = SystemView::new(&mut c, "ns", "mongo");
        assert!(matches!(model.tick(&mut view), Health::Down(_)));
    }

    #[test]
    fn too_many_arbiters_degrade() {
        let mut c = test_cluster();
        add_running_pods(&mut c, "ns", "mongo", 2);
        set_config(&mut c, "ns", "mongo", &[("arbiters", "2")]);
        let mut model = MongoDbModel;
        let mut view = SystemView::new(&mut c, "ns", "mongo");
        assert!(matches!(model.tick(&mut view), Health::Degraded(_)));
    }
}
