//! Cassandra ring model.

use crate::view::{Health, SystemModel, SystemView};

/// Cassandra: a peer-to-peer ring bootstrapped through seed nodes.
///
/// Without a ready seed node, new members cannot join and a multi-node
/// cluster degrades — the seed-service labelling semantics behind the
/// CassOp label bugs the paper reports.
#[derive(Debug, Default)]
pub struct CassandraModel;

impl SystemModel for CassandraModel {
    fn name(&self) -> &'static str {
        "cassandra"
    }

    fn tick(&mut self, view: &mut SystemView<'_>) -> Health {
        let pods = view.pods();
        if pods.is_empty() {
            return Health::Down("no ring members".to_string());
        }
        if let Some(tokens) = view.config_value("num_tokens") {
            if tokens.parse::<u32>().map_or(true, |t| t == 0 || t > 4096) {
                for pod in &pods {
                    view.crash_pod(&pod.name, "invalid num_tokens");
                }
                return Health::Down("invalid num_tokens configuration".to_string());
            }
            for pod in &pods {
                view.clear_crash(&pod.name);
            }
        }
        // Binding a privileged port fails: processes run unprivileged.
        if let Some(port) = view
            .config_value("nativePort")
            .and_then(|s| s.parse::<i64>().ok())
        {
            if port < 1024 {
                for pod in &pods {
                    view.crash_pod(&pod.name, "cannot bind privileged port");
                }
                return Health::Down(format!(
                    "ring members crash binding privileged native port {port}"
                ));
            }
            for pod in &pods {
                view.clear_crash(&pod.name);
            }
        }
        let ready = pods.iter().filter(|p| p.ready).count();
        if ready == 0 {
            return Health::Down("no ring member ready".to_string());
        }
        let seeds_ready = pods
            .iter()
            .filter(|p| p.labels.get("seed").map(String::as_str) == Some("true") && p.ready)
            .count();
        if pods.len() > 1 && seeds_ready == 0 {
            return Health::Degraded("no seed node ready; new members cannot join".to_string());
        }
        if ready < pods.len() {
            return Health::Degraded(format!("{ready}/{} ring members ready", pods.len()));
        }
        Health::Healthy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::*;
    use simkube::objects::{Kind, ObjectData};
    use simkube::store::ObjKey;

    fn label_seed(c: &mut simkube::SimCluster, name: &str) {
        let key = ObjKey::new(Kind::Pod, "ns", name);
        c.api_mut()
            .store_mut()
            .update_with(&key, 0, |o| {
                o.meta.labels.insert("seed".to_string(), "true".to_string());
            })
            .unwrap();
        let _ = ObjectData::ConfigMap(Default::default());
    }

    #[test]
    fn ring_with_seed_is_healthy() {
        let mut c = test_cluster();
        add_running_pods(&mut c, "ns", "cass", 3);
        label_seed(&mut c, "cass-0");
        let mut model = CassandraModel;
        let mut view = SystemView::new(&mut c, "ns", "cass");
        assert_eq!(model.tick(&mut view), Health::Healthy);
    }

    #[test]
    fn missing_seed_degrades_multi_node_ring() {
        let mut c = test_cluster();
        add_running_pods(&mut c, "ns", "cass", 3);
        let mut model = CassandraModel;
        let mut view = SystemView::new(&mut c, "ns", "cass");
        match model.tick(&mut view) {
            Health::Degraded(reason) => assert!(reason.contains("seed")),
            other => panic!("expected degraded, got {other:?}"),
        }
    }

    #[test]
    fn single_node_needs_no_seed() {
        let mut c = test_cluster();
        add_running_pods(&mut c, "ns", "cass", 1);
        let mut model = CassandraModel;
        let mut view = SystemView::new(&mut c, "ns", "cass");
        assert_eq!(model.tick(&mut view), Health::Healthy);
    }

    #[test]
    fn invalid_num_tokens_crashes_ring() {
        let mut c = test_cluster();
        add_running_pods(&mut c, "ns", "cass", 2);
        set_config(&mut c, "ns", "cass", &[("num_tokens", "0")]);
        let mut model = CassandraModel;
        let mut view = SystemView::new(&mut c, "ns", "cass");
        assert!(matches!(model.tick(&mut view), Health::Down(_)));
        assert_eq!(c.crashing().count(), 2);
    }
}
