//! Shared test helpers for system-model and operator tests.

use std::collections::BTreeMap;

use simkube::meta::ObjectMeta;
use simkube::objects::{ConfigMap, Container, Kind, ObjectData, Pod, PodPhase};
use simkube::store::ObjKey;
use simkube::{ClusterConfig, PlatformBugs, SimCluster};

/// A small fixed cluster with no platform bugs.
pub fn test_cluster() -> SimCluster {
    SimCluster::new(ClusterConfig {
        bugs: PlatformBugs::none(),
        ..ClusterConfig::default()
    })
}

/// Creates `count` running, ready pods named `{app}-{i}` labelled
/// `app={app}`.
pub fn add_running_pods(cluster: &mut SimCluster, namespace: &str, app: &str, count: usize) {
    for i in 0..count {
        add_component_pod(cluster, namespace, app, &format!("{app}-{i}"), None);
    }
}

/// Creates one running, ready pod with an optional `component` label.
pub fn add_component_pod(
    cluster: &mut SimCluster,
    namespace: &str,
    app: &str,
    name: &str,
    component: Option<&str>,
) {
    let pod = Pod {
        containers: vec![Container {
            name: "main".to_string(),
            image: format!("{app}:1"),
            ..Container::default()
        }],
        phase: PodPhase::Running,
        ready: true,
        node_name: Some("node-0".to_string()),
        ..Pod::default()
    };
    let mut meta = ObjectMeta::named(namespace, name).with_label("app", app);
    if let Some(c) = component {
        meta = meta.with_label("component", c);
    }
    cluster
        .api_mut()
        .create_object(meta, ObjectData::Pod(pod), 0)
        .expect("pod creation");
}

/// Marks a pod failed and unready.
pub fn fail_pod(cluster: &mut SimCluster, namespace: &str, name: &str) {
    let key = ObjKey::new(Kind::Pod, namespace, name);
    let time = cluster.now();
    cluster
        .api_mut()
        .store_mut()
        .update_with(&key, time, |o| {
            if let ObjectData::Pod(p) = &mut o.data {
                p.phase = PodPhase::Failed;
                p.ready = false;
                p.reason = "Error".to_string();
            }
        })
        .expect("pod exists");
}

/// Adds an annotation to a pod.
pub fn annotate_pod(cluster: &mut SimCluster, namespace: &str, name: &str, key: &str, value: &str) {
    let obj_key = ObjKey::new(Kind::Pod, namespace, name);
    let time = cluster.now();
    cluster
        .api_mut()
        .store_mut()
        .update_with(&obj_key, time, |o| {
            o.meta
                .annotations
                .insert(key.to_string(), value.to_string());
        })
        .expect("pod exists");
}

/// Writes (upserting) the instance config map `{app}-config`.
pub fn set_config(cluster: &mut SimCluster, namespace: &str, app: &str, entries: &[(&str, &str)]) {
    let data: BTreeMap<String, String> = entries
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    let time = cluster.now();
    cluster
        .api_mut()
        .apply_object(
            ObjectMeta::named(namespace, &format!("{app}-config")),
            ObjectData::ConfigMap(ConfigMap { data }),
            time,
        )
        .expect("config map");
}
