//! Percona XtraDB (MySQL) cluster model.

use crate::view::{Health, SystemModel, SystemView};

/// XtraDB: a Galera-style synchronous MySQL cluster fronted by ProxySQL.
///
/// The write path requires the primary (ordinal 0); the proxy tier
/// (`component=proxysql`) is required when enabled in configuration. An
/// invalid `sql_mode` crashes members on restart.
#[derive(Debug, Default)]
pub struct XtraDbModel;

/// Accepted `sql_mode` flags.
pub const VALID_SQL_MODES: &[&str] = &[
    "STRICT_TRANS_TABLES",
    "NO_ENGINE_SUBSTITUTION",
    "ONLY_FULL_GROUP_BY",
    "ANSI_QUOTES",
    "TRADITIONAL",
];

impl SystemModel for XtraDbModel {
    fn name(&self) -> &'static str {
        "xtradb"
    }

    fn tick(&mut self, view: &mut SystemView<'_>) -> Health {
        let db = view.component_pods("pxc");
        let pods = if db.is_empty() { view.pods() } else { db };
        if pods.is_empty() {
            return Health::Down("no database members".to_string());
        }
        if let Some(mode) = view.config_value("sql_mode") {
            let invalid = mode
                .split(',')
                .filter(|m| !m.is_empty())
                .any(|m| !VALID_SQL_MODES.contains(&m.trim()));
            if invalid {
                for pod in &pods {
                    view.crash_pod(&pod.name, "invalid sql_mode");
                }
                return Health::Down(format!("invalid sql_mode {mode:?}"));
            }
            for pod in &pods {
                view.clear_crash(&pod.name);
            }
        }
        let ready = SystemView::ready_count(&pods);
        if !SystemView::has_quorum(ready, pods.len()) {
            return Health::Down(format!(
                "galera quorum lost: {ready}/{} members ready",
                pods.len()
            ));
        }
        let proxy_enabled = view.config_value("proxysql.enabled").as_deref() == Some("true");
        if proxy_enabled {
            let proxies = view.component_pods("proxysql");
            if SystemView::ready_count(&proxies) == 0 {
                return Health::Degraded("proxysql enabled but no proxy ready".to_string());
            }
        }
        if ready < pods.len() {
            return Health::Degraded(format!("{ready}/{} members ready", pods.len()));
        }
        Health::Healthy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::*;

    #[test]
    fn quorum_and_proxy_requirements() {
        let mut c = test_cluster();
        add_running_pods(&mut c, "ns", "pxc", 3);
        let mut model = XtraDbModel;
        let mut view = SystemView::new(&mut c, "ns", "pxc");
        assert_eq!(model.tick(&mut view), Health::Healthy);
        // Proxy enabled without proxy pods: degraded.
        set_config(&mut c, "ns", "pxc", &[("proxysql.enabled", "true")]);
        let mut view = SystemView::new(&mut c, "ns", "pxc");
        assert!(matches!(model.tick(&mut view), Health::Degraded(_)));
        add_component_pod(&mut c, "ns", "pxc", "pxc-proxysql-0", Some("proxysql"));
        let mut view = SystemView::new(&mut c, "ns", "pxc");
        assert_eq!(model.tick(&mut view), Health::Healthy);
    }

    #[test]
    fn invalid_sql_mode_crashes_members() {
        let mut c = test_cluster();
        add_running_pods(&mut c, "ns", "pxc", 2);
        set_config(
            &mut c,
            "ns",
            "pxc",
            &[("sql_mode", "STRICT_TRANS_TABLES,BOGUS")],
        );
        let mut model = XtraDbModel;
        let mut view = SystemView::new(&mut c, "ns", "pxc");
        assert!(matches!(model.tick(&mut view), Health::Down(_)));
        assert_eq!(c.crashing().count(), 2);
    }

    #[test]
    fn quorum_loss_is_down() {
        let mut c = test_cluster();
        add_running_pods(&mut c, "ns", "pxc", 3);
        fail_pod(&mut c, "ns", "pxc-1");
        fail_pod(&mut c, "ns", "pxc-2");
        let mut model = XtraDbModel;
        let mut view = SystemView::new(&mut c, "ns", "pxc");
        assert!(matches!(model.tick(&mut view), Health::Down(_)));
    }
}
