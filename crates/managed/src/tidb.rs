//! TiDB multi-component model (PD, TiKV, TiDB, optional binlog pump).

use crate::view::{Health, SystemModel, SystemView};

/// TiDB: placement drivers (PD) form a consensus group, TiKV stores data,
/// TiDB serves SQL, and an optional pump cluster records binlogs.
///
/// Enabling binlog without a pump cluster crash-loops every TiDB pod — the
/// exact failure of the paper's TiDBOp bug (§6.1.1): the operator restarts
/// TiDB to load the new configuration and the replicas crash because the
/// pump cluster was never set up.
#[derive(Debug, Default)]
pub struct TiDbModel;

impl SystemModel for TiDbModel {
    fn name(&self) -> &'static str {
        "tidb"
    }

    fn tick(&mut self, view: &mut SystemView<'_>) -> Health {
        let pd = view.component_pods("pd");
        let tikv = view.component_pods("tikv");
        let tidb = view.component_pods("tidb");
        if pd.is_empty() && tikv.is_empty() && tidb.is_empty() {
            return Health::Down("no components deployed".to_string());
        }
        // Binlog semantics: pumps must exist before TiDB loads a
        // binlog-enabled configuration.
        let binlog_on = view.config_value("binlog.enabled").as_deref() == Some("true");
        let pumps = view.component_pods("pump");
        if binlog_on && pumps.is_empty() {
            for pod in &tidb {
                view.crash_pod(&pod.name, "binlog enabled but pump cluster missing");
            }
            return Health::Down(
                "tidb crash loop: binlog enabled without pump cluster".to_string(),
            );
        }
        if !binlog_on || !pumps.is_empty() {
            for pod in &tidb {
                view.clear_crash(&pod.name);
            }
        }
        let pd_ready = SystemView::ready_count(&pd);
        if !SystemView::has_quorum(pd_ready, pd.len()) {
            return Health::Down(format!("pd quorum lost: {pd_ready}/{} ready", pd.len()));
        }
        if SystemView::ready_count(&tikv) == 0 {
            return Health::Down("no tikv store ready".to_string());
        }
        if SystemView::ready_count(&tidb) == 0 {
            return Health::Down("no tidb server ready".to_string());
        }
        let total: usize = [&pd, &tikv, &tidb].iter().map(|v| v.len()).sum();
        let ready: usize = [&pd, &tikv, &tidb]
            .iter()
            .map(|v| SystemView::ready_count(v))
            .sum();
        if ready < total {
            return Health::Degraded(format!("{ready}/{total} component pods ready"));
        }
        Health::Healthy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::*;

    fn full_deployment(c: &mut simkube::SimCluster) {
        for i in 0..3 {
            add_component_pod(c, "ns", "tidb", &format!("tidb-pd-{i}"), Some("pd"));
        }
        for i in 0..2 {
            add_component_pod(c, "ns", "tidb", &format!("tidb-tikv-{i}"), Some("tikv"));
        }
        for i in 0..2 {
            add_component_pod(c, "ns", "tidb", &format!("tidb-tidb-{i}"), Some("tidb"));
        }
    }

    #[test]
    fn full_stack_is_healthy() {
        let mut c = test_cluster();
        full_deployment(&mut c);
        let mut model = TiDbModel;
        let mut view = SystemView::new(&mut c, "ns", "tidb");
        assert_eq!(model.tick(&mut view), Health::Healthy);
    }

    #[test]
    fn binlog_without_pump_crashes_tidb() {
        let mut c = test_cluster();
        full_deployment(&mut c);
        set_config(&mut c, "ns", "tidb", &[("binlog.enabled", "true")]);
        let mut model = TiDbModel;
        let mut view = SystemView::new(&mut c, "ns", "tidb");
        match model.tick(&mut view) {
            Health::Down(reason) => assert!(reason.contains("pump")),
            other => panic!("expected down, got {other:?}"),
        }
        assert_eq!(c.crashing().count(), 2);
    }

    #[test]
    fn binlog_with_pump_is_fine() {
        let mut c = test_cluster();
        full_deployment(&mut c);
        add_component_pod(&mut c, "ns", "tidb", "tidb-pump-0", Some("pump"));
        set_config(&mut c, "ns", "tidb", &[("binlog.enabled", "true")]);
        let mut model = TiDbModel;
        let mut view = SystemView::new(&mut c, "ns", "tidb");
        assert_eq!(model.tick(&mut view), Health::Healthy);
    }

    #[test]
    fn pd_quorum_loss_is_down() {
        let mut c = test_cluster();
        full_deployment(&mut c);
        fail_pod(&mut c, "ns", "tidb-pd-0");
        fail_pod(&mut c, "ns", "tidb-pd-1");
        let mut model = TiDbModel;
        let mut view = SystemView::new(&mut c, "ns", "tidb");
        assert!(matches!(model.tick(&mut view), Health::Down(_)));
    }

    #[test]
    fn disabling_binlog_clears_crash_loop() {
        let mut c = test_cluster();
        full_deployment(&mut c);
        set_config(&mut c, "ns", "tidb", &[("binlog.enabled", "true")]);
        let mut model = TiDbModel;
        let mut view = SystemView::new(&mut c, "ns", "tidb");
        model.tick(&mut view);
        assert!(c.crashing().count() > 0);
        set_config(&mut c, "ns", "tidb", &[("binlog.enabled", "false")]);
        let mut view = SystemView::new(&mut c, "ns", "tidb");
        model.tick(&mut view);
        assert_eq!(c.crashing().count(), 0);
    }
}
