//! Redis primary–replica model.

use crate::view::{Health, SystemModel, SystemView};

/// Redis: a single primary (ordinal 0) with read replicas.
///
/// The system is down without a ready primary and degraded when replicas
/// lag the expected follower count. An unparseable `maxmemory` crashes
/// every instance on restart, which is how resource misconfigurations in
/// the OCK/RedisOp bugs surfaced.
#[derive(Debug, Default)]
pub struct RedisModel;

impl SystemModel for RedisModel {
    fn name(&self) -> &'static str {
        "redis"
    }

    fn tick(&mut self, view: &mut SystemView<'_>) -> Health {
        let pods = view.pods();
        if pods.is_empty() {
            return Health::Down("no redis instances".to_string());
        }
        if let Some(mm) = view.config_value("maxmemory") {
            if mm.parse::<simkube::Quantity>().is_err() {
                for pod in &pods {
                    view.crash_pod(&pod.name, "invalid maxmemory");
                }
                return Health::Down("invalid maxmemory configuration".to_string());
            }
            // A corrected configuration lets instances restart.
            for pod in &pods {
                view.clear_crash(&pod.name);
            }
        }
        let primary_name = format!("{}-0", view.instance);
        let is_primary = |p: &crate::view::PodView| {
            p.name == primary_name
                || p.labels.get("component").map(String::as_str) == Some("leader")
        };
        let primary_ready = pods.iter().any(|p| is_primary(p) && p.ready);
        if !primary_ready {
            return Health::Down("primary not ready".to_string());
        }
        let expected_followers = view
            .config_value("followers")
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or(pods.len().saturating_sub(1));
        let ready_followers = pods.iter().filter(|p| !is_primary(p) && p.ready).count();
        if ready_followers < expected_followers {
            return Health::Degraded(format!(
                "{ready_followers}/{expected_followers} followers ready"
            ));
        }
        Health::Healthy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::*;

    #[test]
    fn primary_down_takes_system_down() {
        let mut c = test_cluster();
        add_running_pods(&mut c, "ns", "redis", 3);
        let mut model = RedisModel;
        let mut view = SystemView::new(&mut c, "ns", "redis");
        assert_eq!(model.tick(&mut view), Health::Healthy);
        fail_pod(&mut c, "ns", "redis-0");
        let mut view = SystemView::new(&mut c, "ns", "redis");
        assert!(matches!(model.tick(&mut view), Health::Down(_)));
    }

    #[test]
    fn missing_followers_degrade() {
        let mut c = test_cluster();
        add_running_pods(&mut c, "ns", "redis", 3);
        fail_pod(&mut c, "ns", "redis-2");
        let mut model = RedisModel;
        let mut view = SystemView::new(&mut c, "ns", "redis");
        assert!(matches!(model.tick(&mut view), Health::Degraded(_)));
    }

    #[test]
    fn invalid_maxmemory_crashes_instances() {
        let mut c = test_cluster();
        add_running_pods(&mut c, "ns", "redis", 2);
        set_config(&mut c, "ns", "redis", &[("maxmemory", "notaquantity")]);
        let mut model = RedisModel;
        let mut view = SystemView::new(&mut c, "ns", "redis");
        assert!(matches!(model.tick(&mut view), Health::Down(_)));
        assert_eq!(c.crashing().count(), 2);
    }

    #[test]
    fn configured_follower_count_respected() {
        let mut c = test_cluster();
        add_running_pods(&mut c, "ns", "redis", 2);
        set_config(&mut c, "ns", "redis", &[("followers", "3")]);
        let mut model = RedisModel;
        let mut view = SystemView::new(&mut c, "ns", "redis");
        assert!(matches!(model.tick(&mut view), Health::Degraded(_)));
    }
}
