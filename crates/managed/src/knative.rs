//! Knative serving control-plane model.

use crate::view::{Health, SystemModel, SystemView};

/// Knative: a serverless control plane (controller, webhook, activator)
/// plus an optional ingress controller (Contour).
///
/// Disabling the ingress in configuration while the Contour pod keeps
/// running reproduces the KnativeOp bug the paper cites ("Contour pod is
/// not deleted when disabled by user"): the stale component keeps serving
/// routes the user asked to remove.
#[derive(Debug, Default)]
pub struct KnativeModel;

impl SystemModel for KnativeModel {
    fn name(&self) -> &'static str {
        "knative"
    }

    fn tick(&mut self, view: &mut SystemView<'_>) -> Health {
        let controller = view.component_pods("controller");
        let webhook = view.component_pods("webhook");
        let activator = view.component_pods("activator");
        if controller.is_empty() && webhook.is_empty() && activator.is_empty() {
            return Health::Down("control plane not deployed".to_string());
        }
        if SystemView::ready_count(&controller) == 0 {
            return Health::Down("controller not ready".to_string());
        }
        if SystemView::ready_count(&webhook) == 0 {
            return Health::Down("webhook not ready; admissions fail".to_string());
        }
        let ingress_enabled = view.config_value("ingress.enabled").as_deref() != Some("false");
        let contour = view.component_pods("contour");
        if !ingress_enabled && !contour.is_empty() {
            return Health::Degraded("ingress disabled but contour pod still running".to_string());
        }
        if ingress_enabled && SystemView::ready_count(&contour) == 0 {
            return Health::Degraded("ingress enabled but contour not ready".to_string());
        }
        if SystemView::ready_count(&activator) == 0 {
            return Health::Degraded("activator not ready; scale-from-zero broken".to_string());
        }
        Health::Healthy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::*;

    fn control_plane(c: &mut simkube::SimCluster) {
        add_component_pod(c, "ns", "kn", "kn-controller-0", Some("controller"));
        add_component_pod(c, "ns", "kn", "kn-webhook-0", Some("webhook"));
        add_component_pod(c, "ns", "kn", "kn-activator-0", Some("activator"));
        add_component_pod(c, "ns", "kn", "kn-contour-0", Some("contour"));
    }

    #[test]
    fn full_control_plane_is_healthy() {
        let mut c = test_cluster();
        control_plane(&mut c);
        let mut model = KnativeModel;
        let mut view = SystemView::new(&mut c, "ns", "kn");
        assert_eq!(model.tick(&mut view), Health::Healthy);
    }

    #[test]
    fn stale_contour_after_disable_is_degraded() {
        let mut c = test_cluster();
        control_plane(&mut c);
        set_config(&mut c, "ns", "kn", &[("ingress.enabled", "false")]);
        let mut model = KnativeModel;
        let mut view = SystemView::new(&mut c, "ns", "kn");
        match model.tick(&mut view) {
            Health::Degraded(reason) => assert!(reason.contains("contour")),
            other => panic!("expected degraded, got {other:?}"),
        }
    }

    #[test]
    fn webhook_down_breaks_admissions() {
        let mut c = test_cluster();
        control_plane(&mut c);
        fail_pod(&mut c, "ns", "kn-webhook-0");
        let mut model = KnativeModel;
        let mut view = SystemView::new(&mut c, "ns", "kn");
        assert!(matches!(model.tick(&mut view), Health::Down(_)));
    }

    #[test]
    fn missing_activator_degrades() {
        let mut c = test_cluster();
        add_component_pod(&mut c, "ns", "kn", "kn-controller-0", Some("controller"));
        add_component_pod(&mut c, "ns", "kn", "kn-webhook-0", Some("webhook"));
        add_component_pod(&mut c, "ns", "kn", "kn-contour-0", Some("contour"));
        let mut model = KnativeModel;
        let mut view = SystemView::new(&mut c, "ns", "kn");
        assert!(matches!(model.tick(&mut view), Health::Degraded(_)));
    }
}
