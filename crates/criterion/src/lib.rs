//! An offline, dependency-free subset of the `criterion` API.
//!
//! The workspace builds in environments without crates.io access, so this
//! crate reimplements the surface its benches use: [`Criterion`],
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is intentionally simple: each benchmark is warmed up, then
//! timed over `sample_size` samples of an auto-scaled iteration count, and
//! the median per-iteration time is printed. There are no plots, baselines,
//! or statistical comparisons.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time per sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(20);
const WARMUP_TARGET: Duration = Duration::from_millis(50);

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Accepted for CLI compatibility; arguments are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Times `f` and prints one report line for `id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.sample_size, f);
        self
    }

    /// Opens a named group; the name prefixes each member's id.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Times `f` under `group-name/id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{id}", self.name), self.sample_size, f);
        self
    }

    /// Ends the group. A no-op here; provided for API compatibility.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the
/// routine to measure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `routine`, storing one per-iteration duration per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate a per-sample iteration count.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= WARMUP_TARGET || iters >= 1 << 20 {
                let per_iter = elapsed.max(Duration::from_nanos(1)) / iters as u32;
                iters = (SAMPLE_TARGET.as_nanos() / per_iter.as_nanos().max(1)).max(1) as u64;
                break;
            }
            iters *= 2;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<40} (no measurement: Bencher::iter never called)");
        return;
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    let low = bencher.samples[0];
    let high = *bencher.samples.last().expect("non-empty samples");
    println!(
        "{id:<40} time: [{} {} {}]",
        format_duration(low),
        format_duration(median),
        format_duration(high)
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Collects benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 0, "routine must run");
    }

    #[test]
    fn groups_prefix_and_finish() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
