//! Reusable CRD schema fragments.
//!
//! Real operators embed the same Kubernetes resource subtrees (resources,
//! affinity, tolerations, probes, …) into their CRDs; Acto's semantic
//! inference exploits exactly that recurring structure (paper §5.2.2: 83%
//! of properties map to Kubernetes resources). These constructors are the
//! single source of those subtrees for all eleven operators.

use crdspec::{Schema, Semantic, Value};

/// Compute resource requirements: `requests`/`limits` maps of quantities.
pub fn resources_schema() -> Schema {
    let quantity = || {
        Schema::string()
            .format("quantity")
            .semantic(Semantic::Quantity)
            .describe("A Kubernetes resource quantity, e.g. 500m or 1Gi.")
    };
    let side = || {
        Schema::object()
            .prop("cpu", quantity())
            .prop("memory", quantity())
    };
    Schema::object()
        .prop("requests", side())
        .prop("limits", side())
        .semantic(Semantic::Resources)
        .describe("Compute resources for the main container.")
}

/// Affinity rules: required node labels plus pod (anti-)affinity terms.
pub fn affinity_schema() -> Schema {
    let term = || {
        Schema::object()
            .prop("key", Schema::string())
            .prop("value", Schema::string())
            .require("key")
            .require("value")
    };
    Schema::object()
        .prop("nodeRequired", Schema::array(term()))
        .prop("podAffinity", Schema::array(term()))
        .prop("podAntiAffinity", Schema::array(term()))
        .semantic(Semantic::Affinity)
        .describe("Scheduling affinity constraints.")
}

/// Taint tolerations.
pub fn tolerations_schema() -> Schema {
    Schema::array(
        Schema::object()
            .prop("key", Schema::string())
            .prop("value", Schema::string())
            .prop("operator", Schema::string_enum(["Equal", "Exists"]))
            .require("key"),
    )
    .semantic(Semantic::Tolerations)
    .describe("Node taints the pods tolerate.")
}

/// A node-selector label map.
pub fn node_selector_schema() -> Schema {
    Schema::map(Schema::string())
        .semantic(Semantic::NodeSelector)
        .describe("Labels a node must carry to host the pods.")
}

/// Pod/container security context.
pub fn security_context_schema() -> Schema {
    Schema::object()
        .prop("runAsUser", Schema::integer())
        .prop("runAsNonRoot", Schema::boolean())
        .prop("readOnlyRootFilesystem", Schema::boolean())
        .prop("fsGroup", Schema::integer())
        .semantic(Semantic::SecurityContext)
        .describe("Security context applied to pods.")
}

/// Liveness/readiness probe knobs.
pub fn probe_schema() -> Schema {
    Schema::object()
        .prop("initialDelaySeconds", Schema::integer().min(0).max(3600))
        .prop("periodSeconds", Schema::integer().min(1).max(3600))
        .prop("failureThreshold", Schema::integer().min(1).max(100))
        .semantic(Semantic::Probe)
        .describe("Health-probe configuration.")
}

/// Persistent storage configuration.
pub fn persistence_schema() -> Schema {
    Schema::object()
        .prop(
            "enabled",
            Schema::boolean()
                .semantic(Semantic::Toggle)
                .default_value(Value::Bool(true)),
        )
        .prop(
            "size",
            Schema::string()
                .format("quantity")
                .semantic(Semantic::StorageSize),
        )
        .prop(
            "storageClass",
            Schema::string().semantic(Semantic::StorageClass),
        )
        .prop("reclaimPolicy", Schema::string_enum(["Retain", "Delete"]))
        .describe("Persistent volume configuration.")
}

/// Service exposure.
pub fn service_schema() -> Schema {
    Schema::object()
        .prop(
            "type",
            Schema::string_enum(["ClusterIP", "NodePort", "LoadBalancer"])
                .semantic(Semantic::ServiceType),
        )
        .prop(
            "port",
            Schema::integer().min(1).max(65535).semantic(Semantic::Port),
        )
        .describe("Client service exposure.")
}

/// Backup policy with the conventional `enabled` toggle.
pub fn backup_schema() -> Schema {
    Schema::object()
        .prop(
            "enabled",
            Schema::boolean()
                .semantic(Semantic::Toggle)
                .default_value(Value::Bool(false)),
        )
        .prop(
            "schedule",
            Schema::string().format("cron").semantic(Semantic::Schedule),
        )
        .prop("destination", Schema::string())
        .semantic(Semantic::Backup)
        .describe("Scheduled backup policy.")
}

/// Pod disruption budget with the conventional `enabled` toggle.
pub fn pdb_schema() -> Schema {
    Schema::object()
        .prop(
            "enabled",
            Schema::boolean()
                .semantic(Semantic::Toggle)
                .default_value(Value::Bool(false)),
        )
        .prop(
            "minAvailable",
            Schema::integer()
                .min(0)
                .max(100)
                .semantic(Semantic::PodDisruptionBudget),
        )
        .describe("Disruption budget for managed pods.")
}

/// TLS configuration with the conventional `enabled` toggle.
pub fn tls_schema() -> Schema {
    Schema::object()
        .prop(
            "enabled",
            Schema::boolean()
                .semantic(Semantic::Toggle)
                .default_value(Value::Bool(false)),
        )
        .prop("secretName", Schema::string().semantic(Semantic::SecretRef))
        .semantic(Semantic::Tls)
        .describe("TLS for client and peer traffic.")
}

/// An image reference. Deliberately unconstrained beyond being a string —
/// operators are expected to validate it (CockroachOp famously did not).
pub fn image_schema() -> Schema {
    Schema::string()
        .semantic(Semantic::Image)
        .describe("Container image reference, repo:tag.")
}

/// The standard pod-template fragment embedded by every operator.
pub fn pod_template_schema() -> Schema {
    Schema::object()
        .prop(
            "labels",
            Schema::map(Schema::string()).semantic(Semantic::Labels),
        )
        .prop(
            "annotations",
            Schema::map(Schema::string()).semantic(Semantic::Annotations),
        )
        .prop("resources", resources_schema())
        .prop("affinity", affinity_schema())
        .prop("tolerations", tolerations_schema())
        .prop("nodeSelector", node_selector_schema())
        .prop("securityContext", security_context_schema())
        .prop(
            "priorityClassName",
            Schema::string().semantic(Semantic::PriorityClass),
        )
        .prop(
            "serviceAccountName",
            Schema::string().semantic(Semantic::ServiceAccount),
        )
        .prop(
            "env",
            Schema::map(Schema::string()).semantic(Semantic::EnvVars),
        )
        .prop("livenessProbe", probe_schema())
        .prop("readinessProbe", probe_schema())
        .describe("Pod-level scheduling and runtime settings.")
}

/// The standard pod-template fragment minus the named child properties —
/// for operators that expose those knobs as dedicated top-level fields
/// (leaving both would make one of them dead weight in the interface).
pub fn pod_template_schema_without(excluded: &[&str]) -> Schema {
    let full = pod_template_schema();
    let mut out = Schema::object().describe("Pod-level scheduling and runtime settings.");
    if let crdspec::SchemaKind::Object { properties, .. } = full.kind {
        for (name, child) in properties {
            if !excluded.contains(&name.as_str()) {
                out = out.prop(&name, child);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crdspec::validate;

    #[test]
    fn fragments_have_semantics_for_inference() {
        assert_eq!(resources_schema().semantic, Some(Semantic::Resources));
        assert_eq!(affinity_schema().semantic, Some(Semantic::Affinity));
        assert_eq!(backup_schema().semantic, Some(Semantic::Backup));
        let tpl = pod_template_schema();
        assert!(tpl.property_count() >= 30, "template should be rich");
    }

    #[test]
    fn resources_fragment_validates_quantities_structurally() {
        let schema = resources_schema();
        let ok = Value::object([("requests", Value::object([("cpu", Value::from("500m"))]))]);
        assert!(validate(&schema, &ok).is_empty());
        let unknown = Value::object([("requestz", Value::empty_object())]);
        assert_eq!(validate(&schema, &unknown).len(), 1);
    }

    #[test]
    fn service_ports_are_bounded() {
        let schema = service_schema();
        let bad = Value::object([("port", Value::from(0))]);
        assert_eq!(validate(&schema, &bad).len(), 1);
        let ok = Value::object([
            ("port", Value::from(5432)),
            ("type", Value::from("NodePort")),
        ]);
        assert!(validate(&schema, &ok).is_empty());
    }

    #[test]
    fn pod_template_accepts_standard_values() {
        let schema = pod_template_schema();
        let v = Value::object([
            (
                "affinity",
                Value::object([(
                    "podAntiAffinity",
                    Value::array([Value::object([
                        ("key", Value::from("app")),
                        ("value", Value::from("zk")),
                    ])]),
                )]),
            ),
            (
                "tolerations",
                Value::array([Value::object([
                    ("key", Value::from("dedicated")),
                    ("operator", Value::from("Exists")),
                ])]),
            ),
            (
                "securityContext",
                Value::object([("runAsUser", Value::from(1000))]),
            ),
        ]);
        assert!(
            validate(&schema, &v).is_empty(),
            "{:?}",
            validate(&schema, &v)
        );
    }
}
