//! Ground-truth registry of injected operator bugs.
//!
//! The paper reports 56 new operator bugs across the eleven evaluated
//! operators (Table 5), classified as *undesired state* (32), *system error
//! state* (4), *operator error state* (10), and *recovery failure* (10),
//! with the consequence profile of Table 6. This module defines the same
//! population as injected, individually toggleable defects: every bug has a
//! stable id, a category, consequence tags, the property/transition that
//! triggers it, and a note on which paper bug it mirrors.
//!
//! Operator implementations consult [`BugToggles`] at the exact code site
//! where the defect lives; disabling a bug yields the fixed behaviour, which
//! the evaluation uses for regression comparisons.

use std::collections::BTreeSet;
use std::fmt;

/// Root-cause category, matching Table 5's columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BugCategory {
    /// The system ends in an undesired state with no explicit error.
    UndesiredState,
    /// The managed system enters an explicit runtime-error state.
    ErrorStateSystem,
    /// The operator itself crashes or errors.
    ErrorStateOperator,
    /// The operator cannot recover the system from an error state.
    RecoveryFailure,
}

impl fmt::Display for BugCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BugCategory::UndesiredState => "undesired-state",
            BugCategory::ErrorStateSystem => "error-state-system",
            BugCategory::ErrorStateOperator => "error-state-operator",
            BugCategory::RecoveryFailure => "recovery-failure",
        };
        f.write_str(s)
    }
}

/// Consequence tags, matching Table 6's rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Consequence {
    /// The managed system is down and may not recover.
    SystemFailure,
    /// Reduced fault-tolerance or replication guarantees.
    ReliabilityIssue,
    /// Stale credentials, permissive contexts, or exposure.
    SecurityIssue,
    /// Missing limits/requests or leaked resources.
    ResourceIssue,
    /// Operations can no longer be performed (operator wedged/crashed).
    OperationOutage,
    /// The system runs with configuration other than declared.
    Misconfiguration,
}

impl fmt::Display for Consequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Consequence::SystemFailure => "system-failure",
            Consequence::ReliabilityIssue => "reliability-issue",
            Consequence::SecurityIssue => "security-issue",
            Consequence::ResourceIssue => "resource-issue",
            Consequence::OperationOutage => "operation-outage",
            Consequence::Misconfiguration => "misconfiguration",
        };
        f.write_str(s)
    }
}

/// One injected bug's ground truth.
#[derive(Debug, Clone)]
pub struct BugSpec {
    /// Stable identifier (e.g. `"ZK-5"`), referenced from operator code.
    pub id: &'static str,
    /// Operator the bug lives in (registry name, e.g. `"ZooKeeperOp"`).
    pub operator: &'static str,
    /// Root-cause category.
    pub category: BugCategory,
    /// Consequences (one or more).
    pub consequences: &'static [Consequence],
    /// CRD property whose change triggers the bug.
    pub trigger_property: &'static str,
    /// Human description of the trigger transition.
    pub trigger: &'static str,
    /// Whether Acto's blackbox mode can trigger it (the paper's single
    /// Acto-■ miss needs a semantics-requiring scenario on a primitive
    /// property).
    pub blackbox_detectable: bool,
    /// The real bug this mirrors, where applicable.
    pub mirrors: &'static str,
}

/// Returns the full ground-truth bug population (56 bugs).
pub fn all_bugs() -> &'static [BugSpec] {
    use BugCategory::*;
    use Consequence::*;
    const BUGS: &[BugSpec] = &[
        // ---- CassOp: 2 undesired state, 2 recovery failure. ----
        BugSpec {
            id: "CASS-1",
            operator: "CassOp",
            category: UndesiredState,
            consequences: &[Misconfiguration],
            trigger_property: "podLabels",
            trigger: "deleting a pod label leaves it on running pods",
            blackbox_detectable: true,
            mirrors: "k8ssandra/cass-operator#344",
        },
        BugSpec {
            id: "CASS-2",
            operator: "CassOp",
            category: UndesiredState,
            consequences: &[ReliabilityIssue],
            trigger_property: "seedLabels",
            trigger: "seed-label change is not propagated to the seed selection",
            blackbox_detectable: true,
            mirrors: "k8ssandra/cass-operator seed-service labels",
        },
        BugSpec {
            id: "CASS-3",
            operator: "CassOp",
            category: RecoveryFailure,
            consequences: &[OperationOutage],
            trigger_property: "size",
            trigger: "operator refuses all reconciliation while any pod is unhealthy",
            blackbox_detectable: true,
            mirrors: "stability-gate recovery failures (paper §6.1.1)",
        },
        BugSpec {
            id: "CASS-4",
            operator: "CassOp",
            category: RecoveryFailure,
            consequences: &[OperationOutage, ReliabilityIssue],
            trigger_property: "replaceNodes",
            trigger: "a wrong pod name in replaceNodes wedges the operator; reverting does not clear it",
            blackbox_detectable: true,
            mirrors: "k8ssandra/cass-operator#315",
        },
        // ---- CockroachOp: 3 undesired state, 2 operator error. ----
        BugSpec {
            id: "CRDB-1",
            operator: "CockroachOp",
            category: UndesiredState,
            consequences: &[SecurityIssue],
            trigger_property: "ingress.tls.secretName",
            trigger: "updating the SQL ingress TLS secret is not reflected in the ingress object",
            blackbox_detectable: true,
            mirrors: "cockroachdb/cockroach-operator#920",
        },
        BugSpec {
            id: "CRDB-2",
            operator: "CockroachOp",
            category: UndesiredState,
            consequences: &[ResourceIssue],
            trigger_property: "resources.requests.cpu",
            trigger: "resource updates are applied to the stateful set but never roll the pods",
            blackbox_detectable: true,
            mirrors: "stale-rollout resource bugs",
        },
        BugSpec {
            id: "CRDB-3",
            operator: "CockroachOp",
            category: UndesiredState,
            consequences: &[SecurityIssue],
            trigger_property: "certRotation",
            trigger: "rotating TLS does not bump the version nodes serve with (outdated secrets)",
            blackbox_detectable: true,
            mirrors: "cockroachdb/cockroach-operator#929-family",
        },
        BugSpec {
            id: "CRDB-4",
            operator: "CockroachOp",
            category: ErrorStateOperator,
            consequences: &[OperationOutage],
            trigger_property: "image",
            trigger: "an image reference without a colon panics the parser; the operator crash-loops",
            blackbox_detectable: true,
            mirrors: "cockroachdb/cockroach-operator#922",
        },
        BugSpec {
            id: "CRDB-5",
            operator: "CockroachOp",
            category: ErrorStateOperator,
            consequences: &[OperationOutage],
            trigger_property: "additionalArgs",
            trigger: "an empty string among additional arguments panics argument parsing",
            blackbox_detectable: true,
            mirrors: "index-out-of-range parse crashes (paper §6.1.1)",
        },
        // ---- KnativeOp: 1 undesired state, 2 operator error. ----
        BugSpec {
            id: "KN-1",
            operator: "KnativeOp",
            category: UndesiredState,
            consequences: &[Misconfiguration, ResourceIssue],
            trigger_property: "ingress.enabled",
            trigger: "disabling the ingress does not delete the contour deployment",
            blackbox_detectable: true,
            mirrors: "knative/operator#1176",
        },
        BugSpec {
            id: "KN-2",
            operator: "KnativeOp",
            category: ErrorStateOperator,
            consequences: &[OperationOutage],
            trigger_property: "config.@values",
            trigger: "an empty config value dereferences a nil map and panics",
            blackbox_detectable: true,
            mirrors: "nil-map config crashes",
        },
        BugSpec {
            id: "KN-3",
            operator: "KnativeOp",
            category: ErrorStateOperator,
            consequences: &[OperationOutage],
            trigger_property: "highAvailability.replicas",
            trigger: "replicas=0 divides by zero when spreading components",
            blackbox_detectable: true,
            mirrors: "zero-replica arithmetic crashes",
        },
        // ---- OCK/RedisOp: 4 undesired, 3 operator error, 1 recovery. ----
        BugSpec {
            id: "RED-OCK-1",
            operator: "OCK/RedisOp",
            category: UndesiredState,
            consequences: &[ResourceIssue],
            trigger_property: "resources.requests.memory",
            trigger: "cr.spec.resources is never applied; redis runs with no resource guarantee",
            blackbox_detectable: true,
            mirrors: "OT-CONTAINER-KIT/redis-operator#290",
        },
        BugSpec {
            id: "RED-OCK-2",
            operator: "OCK/RedisOp",
            category: UndesiredState,
            consequences: &[ReliabilityIssue],
            trigger_property: "follower.pdb.enabled",
            trigger: "the follower PDB field has no effect; no disruption budget is created",
            blackbox_detectable: true,
            mirrors: "OT-CONTAINER-KIT/redis-operator#301",
        },
        BugSpec {
            id: "RED-OCK-3",
            operator: "OCK/RedisOp",
            category: UndesiredState,
            consequences: &[Misconfiguration],
            trigger_property: "securityContext.runAsUser",
            trigger: "the declared security context is not propagated to pods",
            blackbox_detectable: true,
            mirrors: "security-context propagation gaps",
        },
        BugSpec {
            id: "RED-OCK-4",
            operator: "OCK/RedisOp",
            category: UndesiredState,
            consequences: &[Misconfiguration],
            trigger_property: "nodeSelector.@values",
            trigger: "removing the node selector leaves the old selector on pods",
            blackbox_detectable: true,
            mirrors: "deletion-path omissions (paper §6.1.4)",
        },
        BugSpec {
            id: "RED-OCK-5",
            operator: "OCK/RedisOp",
            category: ErrorStateOperator,
            consequences: &[OperationOutage],
            trigger_property: "storage.size",
            trigger: "an unparsable storage quantity (admitted under PLAT-2) panics the operator",
            blackbox_detectable: true,
            mirrors: "kubernetes-sigs/controller-tools#665 fallout",
        },
        BugSpec {
            id: "RED-OCK-6",
            operator: "OCK/RedisOp",
            category: ErrorStateOperator,
            consequences: &[OperationOutage],
            trigger_property: "tls.enabled",
            trigger: "enabling TLS without a secret name dereferences nil and panics",
            blackbox_detectable: true,
            mirrors: "nil-secret TLS crashes",
        },
        BugSpec {
            id: "RED-OCK-7",
            operator: "OCK/RedisOp",
            category: ErrorStateOperator,
            consequences: &[OperationOutage],
            trigger_property: "config.@values",
            trigger: "an empty 'save' directive panics configuration rendering",
            blackbox_detectable: true,
            mirrors: "config-parse crashes",
        },
        BugSpec {
            id: "RED-OCK-8",
            operator: "OCK/RedisOp",
            category: RecoveryFailure,
            consequences: &[OperationOutage, ReliabilityIssue],
            trigger_property: "config.@values",
            trigger: "while any pod crash-loops the operator skips reconciliation, so a bad config cannot be rolled back",
            blackbox_detectable: true,
            mirrors: "stability-gate recovery failures",
        },
        // ---- OFC/MongoOp: 3 undesired, 1 system error, 2 operator error,
        // 2 recovery. ----
        BugSpec {
            id: "MG-OFC-1",
            operator: "OFC/MongoOp",
            category: UndesiredState,
            consequences: &[Misconfiguration],
            trigger_property: "additionalMongodConfig.@values",
            trigger: "config changes update the config map but never restart members (stale running config)",
            blackbox_detectable: true,
            mirrors: "stale-config rollouts",
        },
        BugSpec {
            id: "MG-OFC-2",
            operator: "OFC/MongoOp",
            category: UndesiredState,
            consequences: &[ReliabilityIssue],
            trigger_property: "arbiters",
            trigger: "scaling arbiters up from a running set is silently ignored",
            blackbox_detectable: true,
            mirrors: "mongodb-kubernetes-operator#1024",
        },
        BugSpec {
            id: "MG-OFC-3",
            operator: "OFC/MongoOp",
            category: UndesiredState,
            consequences: &[Misconfiguration],
            trigger_property: "podLabels",
            trigger: "removing a pod label is not propagated",
            blackbox_detectable: true,
            mirrors: "deletion-path omissions",
        },
        BugSpec {
            id: "MG-OFC-4",
            operator: "OFC/MongoOp",
            category: ErrorStateSystem,
            consequences: &[SystemFailure],
            trigger_property: "featureCompatibilityVersion",
            trigger: "an invalid featureCompatibilityVersion is passed through unvalidated; every member crashes",
            blackbox_detectable: true,
            mirrors: "mongodb-kubernetes-operator#1118",
        },
        BugSpec {
            id: "MG-OFC-5",
            operator: "OFC/MongoOp",
            category: ErrorStateOperator,
            consequences: &[OperationOutage],
            trigger_property: "security.auth.users",
            trigger: "auth enabled with an empty users list indexes users[0] and panics",
            blackbox_detectable: true,
            mirrors: "index-out-of-range crashes",
        },
        BugSpec {
            id: "MG-OFC-6",
            operator: "OFC/MongoOp",
            category: ErrorStateOperator,
            consequences: &[OperationOutage],
            trigger_property: "version",
            trigger: "a non-semver version string panics version parsing",
            blackbox_detectable: true,
            mirrors: "unwrap-on-parse crashes",
        },
        BugSpec {
            id: "MG-OFC-7",
            operator: "OFC/MongoOp",
            category: RecoveryFailure,
            consequences: &[SystemFailure],
            trigger_property: "featureCompatibilityVersion",
            trigger: "after the system goes down, the operator waits for health before applying the corrected value — unrecoverable",
            blackbox_detectable: true,
            mirrors: "mongodb-kubernetes-operator#1118 (recovery half)",
        },
        BugSpec {
            id: "MG-OFC-8",
            operator: "OFC/MongoOp",
            category: RecoveryFailure,
            consequences: &[ReliabilityIssue],
            trigger_property: "additionalMongodConfig.@values",
            trigger: "crash-looping members block the rollback of a corrupted mongod configuration",
            blackbox_detectable: true,
            mirrors: "stability-gate recovery failures",
        },
        // ---- PCN/MongoOp: 4 undesired, 1 recovery. ----
        BugSpec {
            id: "MG-PCN-1",
            operator: "PCN/MongoOp",
            category: UndesiredState,
            consequences: &[Misconfiguration],
            trigger_property: "backup.schedule",
            trigger: "the backup schedule is only read when backup is first enabled; later changes are ignored",
            blackbox_detectable: true,
            mirrors: "enable-time-only config reads",
        },
        BugSpec {
            id: "MG-PCN-2",
            operator: "PCN/MongoOp",
            category: UndesiredState,
            consequences: &[Misconfiguration, ResourceIssue],
            trigger_property: "pmm.enabled",
            trigger: "disabling monitoring does not remove the PMM sidecar",
            blackbox_detectable: true,
            mirrors: "disable-path omissions",
        },
        BugSpec {
            id: "MG-PCN-3",
            operator: "PCN/MongoOp",
            category: UndesiredState,
            consequences: &[ReliabilityIssue],
            trigger_property: "secrets.users",
            trigger: "changing the users secret name does not rotate the credentials in running config",
            blackbox_detectable: true,
            mirrors: "credential-rotation gaps",
        },
        BugSpec {
            id: "MG-PCN-4",
            operator: "PCN/MongoOp",
            category: UndesiredState,
            consequences: &[ReliabilityIssue],
            trigger_property: "pdb.minAvailable",
            trigger: "the disruption budget is created once and never updated",
            blackbox_detectable: true,
            mirrors: "create-only subresources",
        },
        BugSpec {
            id: "MG-PCN-5",
            operator: "PCN/MongoOp",
            category: RecoveryFailure,
            consequences: &[OperationOutage],
            trigger_property: "configuration.@values",
            trigger: "a bad configuration crash-loops members; the stability gate then blocks the rollback",
            blackbox_detectable: true,
            mirrors: "stability-gate recovery failures",
        },
        // ---- RabbitMQOp: 3 undesired. ----
        BugSpec {
            id: "RMQ-1",
            operator: "RabbitMQOp",
            category: UndesiredState,
            consequences: &[Misconfiguration],
            trigger_property: "additionalConfig.@values",
            trigger: "config-map updates never roll broker pods (stale running config)",
            blackbox_detectable: true,
            mirrors: "stale-config rollouts",
        },
        BugSpec {
            id: "RMQ-2",
            operator: "RabbitMQOp",
            category: UndesiredState,
            consequences: &[ReliabilityIssue],
            trigger_property: "persistence.backend",
            trigger: "backend migration is silently ignored (the untested operation from §3)",
            blackbox_detectable: true,
            mirrors: "untested backend migration (paper Finding 2)",
        },
        BugSpec {
            id: "RMQ-3",
            operator: "RabbitMQOp",
            category: UndesiredState,
            consequences: &[Misconfiguration],
            trigger_property: "override.serviceType",
            trigger: "service-type overrides are not applied to the client service",
            blackbox_detectable: true,
            mirrors: "override propagation gaps",
        },
        // ---- SAH/RedisOp: 2 undesired, 1 system error, 1 recovery. ----
        BugSpec {
            id: "RED-SAH-1",
            operator: "SAH/RedisOp",
            category: UndesiredState,
            consequences: &[ReliabilityIssue],
            trigger_property: "sentinel.replicas",
            trigger: "sentinel replica changes are ignored after initial deployment",
            blackbox_detectable: true,
            mirrors: "spotahome/redis-operator sentinel scaling",
        },
        BugSpec {
            id: "RED-SAH-2",
            operator: "SAH/RedisOp",
            category: UndesiredState,
            consequences: &[ResourceIssue],
            trigger_property: "exporter.enabled",
            trigger: "disabling the exporter leaves the sidecar running",
            blackbox_detectable: true,
            mirrors: "disable-path omissions",
        },
        BugSpec {
            id: "RED-SAH-3",
            operator: "SAH/RedisOp",
            category: ErrorStateSystem,
            consequences: &[SystemFailure],
            trigger_property: "redis.replicas",
            trigger: "scaling redis to zero is accepted and takes the system down",
            blackbox_detectable: true,
            mirrors: "missing zero-replica validation",
        },
        BugSpec {
            id: "RED-SAH-4",
            operator: "SAH/RedisOp",
            category: RecoveryFailure,
            consequences: &[OperationOutage, ReliabilityIssue],
            trigger_property: "redis.replicas",
            trigger: "with the master down the operator performs no operations, including the rollback",
            blackbox_detectable: true,
            mirrors: "stability-gate recovery failures",
        },
        // ---- TiDBOp: 2 undesired, 1 system error, 1 recovery. ----
        BugSpec {
            id: "TIDB-1",
            operator: "TiDBOp",
            category: UndesiredState,
            consequences: &[ResourceIssue],
            trigger_property: "tikv.resources.requests.cpu",
            trigger: "tikv resource updates are dropped",
            blackbox_detectable: true,
            mirrors: "component-specific propagation gaps",
        },
        BugSpec {
            id: "TIDB-2",
            operator: "TiDBOp",
            category: UndesiredState,
            consequences: &[Misconfiguration],
            trigger_property: "pd.maxReplicas",
            trigger: "pd placement configuration changes are not written to the running config",
            blackbox_detectable: true,
            mirrors: "config propagation gaps",
        },
        BugSpec {
            id: "TIDB-3",
            operator: "TiDBOp",
            category: ErrorStateSystem,
            consequences: &[SystemFailure, ReliabilityIssue],
            trigger_property: "binlog.enabled",
            trigger: "enabling binlog without a pump cluster restarts tidb into a crash loop",
            blackbox_detectable: true,
            mirrors: "pingcap/tidb-operator#4945",
        },
        BugSpec {
            id: "TIDB-4",
            operator: "TiDBOp",
            category: RecoveryFailure,
            consequences: &[OperationOutage, ReliabilityIssue],
            trigger_property: "binlog.enabled",
            trigger: "the unhealthy cluster cannot be recovered even with a manual revert",
            blackbox_detectable: true,
            mirrors: "pingcap/tidb-operator#4946",
        },
        // ---- XtraDBOp: 4 undesired, 1 operator error, 1 recovery. ----
        BugSpec {
            id: "PXC-1",
            operator: "XtraDBOp",
            category: UndesiredState,
            consequences: &[Misconfiguration],
            trigger_property: "pxc.labels",
            trigger: "deleting a pxc label leaves it on pods",
            blackbox_detectable: true,
            mirrors: "deletion-path omissions",
        },
        BugSpec {
            id: "PXC-2",
            operator: "XtraDBOp",
            category: UndesiredState,
            consequences: &[ResourceIssue],
            trigger_property: "proxysql.enabled",
            trigger: "disabling proxysql leaves the proxy pods running",
            blackbox_detectable: true,
            mirrors: "disable-path omissions",
        },
        BugSpec {
            id: "PXC-3",
            operator: "XtraDBOp",
            category: UndesiredState,
            consequences: &[ReliabilityIssue],
            trigger_property: "backup.storages.@values",
            trigger: "removing a backup storage destination is ignored",
            blackbox_detectable: true,
            mirrors: "map-entry deletion gaps",
        },
        BugSpec {
            id: "PXC-4",
            operator: "XtraDBOp",
            category: UndesiredState,
            consequences: &[ResourceIssue],
            trigger_property: "pxc.resources.limits.memory",
            trigger: "resources are honoured only at creation; updates are dropped",
            blackbox_detectable: true,
            mirrors: "create-only subresources",
        },
        BugSpec {
            id: "PXC-5",
            operator: "XtraDBOp",
            category: ErrorStateOperator,
            consequences: &[OperationOutage],
            trigger_property: "backup.schedule",
            trigger: "an invalid cron expression panics schedule parsing",
            blackbox_detectable: true,
            mirrors: "unwrap-on-parse crashes",
        },
        BugSpec {
            id: "PXC-6",
            operator: "XtraDBOp",
            category: RecoveryFailure,
            consequences: &[OperationOutage],
            trigger_property: "pxc.configuration.@values",
            trigger: "crash-looping members block the rollback through the stability gate",
            blackbox_detectable: true,
            mirrors: "stability-gate recovery failures",
        },
        // ---- ZooKeeperOp: 4 undesired, 1 system error (missed by
        // Acto-blackbox), 1 recovery. ----
        BugSpec {
            id: "ZK-1",
            operator: "ZooKeeperOp",
            category: UndesiredState,
            consequences: &[Misconfiguration],
            trigger_property: "pod.labels",
            trigger: "deleting a pod label leaves it on pods",
            blackbox_detectable: true,
            mirrors: "deletion-path omissions",
        },
        BugSpec {
            id: "ZK-2",
            operator: "ZooKeeperOp",
            category: UndesiredState,
            consequences: &[Misconfiguration],
            trigger_property: "config.quorumListenOnAllIPs",
            trigger: "the quorumListenOnAllIPs toggle is never written to the config map",
            blackbox_detectable: true,
            mirrors: "config propagation gaps",
        },
        BugSpec {
            id: "ZK-3",
            operator: "ZooKeeperOp",
            category: UndesiredState,
            consequences: &[ReliabilityIssue],
            trigger_property: "domainName",
            trigger: "domain-name changes never update the client service",
            blackbox_detectable: true,
            mirrors: "service propagation gaps",
        },
        BugSpec {
            id: "ZK-4",
            operator: "ZooKeeperOp",
            category: UndesiredState,
            consequences: &[Misconfiguration, ResourceIssue],
            trigger_property: "persistence.reclaimPolicy",
            trigger: "reclaim-policy changes after creation are ignored (volumes leak on delete)",
            blackbox_detectable: true,
            mirrors: "create-only subresources",
        },
        BugSpec {
            id: "ZK-5",
            operator: "ZooKeeperOp",
            category: ErrorStateSystem,
            consequences: &[SystemFailure],
            trigger_property: "clientAccess",
            trigger: "a privileged port (<1024) makes every member crash on bind; only a semantics-driven port scenario reaches it",
            blackbox_detectable: false,
            mirrors: "pravega/zookeeper-operator#526-family; the Acto-blackbox miss (paper §6.1)",
        },
        BugSpec {
            id: "ZK-6",
            operator: "ZooKeeperOp",
            category: RecoveryFailure,
            consequences: &[OperationOutage],
            trigger_property: "extraConfig.@values",
            trigger: "with the ensemble unhealthy the operator blocks every operation, including rollback",
            blackbox_detectable: true,
            mirrors: "paper Figure 2 (pod-migration wedge)",
        },
    ];
    BUGS
}

/// Looks up one bug spec by id.
pub fn bug(id: &str) -> Option<&'static BugSpec> {
    all_bugs().iter().find(|b| b.id == id)
}

/// Bugs of one operator.
pub fn bugs_of(operator: &str) -> Vec<&'static BugSpec> {
    all_bugs()
        .iter()
        .filter(|b| b.operator == operator)
        .collect()
}

/// Stable id of the seeded crash-consistency bug: a non-idempotent,
/// non-atomic initialization sequence in `ZooKeeperOp` (a bare create
/// followed by a completion stamp) that wedges forever when the operator
/// process dies between the two writes. Unlike the ground-truth population
/// above it is **off by default** and opted into with [`BugToggles::seed`];
/// it exists to prove the crash-consistency oracle fires, so it is not part
/// of [`all_bugs`] (whose totals are pinned to the paper's tables).
pub const SEEDED_NONIDEMPOTENT_CREATE: &str = "SEED-CRASH-1";

/// Stable id of the seeded cross-operator composition bug: an overly broad
/// garbage-collection pass in `TiDBOp` that, whenever no pump cluster is
/// configured, enumerates ConfigMaps across **all** namespaces and deletes
/// any `*-config` outside its own — clobbering configuration owned by other
/// operators sharing the cluster. A single-operator cluster never notices
/// (there is nothing foreign to delete); under composition the victim
/// operator recreates its config every pass and the pair livelocks. Off by
/// default and opted into with [`BugToggles::seed`]; it exists to prove the
/// composition oracle fires, so it is not part of [`all_bugs`].
pub const SEEDED_CROSS_OPERATOR_GC: &str = "SEED-COMPOSE-1";

/// Per-campaign toggles: every bug defaults to **injected**; disabling an id
/// yields the fixed behaviour at that code site. Seeded crash-point bugs
/// work the other way around: off unless explicitly seeded.
#[derive(Debug, Clone, Default)]
pub struct BugToggles {
    disabled: BTreeSet<String>,
    seeded: BTreeSet<String>,
}

impl BugToggles {
    /// All bugs injected (the evaluation configuration).
    pub fn all_injected() -> BugToggles {
        BugToggles::default()
    }

    /// All bugs fixed.
    pub fn all_fixed() -> BugToggles {
        BugToggles {
            disabled: all_bugs().iter().map(|b| b.id.to_string()).collect(),
            seeded: BTreeSet::new(),
        }
    }

    /// Disables (fixes) one bug.
    pub fn fix(&mut self, id: &str) {
        self.disabled.insert(id.to_string());
    }

    /// Returns `true` when the bug is injected (operator code takes the
    /// buggy path).
    pub fn injected(&self, id: &str) -> bool {
        !self.disabled.contains(id)
    }

    /// Opts into a seeded (default-off) bug, e.g.
    /// [`SEEDED_NONIDEMPOTENT_CREATE`].
    pub fn seed(&mut self, id: &str) {
        self.seeded.insert(id.to_string());
    }

    /// Returns `true` when a seeded bug was opted into.
    pub fn seeded(&self, id: &str) -> bool {
        self.seeded.contains(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn population_matches_table5_totals() {
        let bugs = all_bugs();
        assert_eq!(bugs.len(), 56);
        let mut by_cat: BTreeMap<BugCategory, usize> = BTreeMap::new();
        for b in bugs {
            *by_cat.entry(b.category).or_default() += 1;
        }
        assert_eq!(by_cat[&BugCategory::UndesiredState], 32);
        assert_eq!(by_cat[&BugCategory::ErrorStateSystem], 4);
        assert_eq!(by_cat[&BugCategory::ErrorStateOperator], 10);
        assert_eq!(by_cat[&BugCategory::RecoveryFailure], 10);
    }

    #[test]
    fn per_operator_counts_match_table5_rows() {
        let expect: &[(&str, [usize; 4])] = &[
            ("CassOp", [2, 0, 0, 2]),
            ("CockroachOp", [3, 0, 2, 0]),
            ("KnativeOp", [1, 0, 2, 0]),
            ("OCK/RedisOp", [4, 0, 3, 1]),
            ("OFC/MongoOp", [3, 1, 2, 2]),
            ("PCN/MongoOp", [4, 0, 0, 1]),
            ("RabbitMQOp", [3, 0, 0, 0]),
            ("SAH/RedisOp", [2, 1, 0, 1]),
            ("TiDBOp", [2, 1, 0, 1]),
            ("XtraDBOp", [4, 0, 1, 1]),
            ("ZooKeeperOp", [4, 1, 0, 1]),
        ];
        for (op, [u, s, o, r]) in expect {
            let bugs = bugs_of(op);
            let count = |c: BugCategory| bugs.iter().filter(|b| b.category == c).count();
            assert_eq!(count(BugCategory::UndesiredState), *u, "{op} undesired");
            assert_eq!(count(BugCategory::ErrorStateSystem), *s, "{op} system");
            assert_eq!(count(BugCategory::ErrorStateOperator), *o, "{op} operator");
            assert_eq!(count(BugCategory::RecoveryFailure), *r, "{op} recovery");
        }
    }

    #[test]
    fn consequence_totals_match_table6() {
        let mut by_con: BTreeMap<Consequence, usize> = BTreeMap::new();
        for b in all_bugs() {
            for c in b.consequences {
                *by_con.entry(*c).or_default() += 1;
            }
        }
        assert_eq!(by_con[&Consequence::SystemFailure], 5);
        assert_eq!(by_con[&Consequence::ReliabilityIssue], 15);
        assert_eq!(by_con[&Consequence::SecurityIssue], 2);
        assert_eq!(by_con[&Consequence::ResourceIssue], 9);
        assert_eq!(by_con[&Consequence::OperationOutage], 18);
        assert_eq!(by_con[&Consequence::Misconfiguration], 15);
    }

    #[test]
    fn exactly_one_blackbox_miss() {
        let misses: Vec<&str> = all_bugs()
            .iter()
            .filter(|b| !b.blackbox_detectable)
            .map(|b| b.id)
            .collect();
        assert_eq!(misses, vec!["ZK-5"]);
    }

    #[test]
    fn ids_are_unique_and_lookup_works() {
        let mut ids: Vec<&str> = all_bugs().iter().map(|b| b.id).collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), before);
        assert_eq!(bug("ZK-5").unwrap().operator, "ZooKeeperOp");
        assert!(bug("NOPE").is_none());
    }

    #[test]
    fn toggles_default_to_injected() {
        let mut t = BugToggles::all_injected();
        assert!(t.injected("ZK-1"));
        t.fix("ZK-1");
        assert!(!t.injected("ZK-1"));
        assert!(t.injected("ZK-2"));
        let fixed = BugToggles::all_fixed();
        assert!(all_bugs().iter().all(|b| !fixed.injected(b.id)));
    }

    #[test]
    fn seeded_bugs_are_off_by_default_and_outside_the_population() {
        let mut t = BugToggles::all_injected();
        assert!(!t.seeded(SEEDED_NONIDEMPOTENT_CREATE));
        t.seed(SEEDED_NONIDEMPOTENT_CREATE);
        assert!(t.seeded(SEEDED_NONIDEMPOTENT_CREATE));
        // The seeded bug must not perturb the pinned ground truth.
        assert!(bug(SEEDED_NONIDEMPOTENT_CREATE).is_none());
    }
}
