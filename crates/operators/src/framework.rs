//! The operator framework: the [`Operator`] trait and the [`Instance`]
//! harness that deploys an operator with its managed system on a simulated
//! cluster.
//!
//! An [`Instance`] corresponds to what Acto's manifest input deploys
//! (paper §4 "Usage"): the operator under test, its CRD, and the managed
//! system, all running against one cluster. The harness drives the
//! level-triggered reconcile loop, records operator panics as crash loops,
//! reflects managed-system health into state objects, and implements the
//! paper's reset-timer convergence.

use crdspec::{Schema, Value};
use managed::{Health, SystemModel, SystemView};
use opdsl::IrModule;
use simkube::cluster::LogLevel;
use simkube::objects::Kind;
use simkube::platform::SHARED_OBJECT_PAYLOAD_LIMIT;
use simkube::store::ObjKey;
use simkube::{ApiError, ClusterConfig, PlatformBugs, SimCluster};

use crate::bugs::BugToggles;

/// Failure modes of a reconcile invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OperatorError {
    /// The operator process crashed (Go panic equivalent). The harness
    /// restarts it; the same declaration crashes it again.
    Panic(String),
    /// A retriable error; reconciliation continues next tick.
    Transient(String),
}

/// An operator under test.
pub trait Operator: Send {
    /// Registry name (Table 4), e.g. `"ZooKeeperOp"`.
    fn name(&self) -> &'static str;

    /// The managed system's name (matches [`managed::model_for`]).
    fn system(&self) -> &'static str;

    /// The CRD kind, e.g. `"ZookeeperCluster"`.
    fn kind(&self) -> &'static str;

    /// The CRD spec schema — the operation interface Acto consumes.
    fn schema(&self) -> Schema;

    /// The property-plumbing IR analyzed by Acto's whitebox mode.
    fn ir(&self) -> IrModule;

    /// The initial desired-state declaration (the seed CR every campaign
    /// starts from).
    fn initial_cr(&self) -> Value;

    /// Images the operator deploys (registered in the cluster's catalog).
    fn images(&self) -> Vec<String>;

    /// One reconcile pass: drive the cluster toward the declared state.
    ///
    /// `health` is the managed system's current health (operators commonly
    /// gate operations on it — the double-edged practice behind the
    /// paper's recovery-failure bugs).
    fn reconcile(
        &mut self,
        cr: &Value,
        health: &Health,
        cluster: &mut SimCluster,
        bugs: &BugToggles,
    ) -> Result<(), OperatorError>;

    /// Called when the operator "process" restarts after a crash-point
    /// firing: drop any in-memory state, as a real process death would.
    /// Operators in this repo are stateless unit structs rebuilt from the
    /// registry constructor, so the default is a no-op; stateful operators
    /// must override it.
    fn restart(&mut self) {}
}

/// One crash-point firing observed by the harness: the operator process
/// died mid-pass and restarted after its downtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashEvent {
    /// Simulated time the crash fired (the dying pass's tick).
    pub time: u64,
    /// Cumulative state-changing operator writes at the moment of death —
    /// the crash boundary `k` in a sweep's terms.
    pub writes_total: u64,
    /// Simulated time the process restarts.
    pub restart_at: u64,
}

/// A resumable copy-on-write snapshot of a deployed [`Instance`]: the
/// cluster checkpoint (shared handles, not a traversal) plus the harness
/// state around it (restart count, crash-loop generation, last observed
/// health).
///
/// Operators and managed-system models are stateless unit structs — all of
/// their observable behaviour is a function of the cluster state — so a
/// checkpoint plus a freshly constructed operator/model pair resumes
/// exactly where the original left off. Campaign partitioning uses this to
/// hand converged jump-prefix states between workers instead of
/// re-deploying and re-converging per partition (paper §5.5).
#[derive(Debug, Clone)]
pub struct InstanceCheckpoint {
    cluster: simkube::ClusterCheckpoint,
    namespace: String,
    name: String,
    operator_restarts: u32,
    crashed_generation: Option<u64>,
    operator_down_until: Option<u64>,
    crash_log: Vec<CrashEvent>,
    last_health: Health,
}

impl InstanceCheckpoint {
    /// Simulated time at which the checkpoint was taken.
    pub fn time(&self) -> u64 {
        self.cluster.time()
    }

    /// Objects shared with other snapshots versus uniquely owned by this
    /// checkpoint: `(shared, uniquely_owned)`. See
    /// [`simkube::ObjectStore::sharing_stats`].
    pub fn sharing_stats(&self) -> (usize, usize) {
        self.cluster.sharing_stats()
    }

    /// Number of objects captured by this checkpoint.
    pub fn object_count(&self) -> usize {
        self.cluster.object_count()
    }
}

/// A deployed operator + managed system on a simulated cluster.
pub struct Instance {
    /// The simulated cluster.
    pub cluster: SimCluster,
    operator: Box<dyn Operator>,
    model: Box<dyn SystemModel>,
    bugs: BugToggles,
    /// Namespace the instance runs in.
    pub namespace: String,
    /// CR (and application) name.
    pub name: String,
    /// Times the operator process was restarted after a panic.
    pub operator_restarts: u32,
    /// Generation of the declaration that crashed the operator, while the
    /// crash loop persists.
    crashed_generation: Option<u64>,
    /// While a fired crash point keeps the operator process down: the
    /// simulated time it restarts.
    operator_down_until: Option<u64>,
    /// Crash/restart transcript: every crash-point firing observed so far.
    crash_log: Vec<CrashEvent>,
    /// Latest managed-system health.
    pub last_health: Health,
    /// Rendered CR spec keyed by CR generation. Pure derived cache
    /// (`spec_value` is a deterministic render and the generation bumps
    /// exactly when the spec changes), so it is not checkpointed.
    spec_cache: Option<(u64, Value)>,
    /// Serialized length of the cached spec (the PLAT-3 payload check).
    payload_len_cache: usize,
}

/// Namespace every instance is deployed into.
pub const NAMESPACE: &str = "acto";

/// Name of the CR (and application) under test.
pub const INSTANCE: &str = "test-cluster";

/// Default reset-timer for convergence, in simulated seconds (the paper
/// uses three times the system restart time; pod start+ready is 5s here).
pub const CONVERGE_RESET: u64 = 15;

/// Default convergence budget, in simulated seconds.
pub const CONVERGE_MAX: u64 = 600;

impl Instance {
    /// Deploys `operator` on a fresh cluster: registers the CRD and images,
    /// creates the initial CR, and converges to the initial state.
    pub fn deploy(
        operator: Box<dyn Operator>,
        bugs: BugToggles,
        platform: PlatformBugs,
    ) -> Result<Instance, ApiError> {
        Self::deploy_on(operator, bugs, platform, None)
    }

    /// Like [`Instance::deploy`], but on a generated node topology
    /// (production-sized clusters: thousands of nodes, optional background
    /// pods). `None` keeps the default 4-node cluster.
    pub fn deploy_on(
        operator: Box<dyn Operator>,
        bugs: BugToggles,
        platform: PlatformBugs,
        topology: Option<simkube::NodeTopology>,
    ) -> Result<Instance, ApiError> {
        let mut cluster = SimCluster::new(ClusterConfig {
            bugs: platform,
            topology,
            ..ClusterConfig::default()
        });
        for image in operator.images() {
            cluster.add_image(&image);
        }
        cluster
            .api_mut()
            .register_crd(operator.kind(), operator.schema());
        let namespace = NAMESPACE.to_string();
        let name = INSTANCE.to_string();
        let model = managed::model_for(operator.system());
        cluster.api_mut().create_custom(
            &namespace,
            &name,
            operator.kind(),
            operator.initial_cr(),
            0,
        )?;
        let mut instance = Instance {
            cluster,
            operator,
            model,
            bugs,
            namespace,
            name,
            operator_restarts: 0,
            crashed_generation: None,
            operator_down_until: None,
            crash_log: Vec::new(),
            last_health: Health::Down("not yet deployed".to_string()),
            spec_cache: None,
            payload_len_cache: 0,
        };
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        Ok(instance)
    }

    /// Deploys `operator` into an existing cluster under `namespace` — the
    /// multi-operator composition path. Registers the CRD and images and
    /// creates the initial CR, but does not converge: the composition
    /// converges all members together against the shared cluster.
    pub fn deploy_into(
        operator: Box<dyn Operator>,
        bugs: BugToggles,
        mut cluster: SimCluster,
        namespace: &str,
    ) -> Result<Instance, ApiError> {
        for image in operator.images() {
            cluster.add_image(&image);
        }
        cluster
            .api_mut()
            .register_crd(operator.kind(), operator.schema());
        let name = INSTANCE.to_string();
        let model = managed::model_for(operator.system());
        let time = cluster.now();
        cluster.api_mut().create_custom(
            namespace,
            &name,
            operator.kind(),
            operator.initial_cr(),
            time,
        )?;
        Ok(Instance {
            cluster,
            operator,
            model,
            bugs,
            namespace: namespace.to_string(),
            name,
            operator_restarts: 0,
            crashed_generation: None,
            operator_down_until: None,
            crash_log: Vec::new(),
            last_health: Health::Down("not yet deployed".to_string()),
            spec_cache: None,
            payload_len_cache: 0,
        })
    }

    /// Takes a cheap copy-on-write checkpoint of the instance (cluster +
    /// harness state): cluster state is captured as shared handles, not a
    /// traversal. See [`simkube::SimCluster::checkpoint`].
    pub fn checkpoint(&self) -> InstanceCheckpoint {
        InstanceCheckpoint {
            cluster: self.cluster.checkpoint(),
            namespace: self.namespace.clone(),
            name: self.name.clone(),
            operator_restarts: self.operator_restarts,
            crashed_generation: self.crashed_generation,
            operator_down_until: self.operator_down_until,
            crash_log: self.crash_log.clone(),
            last_health: self.last_health.clone(),
        }
    }

    /// Rebuilds a live instance from a checkpoint, with a freshly
    /// constructed operator (operators and system models carry no state of
    /// their own). The restored instance's clock, store, logs, and health
    /// are exactly the checkpoint's; no simulated time elapses.
    pub fn from_checkpoint(
        operator: Box<dyn Operator>,
        bugs: BugToggles,
        cp: &InstanceCheckpoint,
    ) -> Instance {
        let model = managed::model_for(operator.system());
        Instance {
            cluster: SimCluster::from_checkpoint(&cp.cluster),
            operator,
            model,
            bugs,
            namespace: cp.namespace.clone(),
            name: cp.name.clone(),
            operator_restarts: cp.operator_restarts,
            crashed_generation: cp.crashed_generation,
            operator_down_until: cp.operator_down_until,
            crash_log: cp.crash_log.clone(),
            last_health: cp.last_health.clone(),
            spec_cache: None,
            payload_len_cache: 0,
        }
    }

    /// The key of the CR object.
    pub fn cr_key(&self) -> ObjKey {
        ObjKey::new(
            Kind::Custom(self.operator.kind().to_string()),
            &self.namespace,
            &self.name,
        )
    }

    /// The current CR spec.
    pub fn cr_spec(&self) -> Value {
        match self.cluster.api().get(&self.cr_key()) {
            Some(obj) => obj.data.spec_value(),
            None => Value::Null,
        }
    }

    /// The current CR status.
    pub fn cr_status(&self) -> Value {
        match self.cluster.api().get(&self.cr_key()) {
            Some(obj) => obj.data.status_value(),
            None => Value::Null,
        }
    }

    /// The operator under test.
    pub fn operator(&self) -> &dyn Operator {
        self.operator.as_ref()
    }

    /// The active bug toggles.
    pub fn bugs(&self) -> &BugToggles {
        &self.bugs
    }

    /// Submits a new desired-state declaration.
    pub fn submit(&mut self, spec: Value) -> Result<(), ApiError> {
        let time = self.cluster.now();
        self.cluster.api_mut().update_custom(
            &self.namespace,
            &self.name,
            self.operator.kind(),
            spec,
            time,
        )
    }

    /// Returns `true` while the operator is in a panic crash loop.
    pub fn operator_crashed(&self) -> bool {
        self.crashed_generation.is_some()
    }

    /// Returns `true` while the operator process is down after a
    /// crash-point firing (it restarts once the downtime lapses).
    pub fn operator_down(&self) -> bool {
        self.operator_down_until.is_some()
    }

    /// Simulated time the downed operator process restarts, if any — the
    /// composition's fast-forward must never skip a member's restart tick.
    pub(crate) fn operator_down_at(&self) -> Option<u64> {
        self.operator_down_until
    }

    /// The crash/restart transcript: every crash-point firing observed so
    /// far, oldest first.
    pub fn crash_transcript(&self) -> &[CrashEvent] {
        &self.crash_log
    }

    /// Cumulative state-changing writes the operator has issued across all
    /// reconcile passes (no-op writes don't count; see
    /// [`simkube::ApiServer::operator_writes`]).
    pub fn operator_writes(&self) -> u64 {
        self.cluster.api().operator_writes()
    }

    /// Advances the world one simulated second: cluster controllers, the
    /// managed-system model, and one operator reconcile pass.
    pub fn tick(&mut self) {
        self.cluster.step();
        self.post_step();
    }

    /// Everything a tick does after the cluster step: the managed-system
    /// model, health reflection into the CR status, and one operator
    /// reconcile pass. Split from [`Instance::tick`] so a multi-operator
    /// composition can run one shared cluster step and then each member's
    /// post-step in deterministic order.
    ///
    /// When the instance lives in a namespace other than the default
    /// [`NAMESPACE`] (composition members beyond the first), keyed store
    /// operations naming the default namespace are aliased to the member's
    /// namespace for the duration — operators hard-code the default
    /// namespace, and the alias re-scopes their keyed reads and writes
    /// without touching raw enumeration (raw reach across namespaces is
    /// exactly what the composition oracle watches).
    pub(crate) fn post_step(&mut self) {
        let aliased = self.namespace != NAMESPACE;
        if aliased {
            let ns = self.namespace.clone();
            self.cluster
                .api_mut()
                .store_mut()
                .set_ns_alias(NAMESPACE, &ns);
        }
        self.post_step_inner();
        if aliased {
            self.cluster.api_mut().store_mut().clear_ns_alias();
        }
    }

    fn post_step_inner(&mut self) {
        // Managed-system model observes and may inject crash loops.
        let health = {
            let mut view = SystemView::new(&mut self.cluster, &self.namespace, &self.name);
            self.model.tick(&mut view)
        };
        self.last_health = health.clone();
        // Reflect runtime health into the CR status (the monitoring path
        // Acto's error oracle reads from state objects).
        let health_str = match &health {
            Health::Healthy => "Healthy".to_string(),
            Health::Degraded(r) => format!("Degraded: {r}"),
            Health::Down(r) => format!("Down: {r}"),
        };
        let key = self.cr_key();
        let Some(cr_obj) = self.cluster.api().get(&key) else {
            return;
        };
        let generation = cr_obj.meta.generation;
        // Compare against the stored status in place; the status value is
        // only rendered (and written back) when the health actually moved.
        let stored_health = cr_obj
            .data
            .status_field("systemHealth")
            .and_then(Value::as_str);
        if stored_health != Some(health_str.as_str()) {
            let mut status = cr_obj.data.status_value();
            status.set_path(
                &"systemHealth".parse().expect("path"),
                Value::from(health_str),
            );
            let time = self.cluster.now();
            let _ = self
                .cluster
                .api_mut()
                .update_custom_status(&key, status, time);
        }
        // An injected watch blackout starves the operator of events: no
        // reconcile runs until watches resume.
        if self.cluster.watch_blackout_active() {
            return;
        }
        // A fired crash point keeps the operator process dead: no reconcile
        // passes run until the downtime lapses, then the process restarts
        // with its in-memory state dropped.
        if let Some(until) = self.operator_down_until {
            if self.cluster.now() < until {
                return;
            }
            self.operator_down_until = None;
            self.operator.restart();
            self.operator_restarts += 1;
            self.spec_cache = None;
            self.cluster.log(
                LogLevel::Warn,
                "crash-point",
                "operator process restarted".to_string(),
            );
        }
        // An injected transient reconcile error aborts this pass before the
        // operator runs. Logged at warning level from a neutral source so
        // the error-check oracle doesn't attribute it to the operator.
        if self.cluster.take_injected_reconcile_error() {
            self.cluster.log(
                LogLevel::Warn,
                "fault-injector",
                "injected transient reconcile error".to_string(),
            );
            return;
        }
        // Operator crash-loop: the offending declaration keeps crashing the
        // restarted process until a new declaration arrives.
        if let Some(crashed_gen) = self.crashed_generation {
            if crashed_gen == generation {
                return;
            }
            self.crashed_generation = None;
            self.operator_restarts += 1;
        }
        // The rendered spec is a pure function of the CR spec, and the
        // generation bumps exactly when the spec changes — cache the render
        // (and the PLAT-3 payload length) per generation instead of
        // rebuilding the value tree every reconcile pass.
        if self.spec_cache.as_ref().map(|(g, _)| *g) != Some(generation) {
            let Some(obj) = self.cluster.api().get(&key) else {
                return;
            };
            let spec = obj.data.spec_value();
            self.payload_len_cache = crdspec::json::to_string(&spec).len();
            self.spec_cache = Some((generation, spec));
        }
        // PLAT-3: oversized payloads crash the operator runtime itself.
        if self.cluster.api().bugs().shared_object_crash
            && self.payload_len_cache > SHARED_OBJECT_PAYLOAD_LIMIT
        {
            self.record_panic(
                generation,
                "PLAT-3: declaration payload exceeds shared-object limit".to_string(),
            );
            return;
        }
        let spec = &self.spec_cache.as_ref().expect("populated above").1;
        self.cluster.api_mut().begin_operator_pass();
        let result = self
            .operator
            .reconcile(spec, &health, &mut self.cluster, &self.bugs);
        if let Some(down_for) = self.cluster.api_mut().end_operator_pass() {
            // An armed crash point fired mid-pass: the process is dead, so
            // the pass's outcome (transient error, panic) never surfaces.
            let now = self.cluster.now();
            let until = now + down_for;
            let writes = self.cluster.api().operator_writes();
            self.operator_down_until = Some(until);
            self.crash_log.push(CrashEvent {
                time: now,
                writes_total: writes,
                restart_at: until,
            });
            self.cluster.log(
                LogLevel::Warn,
                "crash-point",
                format!("operator process crashed after write {writes}; restart at t={until}"),
            );
            return;
        }
        match result {
            Ok(()) => {}
            Err(OperatorError::Transient(msg)) => {
                let source = self.operator.name();
                self.cluster.log(LogLevel::Error, source, msg);
            }
            Err(OperatorError::Panic(msg)) => {
                self.record_panic(generation, msg);
            }
        }
    }

    fn record_panic(&mut self, generation: u64, msg: String) {
        let first = self.crashed_generation != Some(generation);
        self.crashed_generation = Some(generation);
        if first {
            let source = self.operator.name();
            self.cluster
                .log(LogLevel::Panic, source, format!("panic: {msg}"));
        }
    }

    /// Observable fingerprint of the whole instance: the cluster's
    /// quiescence fingerprint plus operator-side state a tick can change.
    /// Two equal fingerprints around a tick prove it was a no-op (operators
    /// and models are deterministic functions of this state, never of the
    /// clock), which lets the event-driven engine fast-forward.
    pub(crate) fn fingerprint(
        &self,
    ) -> (
        simkube::ClusterFingerprint,
        Option<u64>,
        u32,
        Option<u64>,
        usize,
        Health,
    ) {
        (
            self.cluster.quiescence_fingerprint(),
            self.crashed_generation,
            self.operator_restarts,
            self.operator_down_until,
            self.crash_log.len(),
            self.last_health.clone(),
        )
    }

    /// Runs [`Instance::tick`] until no state event occurs for
    /// `reset_timeout` seconds (paper §5.5), or until `max_seconds` pass.
    ///
    /// In event-driven mode the clock jumps over provably idle spans, so
    /// the convergence (or timeout) timestamp matches the ticked loop's
    /// exactly.
    pub fn converge(&mut self, reset_timeout: u64, max_seconds: u64) -> bool {
        let start = self.cluster.now();
        let mut last_event_time = start;
        let mut last_revision = self.cluster.api().store().revision();
        let ticked = simkube::ticked_engine();
        let mut fingerprint = self.fingerprint();
        while self.cluster.now() - start < max_seconds {
            self.tick();
            let revision = self.cluster.api().store().revision();
            if revision != last_revision {
                last_revision = revision;
                last_event_time = self.cluster.now();
            } else if self.cluster.now() - last_event_time >= reset_timeout
                && self.operator_down_until.is_none()
            {
                // A dead operator process is not a converged system, even if
                // nothing has moved for a full reset window.
                return true;
            }
            if !ticked {
                let after = self.fingerprint();
                if after == fingerprint {
                    let mut target = (last_event_time + reset_timeout).min(start + max_seconds);
                    if let Some(wake) = self.cluster.next_wakeup() {
                        target = target.min(wake);
                    }
                    if let Some(down) = self.operator_down_until {
                        // The restart tick is observable; never skip it.
                        target = target.min(down);
                    }
                    if target > self.cluster.now() + 1 {
                        self.cluster.fast_forward_to(target - 1);
                    }
                } else {
                    fingerprint = after;
                }
            }
        }
        false
    }

    /// Advances exactly `seconds` simulated seconds (e.g. a fault-plan
    /// horizon), fast-forwarding over provably idle spans in event-driven
    /// mode. Ends with the clock at `now + seconds` in both engines.
    pub fn advance(&mut self, seconds: u64) {
        let end = self.cluster.now() + seconds;
        let ticked = simkube::ticked_engine();
        let mut fingerprint = self.fingerprint();
        while self.cluster.now() < end {
            self.tick();
            if ticked {
                continue;
            }
            let after = self.fingerprint();
            if after == fingerprint {
                let mut target = end;
                if let Some(wake) = self.cluster.next_wakeup() {
                    target = target.min(wake);
                }
                if let Some(down) = self.operator_down_until {
                    target = target.min(down);
                }
                if target > self.cluster.now() + 1 {
                    self.cluster.fast_forward_to(target - 1);
                }
            } else {
                fingerprint = after;
            }
        }
    }

    /// Pods of the instance's namespace that carry an explicit failure
    /// reason, as `(name, phase, ready, reason)`.
    pub fn pod_failures(&self) -> Vec<(String, simkube::objects::PodPhase, bool, String)> {
        self.cluster
            .pod_summaries(&self.namespace)
            .into_iter()
            .filter(|(_, _, _, reason)| !reason.is_empty())
            .collect()
    }

    /// Snapshot of all state objects rendered as values, keyed by
    /// `kind/namespace/name` — the uniform system-state view Acto's oracles
    /// compare. Background scale-workload pods
    /// ([`simkube::BACKGROUND_NAMESPACE`]) are inert cluster scaffolding —
    /// no operator manages them — so they are excluded, keeping oracle cost
    /// proportional to operator state rather than cluster size.
    pub fn state_snapshot(&self) -> std::collections::BTreeMap<String, Value> {
        self.cluster
            .api()
            .store()
            .iter()
            .filter(|(k, _)| k.namespace != simkube::BACKGROUND_NAMESPACE)
            .map(|(k, o)| {
                (
                    format!("{}/{}/{}", k.kind.name(), k.namespace, k.name),
                    o.to_value(),
                )
            })
            .collect()
    }

    /// Snapshot of all state objects as shared handles, keyed like
    /// [`Instance::state_snapshot`] (background scale-workload pods
    /// excluded the same way). Oracles use the handles to prune unchanged
    /// objects by pointer identity before rendering values.
    pub fn state_handles(
        &self,
    ) -> std::collections::BTreeMap<String, std::sync::Arc<simkube::StoredObject>> {
        self.cluster
            .api()
            .store()
            .iter_shared()
            .filter(|(k, _)| k.namespace != simkube::BACKGROUND_NAMESPACE)
            .map(|(k, o)| {
                (
                    format!("{}/{}/{}", k.kind.name(), k.namespace, k.name),
                    std::sync::Arc::clone(o),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crdspec::Schema;
    use opdsl::IrBuilder;
    use simkube::meta::LabelSelector;
    use simkube::meta::ObjectMeta;
    use simkube::objects::{Container, ObjectData, PodTemplate, StatefulSet};

    /// A minimal operator managing a fake "zookeeper" with one knob.
    struct ToyOperator;

    impl Operator for ToyOperator {
        fn name(&self) -> &'static str {
            "ToyOp"
        }
        fn system(&self) -> &'static str {
            "zookeeper"
        }
        fn kind(&self) -> &'static str {
            "ToyCluster"
        }
        fn schema(&self) -> Schema {
            Schema::object()
                .prop("replicas", Schema::integer().min(0).max(9))
                .prop("boom", Schema::boolean())
        }
        fn ir(&self) -> IrModule {
            let mut b = IrBuilder::new("toy");
            b.passthrough("replicas", "sts.replicas");
            b.ret();
            b.finish()
        }
        fn initial_cr(&self) -> Value {
            Value::object([("replicas", Value::from(2))])
        }
        fn images(&self) -> Vec<String> {
            vec!["zk:3.8".to_string()]
        }
        fn reconcile(
            &mut self,
            cr: &Value,
            _health: &Health,
            cluster: &mut SimCluster,
            _bugs: &BugToggles,
        ) -> Result<(), OperatorError> {
            if cr.get("boom").and_then(Value::as_bool) == Some(true) {
                return Err(OperatorError::Panic("boom requested".to_string()));
            }
            let replicas = cr.get("replicas").and_then(Value::as_i64).unwrap_or(1) as i32;
            let sts = StatefulSet {
                replicas,
                selector: LabelSelector::match_labels([("app", "test-cluster")]),
                template: PodTemplate {
                    labels: [("app".to_string(), "test-cluster".to_string())]
                        .into_iter()
                        .collect(),
                    containers: vec![Container {
                        name: "zk".to_string(),
                        image: "zk:3.8".to_string(),
                        ..Container::default()
                    }],
                    ..PodTemplate::default()
                },
                service_name: "test-cluster".to_string(),
                ..StatefulSet::default()
            };
            let time = cluster.now();
            cluster
                .api_mut()
                .apply_object(
                    ObjectMeta::named("acto", "test-cluster"),
                    ObjectData::StatefulSet(sts),
                    time,
                )
                .map_err(|e| OperatorError::Transient(e.to_string()))?;
            Ok(())
        }
    }

    #[test]
    fn deploy_converges_to_initial_state() {
        let instance = Instance::deploy(
            Box::new(ToyOperator),
            BugToggles::all_injected(),
            PlatformBugs::none(),
        )
        .unwrap();
        let pods = instance.cluster.pod_summaries("acto");
        assert_eq!(pods.len(), 2);
        assert!(instance.last_health.is_healthy());
        assert_eq!(
            instance
                .cr_status()
                .get("systemHealth")
                .and_then(Value::as_str),
            Some("Healthy")
        );
    }

    #[test]
    fn submit_and_reconverge_scales() {
        let mut instance = Instance::deploy(
            Box::new(ToyOperator),
            BugToggles::all_injected(),
            PlatformBugs::none(),
        )
        .unwrap();
        instance
            .submit(Value::object([("replicas", Value::from(4))]))
            .unwrap();
        assert!(instance.converge(CONVERGE_RESET, CONVERGE_MAX));
        assert_eq!(instance.cluster.pod_summaries("acto").len(), 4);
    }

    #[test]
    fn panic_enters_crash_loop_until_new_declaration() {
        let mut instance = Instance::deploy(
            Box::new(ToyOperator),
            BugToggles::all_injected(),
            PlatformBugs::none(),
        )
        .unwrap();
        instance
            .submit(Value::object([
                ("replicas", Value::from(2)),
                ("boom", Value::from(true)),
            ]))
            .unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(instance.operator_crashed());
        assert!(instance
            .cluster
            .logs()
            .iter()
            .any(|l| l.level == LogLevel::Panic));
        // A corrected declaration restarts the operator.
        instance
            .submit(Value::object([("replicas", Value::from(3))]))
            .unwrap();
        assert!(instance.converge(CONVERGE_RESET, CONVERGE_MAX));
        assert!(!instance.operator_crashed());
        assert_eq!(instance.operator_restarts, 1);
        assert_eq!(instance.cluster.pod_summaries("acto").len(), 3);
    }

    #[test]
    fn invalid_declaration_rejected_at_api() {
        let mut instance = Instance::deploy(
            Box::new(ToyOperator),
            BugToggles::all_injected(),
            PlatformBugs::none(),
        )
        .unwrap();
        let err = instance
            .submit(Value::object([("replicas", Value::from(99))]))
            .unwrap_err();
        assert!(matches!(err, ApiError::ValidationFailed(_)));
    }

    #[test]
    fn instance_checkpoint_resumes_identically() {
        let mut original = Instance::deploy(
            Box::new(ToyOperator),
            BugToggles::all_injected(),
            PlatformBugs::none(),
        )
        .unwrap();
        let cp = original.checkpoint();
        assert_eq!(cp.time(), original.cluster.now());
        let mut restored =
            Instance::from_checkpoint(Box::new(ToyOperator), BugToggles::all_injected(), &cp);
        assert_eq!(restored.cluster.now(), original.cluster.now());
        assert_eq!(restored.cr_spec(), original.cr_spec());
        // Both futures submit the same declaration and must converge to the
        // same state in the same simulated time.
        for inst in [&mut original, &mut restored] {
            inst.submit(Value::object([("replicas", Value::from(5))]))
                .unwrap();
            assert!(inst.converge(CONVERGE_RESET, CONVERGE_MAX));
        }
        assert_eq!(original.cluster.now(), restored.cluster.now());
        assert_eq!(original.state_snapshot(), restored.state_snapshot());
        assert_eq!(original.last_health, restored.last_health);
    }

    #[test]
    fn checkpoint_preserves_crash_loop_state() {
        let mut instance = Instance::deploy(
            Box::new(ToyOperator),
            BugToggles::all_injected(),
            PlatformBugs::none(),
        )
        .unwrap();
        instance
            .submit(Value::object([
                ("replicas", Value::from(2)),
                ("boom", Value::from(true)),
            ]))
            .unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(instance.operator_crashed());
        let cp = instance.checkpoint();
        let mut restored =
            Instance::from_checkpoint(Box::new(ToyOperator), BugToggles::all_injected(), &cp);
        assert!(restored.operator_crashed());
        // Recovery works the same way after restore.
        restored
            .submit(Value::object([("replicas", Value::from(3))]))
            .unwrap();
        assert!(restored.converge(CONVERGE_RESET, CONVERGE_MAX));
        assert!(!restored.operator_crashed());
        assert_eq!(restored.operator_restarts, 1);
    }

    #[test]
    fn crash_point_aborts_pass_and_restarts_after_downtime() {
        let mut instance = Instance::deploy(
            Box::new(ToyOperator),
            BugToggles::all_injected(),
            PlatformBugs::none(),
        )
        .unwrap();
        let restarts_before = instance.operator_restarts;
        // Kill the process at its next state-changing write, down for 5s.
        instance.cluster.api_mut().arm_operator_crash(1, 5);
        instance
            .submit(Value::object([("replicas", Value::from(4))]))
            .unwrap();
        assert!(instance.converge(CONVERGE_RESET, CONVERGE_MAX));
        // The crash fired, the process restarted, and the system still
        // reached the declared state.
        assert_eq!(instance.crash_transcript().len(), 1);
        assert!(!instance.operator_down());
        assert_eq!(instance.operator_restarts, restarts_before + 1);
        assert_eq!(instance.cluster.pod_summaries("acto").len(), 4);
        let event = &instance.crash_transcript()[0];
        assert_eq!(event.restart_at, event.time + 5);
        assert!(instance
            .cluster
            .logs()
            .iter()
            .any(|l| l.source == "crash-point" && l.message.contains("restarted")));
    }

    #[test]
    fn checkpoint_preserves_crash_point_downtime() {
        let mut instance = Instance::deploy(
            Box::new(ToyOperator),
            BugToggles::all_injected(),
            PlatformBugs::none(),
        )
        .unwrap();
        instance.cluster.api_mut().arm_operator_crash(1, 50);
        instance
            .submit(Value::object([("replicas", Value::from(4))]))
            .unwrap();
        // Tick until the crash fires, then checkpoint mid-downtime.
        while instance.crash_transcript().is_empty() {
            instance.tick();
        }
        assert!(instance.operator_down());
        let cp = instance.checkpoint();
        let mut restored =
            Instance::from_checkpoint(Box::new(ToyOperator), BugToggles::all_injected(), &cp);
        assert!(restored.operator_down());
        assert_eq!(restored.crash_transcript(), instance.crash_transcript());
        // Both futures ride out the downtime identically.
        for inst in [&mut instance, &mut restored] {
            assert!(inst.converge(CONVERGE_RESET, CONVERGE_MAX));
        }
        assert_eq!(instance.cluster.now(), restored.cluster.now());
        assert_eq!(instance.state_snapshot(), restored.state_snapshot());
        assert_eq!(instance.operator_restarts, restored.operator_restarts);
    }

    #[test]
    fn state_snapshot_is_uniform() {
        let instance = Instance::deploy(
            Box::new(ToyOperator),
            BugToggles::all_injected(),
            PlatformBugs::none(),
        )
        .unwrap();
        let snap = instance.state_snapshot();
        assert!(snap.keys().any(|k| k.starts_with("Pod/acto/")));
        assert!(snap.keys().any(|k| k.starts_with("ToyCluster/acto/")));
        for v in snap.values() {
            assert!(v.get("spec").is_some());
            assert!(v.get("metadata").is_some());
        }
    }
}
