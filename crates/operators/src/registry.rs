//! The operator registry: Table 4's inventory plus factories.

use crate::framework::Operator;
use crate::ops;

/// Static facts about one evaluated operator (the paper's Table 4).
#[derive(Debug, Clone)]
pub struct OperatorInfo {
    /// Registry name.
    pub name: &'static str,
    /// Managed system.
    pub system: &'static str,
    /// Developer (official team or vendor).
    pub developer: &'static str,
    /// GitHub stars at evaluation time (paper's snapshot).
    pub stars: u32,
    /// Lines of operator code (paper's snapshot, thousands).
    pub loc_thousands: f64,
    /// Number of pre-existing manual e2e tests.
    pub e2e_tests: u32,
    /// Parallel workers the paper used for this operator's campaign
    /// (Table 8).
    pub workers: u32,
}

/// All eleven evaluated operators, in Table 4 order.
pub fn all_operators() -> &'static [OperatorInfo] {
    const OPS: &[OperatorInfo] = &[
        OperatorInfo {
            name: "CassOp",
            system: "cassandra",
            developer: "K8ssandra",
            stars: 148,
            loc_thousands: 23.1,
            e2e_tests: 48,
            workers: 16,
        },
        OperatorInfo {
            name: "CockroachOp",
            system: "cockroachdb",
            developer: "Official",
            stars: 238,
            loc_thousands: 17.4,
            e2e_tests: 21,
            workers: 16,
        },
        OperatorInfo {
            name: "KnativeOp",
            system: "knative",
            developer: "Official",
            stars: 157,
            loc_thousands: 16.3,
            e2e_tests: 7,
            workers: 16,
        },
        OperatorInfo {
            name: "OCK/RedisOp",
            system: "redis",
            developer: "OCK",
            stars: 531,
            loc_thousands: 2.5,
            e2e_tests: 0,
            workers: 16,
        },
        OperatorInfo {
            name: "OFC/MongoOp",
            system: "mongodb",
            developer: "Official",
            stars: 977,
            loc_thousands: 17.1,
            e2e_tests: 62,
            workers: 16,
        },
        OperatorInfo {
            name: "PCN/MongoOp",
            system: "mongodb",
            developer: "Percona",
            stars: 268,
            loc_thousands: 15.0,
            e2e_tests: 31,
            workers: 12,
        },
        OperatorInfo {
            name: "RabbitMQOp",
            system: "rabbitmq",
            developer: "Official",
            stars: 669,
            loc_thousands: 14.7,
            e2e_tests: 8,
            workers: 16,
        },
        OperatorInfo {
            name: "SAH/RedisOp",
            system: "redis",
            developer: "Spotahome",
            stars: 1303,
            loc_thousands: 10.5,
            e2e_tests: 1,
            workers: 16,
        },
        OperatorInfo {
            name: "TiDBOp",
            system: "tidb",
            developer: "Official",
            stars: 1130,
            loc_thousands: 132.8,
            e2e_tests: 131,
            workers: 12,
        },
        OperatorInfo {
            name: "XtraDBOp",
            system: "xtradb",
            developer: "Percona",
            stars: 448,
            loc_thousands: 15.5,
            e2e_tests: 37,
            workers: 8,
        },
        OperatorInfo {
            name: "ZooKeeperOp",
            system: "zookeeper",
            developer: "Pravega",
            stars: 332,
            loc_thousands: 5.5,
            e2e_tests: 8,
            workers: 16,
        },
    ];
    OPS
}

/// The names of all evaluated operators.
pub fn operator_names() -> Vec<&'static str> {
    all_operators().iter().map(|o| o.name).collect()
}

/// Table-4 facts for one operator.
pub fn operator_info(name: &str) -> Option<&'static OperatorInfo> {
    all_operators().iter().find(|o| o.name == name)
}

/// Instantiates an operator by registry name, or `None` for a name outside
/// the closed set of evaluated operators. Configuration boundaries
/// (campaign and fuzz entry points) use this to reject typos with an error
/// listing the valid names instead of aborting mid-run.
pub fn try_operator_by_name(name: &str) -> Option<Box<dyn Operator>> {
    Some(match name {
        "CassOp" => Box::new(ops::cassandra::CassOp) as Box<dyn Operator>,
        "CockroachOp" => Box::new(ops::cockroach::CockroachOp),
        "KnativeOp" => Box::new(ops::knative::KnativeOp),
        "OCK/RedisOp" => Box::new(ops::redis_ock::RedisOckOp),
        "OFC/MongoOp" => Box::new(ops::mongodb_ofc::MongoOfcOp),
        "PCN/MongoOp" => Box::new(ops::mongodb_pcn::MongoPcnOp),
        "RabbitMQOp" => Box::new(ops::rabbitmq::RabbitMqOp),
        "SAH/RedisOp" => Box::new(ops::redis_sah::RedisSahOp),
        "TiDBOp" => Box::new(ops::tidb::TiDbOp),
        "XtraDBOp" => Box::new(ops::xtradb::XtraDbOp),
        "ZooKeeperOp" => Box::new(ops::zookeeper::ZooKeeperOp),
        _ => return None,
    })
}

/// Instantiates an operator by registry name.
///
/// # Panics
///
/// Panics on an unknown name; the set of evaluated operators is closed.
/// Use [`try_operator_by_name`] where an unknown name is user input rather
/// than a programming error.
pub fn operator_by_name(name: &str) -> Box<dyn Operator> {
    try_operator_by_name(name)
        .unwrap_or_else(|| panic!("unknown operator {name:?}; valid: {:?}", operator_names()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs;
    use crdspec::validate;

    #[test]
    fn unknown_names_are_fallible_not_fatal() {
        assert!(try_operator_by_name("ZooKeeperOp").is_some());
        assert!(try_operator_by_name("NoSuchOp").is_none());
        assert!(try_operator_by_name("").is_none());
        assert!(try_operator_by_name("zookeeperop").is_none());
        for name in operator_names() {
            assert_eq!(try_operator_by_name(name).expect("registered").name(), name);
        }
    }

    #[test]
    fn registry_has_eleven_operators() {
        assert_eq!(all_operators().len(), 11);
        for info in all_operators() {
            let op = operator_by_name(info.name);
            assert_eq!(op.name(), info.name);
            assert_eq!(op.system(), info.system);
        }
    }

    #[test]
    fn initial_crs_validate_against_schemas() {
        for info in all_operators() {
            let op = operator_by_name(info.name);
            let errors = validate(&op.schema(), &op.initial_cr());
            assert!(
                errors.is_empty(),
                "{}: initial CR invalid: {errors:?}",
                info.name
            );
        }
    }

    #[test]
    fn irs_are_structurally_valid() {
        for info in all_operators() {
            let op = operator_by_name(info.name);
            op.ir().validate().unwrap_or_else(|e| {
                panic!("{}: invalid IR: {e}", info.name);
            });
        }
    }

    #[test]
    fn bug_trigger_properties_exist_in_schemas() {
        for bug in bugs::all_bugs() {
            let op = operator_by_name(bug.operator);
            let schema = op.schema();
            let path: crdspec::Path = bug
                .trigger_property
                .parse()
                .unwrap_or_else(|e| panic!("{}: bad trigger path: {e}", bug.id));
            assert!(
                schema.at(&path).is_some(),
                "{}: trigger property {} not in {} schema",
                bug.id,
                bug.trigger_property,
                bug.operator
            );
        }
    }

    #[test]
    fn schemas_are_rich_operation_interfaces() {
        let mut total = 0;
        for info in all_operators() {
            let op = operator_by_name(info.name);
            let count = op.schema().property_count();
            assert!(count >= 25, "{}: only {count} properties", info.name);
            total += count;
        }
        assert!(total >= 500, "total properties across operators: {total}");
    }

    #[test]
    fn every_operator_deploys_cleanly() {
        use crate::bugs::BugToggles;
        use crate::framework::Instance;
        for info in all_operators() {
            let instance = Instance::deploy(
                operator_by_name(info.name),
                BugToggles::all_injected(),
                simkube::PlatformBugs::none(),
            )
            .unwrap_or_else(|e| panic!("{}: deploy failed: {e}", info.name));
            assert!(
                instance.last_health.is_healthy(),
                "{}: unhealthy after deploy: {:?}",
                info.name,
                instance.last_health
            );
        }
    }
}
