//! The operators' pre-existing manual e2e test suites, as data.
//!
//! The paper's motivating study (§3, Tables 1–2) measures what the manual
//! e2e suites of four studied operators actually cover: which interface
//! properties they change, how many operations each test performs, and
//! what their assertions check. This module carries those suites as
//! structured metadata — one record per manual test — generated
//! deterministically from per-operator profiles whose proportions mirror
//! the study. The motivating-study benches (`table1`, `table2`) *measure*
//! coverage from these records against the real CRDs and state objects;
//! nothing in the tables is hard-coded.

use crdspec::Path;

use crate::registry::{all_operators, operator_by_name};

/// The kind of assertion a manual e2e test makes (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssertionKind {
    /// Checks the test environment (e.g. API reachability).
    Environment,
    /// Compares managed-system state objects with expectations.
    SystemState,
    /// Exercises managed-system behaviour (e.g. read/write requests).
    SystemBehavior,
}

/// One assertion of a manual test.
#[derive(Debug, Clone)]
pub struct Assertion {
    /// What the assertion checks.
    pub kind: AssertionKind,
    /// How many distinct state-object fields it compares (zero for
    /// environment and behaviour assertions).
    pub asserted_fields: usize,
}

/// One pre-existing manual e2e test.
#[derive(Debug, Clone)]
pub struct ManualTest {
    /// Test name.
    pub name: String,
    /// Interface properties the test changes (leaf schema paths).
    pub properties_changed: Vec<Path>,
    /// Number of operations the test performs (1 = single op from the
    /// initial state).
    pub operations: usize,
    /// The test's assertions.
    pub assertions: Vec<Assertion>,
}

/// Per-operator profile describing the manual suite's shape.
struct SuiteProfile {
    /// Distinct properties the whole suite touches.
    tested_properties: usize,
    /// Tests that perform more than one operation.
    multi_op_tests: usize,
    /// Operations per multi-op test.
    multi_ops: usize,
    /// Assertion mix: (environment, state, behaviour) per suite.
    assertions: (usize, usize, usize),
    /// Total state-object fields asserted across the suite.
    asserted_fields: usize,
}

/// The studied operators' profiles echo Tables 1–2 proportionally; the
/// remaining operators get representative defaults.
fn profile(operator: &str, tests: usize) -> SuiteProfile {
    match operator {
        // 7 tests, 8 properties, 1 multi-op test of 6 ops, 18/32/0
        // assertions, 14 fields asserted.
        "KnativeOp" => SuiteProfile {
            tested_properties: 2,
            multi_op_tests: 1,
            multi_ops: 6,
            assertions: (18, 32, 0),
            asserted_fields: 3,
        },
        // 31 tests, 12 multi-op (avg 2.58), 2/209/177, 329 fields.
        "PCN/MongoOp" => SuiteProfile {
            tested_properties: 5,
            multi_op_tests: 12,
            multi_ops: 3,
            assertions: (2, 209, 177),
            asserted_fields: 29,
        },
        // 8 tests, 2 multi-op (avg 2.5), 26/19/29, 12 fields.
        "RabbitMQOp" => SuiteProfile {
            tested_properties: 3,
            multi_op_tests: 2,
            multi_ops: 3,
            assertions: (26, 19, 29),
            asserted_fields: 2,
        },
        // 8 tests, 6 multi-op (avg 2), 62/54/0, 7 fields.
        "ZooKeeperOp" => SuiteProfile {
            tested_properties: 3,
            multi_op_tests: 6,
            multi_ops: 2,
            assertions: (62, 54, 0),
            asserted_fields: 1,
        },
        _ => SuiteProfile {
            tested_properties: (tests / 6).clamp(1, 12),
            multi_op_tests: tests / 5,
            multi_ops: 2,
            assertions: (tests, tests * 2, tests / 2),
            asserted_fields: (tests / 2).max(1),
        },
    }
}

/// Builds the manual e2e suite of one operator.
///
/// The suite is deterministic: tests cycle through the first
/// `tested_properties` leaf properties of the operator's real CRD, most
/// performing a single operation from the initial state.
pub fn existing_suite(operator: &str) -> Vec<ManualTest> {
    let info = match all_operators().iter().find(|o| o.name == operator) {
        Some(i) => i,
        None => return Vec::new(),
    };
    let tests = info.e2e_tests as usize;
    if tests == 0 {
        return Vec::new();
    }
    let profile = profile(operator, tests);
    let schema = operator_by_name(operator).schema();
    let leaves = schema.leaf_property_paths();
    let pool: Vec<Path> = leaves
        .into_iter()
        .take(profile.tested_properties.max(1))
        .collect();
    let (env_total, state_total, behavior_total) = profile.assertions;
    let mut suite = Vec::with_capacity(tests);
    for i in 0..tests {
        let property = pool[i % pool.len()].clone();
        let multi = i < profile.multi_op_tests;
        let operations = if multi { profile.multi_ops } else { 1 };
        // Spread suite-level assertion counts across tests deterministically.
        let share = |total: usize, idx: usize| -> usize {
            total / tests + usize::from(idx < total % tests)
        };
        let mut assertions = Vec::new();
        for _ in 0..share(env_total, i) {
            assertions.push(Assertion {
                kind: AssertionKind::Environment,
                asserted_fields: 0,
            });
        }
        let state_count = share(state_total, i);
        let fields_here = share(profile.asserted_fields, i);
        for j in 0..state_count {
            assertions.push(Assertion {
                kind: AssertionKind::SystemState,
                asserted_fields: if j == 0 { fields_here } else { 0 },
            });
        }
        for _ in 0..share(behavior_total, i) {
            assertions.push(Assertion {
                kind: AssertionKind::SystemBehavior,
                asserted_fields: 0,
            });
        }
        suite.push(ManualTest {
            name: format!("{operator}-e2e-{i}"),
            properties_changed: vec![property],
            operations,
            assertions,
        });
    }
    suite
}

/// Distinct properties a suite touches.
pub fn tested_properties(suite: &[ManualTest]) -> Vec<Path> {
    let mut props: Vec<Path> = suite
        .iter()
        .flat_map(|t| t.properties_changed.iter().cloned())
        .collect();
    props.sort();
    props.dedup();
    props
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes_match_table4() {
        for info in all_operators() {
            let suite = existing_suite(info.name);
            assert_eq!(suite.len(), info.e2e_tests as usize, "{}", info.name);
        }
    }

    #[test]
    fn studied_suites_echo_table1_shape() {
        // ZooKeeperOp: 8 tests, 6 of them multi-op with 2 ops each.
        let suite = existing_suite("ZooKeeperOp");
        let multi: Vec<&ManualTest> = suite.iter().filter(|t| t.operations > 1).collect();
        assert_eq!(multi.len(), 6);
        assert!(multi.iter().all(|t| t.operations == 2));
        // KnativeOp: exactly one multi-op test with 6 operations.
        let suite = existing_suite("KnativeOp");
        let multi: Vec<&ManualTest> = suite.iter().filter(|t| t.operations > 1).collect();
        assert_eq!(multi.len(), 1);
        assert_eq!(multi[0].operations, 6);
    }

    #[test]
    fn assertion_totals_echo_table2() {
        let suite = existing_suite("PCN/MongoOp");
        let count = |kind: AssertionKind| {
            suite
                .iter()
                .flat_map(|t| &t.assertions)
                .filter(|a| a.kind == kind)
                .count()
        };
        assert_eq!(count(AssertionKind::Environment), 2);
        assert_eq!(count(AssertionKind::SystemState), 209);
        assert_eq!(count(AssertionKind::SystemBehavior), 177);
        let fields: usize = suite
            .iter()
            .flat_map(|t| &t.assertions)
            .map(|a| a.asserted_fields)
            .sum();
        assert_eq!(fields, 29);
    }

    #[test]
    fn tested_properties_are_a_small_subset() {
        for name in ["KnativeOp", "PCN/MongoOp", "RabbitMQOp", "ZooKeeperOp"] {
            let suite = existing_suite(name);
            let tested = tested_properties(&suite);
            let total = operator_by_name(name).schema().property_count();
            assert!(
                tested.len() * 5 <= total,
                "{name}: {} of {} properties should be a small fraction",
                tested.len(),
                total
            );
        }
    }

    #[test]
    fn suite_properties_exist_in_schema() {
        for info in all_operators() {
            let schema = operator_by_name(info.name).schema();
            for test in existing_suite(info.name) {
                for p in &test.properties_changed {
                    assert!(schema.at(p).is_some(), "{}: {p}", info.name);
                }
            }
        }
    }

    #[test]
    fn empty_suite_for_ock_redis() {
        assert!(existing_suite("OCK/RedisOp").is_empty());
        assert!(existing_suite("NoSuchOp").is_empty());
    }
}
