//! Multi-operator composition: several operator [`Instance`]s sharing one
//! simulated cluster.
//!
//! Real clusters run many operators side by side; Acto (§3) tests one at a
//! time. A [`Composition`] deploys an ordered set of operators into a
//! single [`SimCluster`], each in its own namespace, and drives them in
//! deterministic order: one shared cluster step per tick, then every
//! member's post-step (model tick + reconcile pass). Operators hard-code
//! the conventional deployment namespace, so each non-first member's
//! post-step runs under a store namespace alias that re-scopes keyed
//! operations into the member's sandbox — while raw enumeration stays
//! unaliased, which is how one operator's overly broad garbage collection
//! can reach into a sibling's namespace. Every cross-namespace touch is
//! recorded as an [`InterferenceEvent`] for the composition oracle.

use std::mem;

use crdspec::Value;
use simkube::store::WatchEventKind;
use simkube::{ApiError, ClusterConfig, PlatformBugs, SimCluster};

use crate::bugs::BugToggles;
use crate::framework::{
    Instance, InstanceCheckpoint, Operator, CONVERGE_MAX, CONVERGE_RESET, NAMESPACE,
};

/// Namespace of composition member `index`: the first member keeps the
/// conventional [`NAMESPACE`]; later members get `{NAMESPACE}{index}`.
pub fn member_namespace(index: usize) -> String {
    if index == 0 {
        NAMESPACE.to_string()
    } else {
        format!("{NAMESPACE}{index}")
    }
}

/// One observed cross-member store touch: during `actor`'s post-step, an
/// object in another member's namespace was created, modified, or deleted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterferenceEvent {
    /// Simulated time of the touch.
    pub time: u64,
    /// Operator name of the acting member.
    pub actor: String,
    /// Namespace the acting member owns.
    pub actor_namespace: String,
    /// Namespace of the object touched (another member's).
    pub victim_namespace: String,
    /// The object touched, as `Kind/namespace/name`.
    pub key: String,
    /// `true` when the touch deleted the object.
    pub deleted: bool,
}

impl InterferenceEvent {
    /// Transcript rendering.
    pub fn render(&self) -> String {
        let verb = if self.deleted { "deleted" } else { "wrote" };
        format!(
            "t={} {} ({}) {} {}",
            self.time, self.actor, self.actor_namespace, verb, self.key
        )
    }
}

/// A resumable snapshot of a whole composition: one per-member checkpoint
/// (each capturing the shared cluster copy-on-write) plus the interference
/// log. See [`Composition::checkpoint`].
#[derive(Debug, Clone)]
pub struct CompositionCheckpoint {
    members: Vec<InstanceCheckpoint>,
    interference: Vec<InterferenceEvent>,
}

impl CompositionCheckpoint {
    /// Simulated time at which the checkpoint was taken.
    pub fn time(&self) -> u64 {
        self.members[0].time()
    }

    /// Number of member instances captured.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// Copy-on-write sharing accounting summed over every member
    /// checkpoint: objects shared with other snapshots versus uniquely
    /// owned (see [`InstanceCheckpoint::sharing_stats`]).
    pub fn sharing_stats(&self) -> (usize, usize) {
        let mut shared = 0;
        let mut owned = 0;
        for m in &self.members {
            let (s, o) = m.sharing_stats();
            shared += s;
            owned += o;
        }
        (shared, owned)
    }
}

/// An ordered set of operator instances sharing one simulated cluster.
///
/// The shared cluster lives here; each member [`Instance`] holds a cheap
/// placeholder that is swapped with the shared cluster for the duration of
/// that member's operations, so all of the single-operator harness code
/// (reconcile bracketing, crash points, health reflection) runs unchanged.
pub struct Composition {
    cluster: SimCluster,
    members: Vec<Instance>,
    interference: Vec<InterferenceEvent>,
}

fn placeholder_cluster() -> SimCluster {
    SimCluster::new(ClusterConfig::default())
}

impl Composition {
    /// Deploys `operators` in order into one shared cluster: the first
    /// member deploys and converges alone (exactly like a single-operator
    /// campaign), then each later member joins in `{NAMESPACE}{i}` and the
    /// whole composition converges together.
    pub fn deploy(
        operators: Vec<Box<dyn Operator>>,
        bugs: BugToggles,
        platform: PlatformBugs,
    ) -> Result<Composition, ApiError> {
        Self::deploy_on(operators, bugs, platform, None)
    }

    /// Like [`Composition::deploy`], but the shared cluster is built from a
    /// generated node topology (see [`Instance::deploy_on`]).
    pub fn deploy_on(
        operators: Vec<Box<dyn Operator>>,
        bugs: BugToggles,
        platform: PlatformBugs,
        topology: Option<simkube::NodeTopology>,
    ) -> Result<Composition, ApiError> {
        assert!(
            !operators.is_empty(),
            "composition needs at least one operator"
        );
        let mut ops = operators.into_iter();
        let first = Instance::deploy_on(
            ops.next().expect("non-empty"),
            bugs.clone(),
            platform,
            topology,
        )?;
        let mut members = vec![first];
        let mut cluster = mem::replace(&mut members[0].cluster, placeholder_cluster());
        for (i, op) in ops.enumerate() {
            let namespace = member_namespace(i + 1);
            let joined = Instance::deploy_into(op, bugs.clone(), cluster, &namespace)?;
            members.push(joined);
            cluster = mem::replace(
                &mut members.last_mut().expect("just pushed").cluster,
                placeholder_cluster(),
            );
        }
        let mut composition = Composition {
            cluster,
            members,
            interference: Vec::new(),
        };
        if composition.members.len() > 1 {
            composition.converge(CONVERGE_RESET, CONVERGE_MAX);
        }
        Ok(composition)
    }

    /// Rebuilds a live composition from a checkpoint with freshly
    /// constructed operators, one per member, in member order.
    pub fn from_checkpoint(
        operators: Vec<Box<dyn Operator>>,
        bugs: &BugToggles,
        cp: &CompositionCheckpoint,
    ) -> Composition {
        assert_eq!(
            operators.len(),
            cp.members.len(),
            "one operator per checkpointed member"
        );
        let mut members: Vec<Instance> = operators
            .into_iter()
            .zip(&cp.members)
            .map(|(op, mcp)| Instance::from_checkpoint(op, bugs.clone(), mcp))
            .collect();
        let cluster = mem::replace(&mut members[0].cluster, placeholder_cluster());
        Composition {
            cluster,
            members,
            interference: cp.interference.clone(),
        }
    }

    /// Takes a copy-on-write checkpoint of every member plus the
    /// interference log. Each member checkpoint captures the shared
    /// cluster (structural sharing makes the per-member copies cheap).
    pub fn checkpoint(&mut self) -> CompositionCheckpoint {
        let members = (0..self.members.len())
            .map(|i| self.with_member(i, |m| m.checkpoint()))
            .collect();
        CompositionCheckpoint {
            members,
            interference: self.interference.clone(),
        }
    }

    /// Runs `f` on member `index` with the shared cluster swapped in.
    ///
    /// This is the only correct way to read a member's cluster-derived
    /// state (`cr_spec`, snapshots, pod failures): while parked, members
    /// hold a placeholder cluster and those accessors see nothing. Plain
    /// struct fields (`last_health`, `namespace`) stay valid while parked.
    pub fn with_member<R>(&mut self, index: usize, f: impl FnOnce(&mut Instance) -> R) -> R {
        mem::swap(&mut self.cluster, &mut self.members[index].cluster);
        let result = f(&mut self.members[index]);
        mem::swap(&mut self.cluster, &mut self.members[index].cluster);
        result
    }

    /// The member instances, in deployment order. Note that members hold
    /// placeholder clusters while parked; read shared-cluster state via
    /// [`Composition::cluster`].
    pub fn members(&self) -> &[Instance] {
        &self.members
    }

    /// Number of members.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// The shared cluster.
    pub fn cluster(&self) -> &SimCluster {
        &self.cluster
    }

    /// The shared cluster, mutably (fault installation, crash arming).
    pub fn cluster_mut(&mut self) -> &mut SimCluster {
        &mut self.cluster
    }

    /// Current simulated time.
    pub fn now(&self) -> u64 {
        self.cluster.now()
    }

    /// Cross-member touches observed so far.
    pub fn interference(&self) -> &[InterferenceEvent] {
        &self.interference
    }

    /// Drains the interference log (campaigns scope it per trial).
    pub fn drain_interference(&mut self) -> Vec<InterferenceEvent> {
        mem::take(&mut self.interference)
    }

    /// Submits a new desired-state declaration to member `index`.
    pub fn submit(&mut self, index: usize, spec: Value) -> Result<(), ApiError> {
        self.with_member(index, |m| m.submit(spec))
    }

    /// Advances the world one simulated second: one shared cluster step,
    /// then every member's post-step in order, recording any
    /// cross-namespace touches each member makes.
    pub fn tick(&mut self) {
        self.cluster.step();
        for i in 0..self.members.len() {
            let before = self.cluster.api().store().revision();
            self.with_member(i, |m| m.post_step());
            self.record_interference(i, before);
        }
    }

    fn record_interference(&mut self, actor: usize, after_revision: u64) {
        let actor_ns = self.members[actor].namespace.clone();
        let member_namespaces: Vec<String> =
            self.members.iter().map(|m| m.namespace.clone()).collect();
        let mut hits = Vec::new();
        for ev in self.cluster.api().store().events_since(after_revision) {
            let ns = ev.key.namespace.as_str();
            if ns == actor_ns || ns.is_empty() {
                continue;
            }
            if !member_namespaces.iter().any(|m| m == ns) {
                continue;
            }
            hits.push(InterferenceEvent {
                time: ev.time,
                actor: self.members[actor].operator().name().to_string(),
                actor_namespace: actor_ns.clone(),
                victim_namespace: ns.to_string(),
                key: format!("{}/{}/{}", ev.key.kind.name(), ns, ev.key.name),
                deleted: ev.kind == WatchEventKind::Deleted,
            });
        }
        self.interference.extend(hits);
    }

    /// Observable fingerprint of the whole composition: the shared
    /// cluster's quiescence fingerprint, every member's harness state, and
    /// the interference count.
    #[allow(clippy::type_complexity)]
    fn fingerprint(
        &self,
    ) -> (
        simkube::ClusterFingerprint,
        Vec<(
            simkube::ClusterFingerprint,
            Option<u64>,
            u32,
            Option<u64>,
            usize,
            managed::Health,
        )>,
        usize,
    ) {
        (
            self.cluster.quiescence_fingerprint(),
            self.members.iter().map(|m| m.fingerprint()).collect(),
            self.interference.len(),
        )
    }

    /// Runs [`Composition::tick`] until no state event occurs for
    /// `reset_timeout` seconds or `max_seconds` pass — the same reset-timer
    /// convergence as [`Instance::converge`], over all members at once.
    pub fn converge(&mut self, reset_timeout: u64, max_seconds: u64) -> bool {
        let start = self.cluster.now();
        let mut last_event_time = start;
        let mut last_revision = self.cluster.api().store().revision();
        let ticked = simkube::ticked_engine();
        let mut fingerprint = self.fingerprint();
        while self.cluster.now() - start < max_seconds {
            self.tick();
            let revision = self.cluster.api().store().revision();
            if revision != last_revision {
                last_revision = revision;
                last_event_time = self.cluster.now();
            } else if self.cluster.now() - last_event_time >= reset_timeout
                && self.members.iter().all(|m| !m.operator_down())
            {
                return true;
            }
            if !ticked {
                let after = self.fingerprint();
                if after == fingerprint {
                    let mut target = (last_event_time + reset_timeout).min(start + max_seconds);
                    if let Some(wake) = self.cluster.next_wakeup() {
                        target = target.min(wake);
                    }
                    for member in &self.members {
                        if let Some(down) = member.operator_down_at() {
                            target = target.min(down);
                        }
                    }
                    if target > self.cluster.now() + 1 {
                        self.cluster.fast_forward_to(target - 1);
                    }
                } else {
                    fingerprint = after;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::operator_by_name;

    fn compose(names: &[&str], bugs: BugToggles) -> Composition {
        Composition::deploy(
            names.iter().map(|n| operator_by_name(n)).collect(),
            bugs,
            simkube::PlatformBugs::none(),
        )
        .expect("deploys")
    }

    #[test]
    fn two_members_deploy_into_separate_namespaces() {
        let comp = compose(&["ZooKeeperOp", "RabbitMQOp"], BugToggles::all_injected());
        assert_eq!(comp.member_count(), 2);
        assert_eq!(comp.members()[0].namespace, "acto");
        assert_eq!(comp.members()[1].namespace, "acto1");
        // Both members converged to healthy systems on the one cluster.
        for member in comp.members() {
            assert!(
                member.last_health.is_healthy(),
                "{} unhealthy: {:?}",
                member.operator().name(),
                member.last_health
            );
        }
        assert!(!comp.cluster().pod_summaries("acto").is_empty());
        assert!(!comp.cluster().pod_summaries("acto1").is_empty());
        assert!(comp.interference().is_empty());
    }

    #[test]
    fn members_reconverge_independently() {
        let mut comp = compose(&["ZooKeeperOp", "RabbitMQOp"], BugToggles::all_injected());
        let pods_before = comp.cluster().pod_summaries("acto1").len();
        // Scale member 1 up by one replica; member 0 must be untouched.
        let mut spec = comp.members()[1].cr_spec().clone();
        let replicas = spec.get("replicas").and_then(Value::as_i64).unwrap_or(3);
        spec.set_path(
            &"replicas".parse().expect("path"),
            Value::from(replicas + 1),
        );
        let snapshot_before = comp.cluster().pod_summaries("acto");
        comp.submit(1, spec).expect("valid declaration");
        assert!(comp.converge(CONVERGE_RESET, CONVERGE_MAX));
        assert_eq!(comp.cluster().pod_summaries("acto1").len(), pods_before + 1);
        assert_eq!(comp.cluster().pod_summaries("acto"), snapshot_before);
        assert!(comp.interference().is_empty());
    }

    #[test]
    fn checkpoint_restores_all_members() {
        let mut comp = compose(&["ZooKeeperOp", "RabbitMQOp"], BugToggles::all_injected());
        let cp = comp.checkpoint();
        assert_eq!(cp.member_count(), 2);
        let mut restored = Composition::from_checkpoint(
            vec![
                operator_by_name("ZooKeeperOp"),
                operator_by_name("RabbitMQOp"),
            ],
            &BugToggles::all_injected(),
            &cp,
        );
        assert_eq!(restored.now(), comp.now());
        // Both futures tick identically.
        for c in [&mut comp, &mut restored] {
            c.converge(CONVERGE_RESET, 30);
        }
        assert_eq!(comp.now(), restored.now());
        assert_eq!(
            comp.cluster().api().store().revision(),
            restored.cluster().api().store().revision()
        );
    }

    #[test]
    fn seeded_cross_operator_gc_interferes() {
        let mut bugs = BugToggles::all_injected();
        bugs.seed(crate::bugs::SEEDED_CROSS_OPERATOR_GC);
        // TiDB first (it owns the conventional namespace and GCs raw), a
        // victim second.
        let comp = compose(&["TiDBOp", "ZooKeeperOp"], bugs);
        let deletions: Vec<_> = comp
            .interference()
            .iter()
            .filter(|e| e.deleted && e.actor == "TiDBOp")
            .collect();
        assert!(
            !deletions.is_empty(),
            "seeded GC should delete the neighbour's config"
        );
        assert!(deletions
            .iter()
            .all(|e| e.victim_namespace == "acto1" && e.key.contains("-config")));
    }
}
