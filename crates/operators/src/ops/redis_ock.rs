//! OCK/RedisOp: the OT-CONTAINER-KIT-style Redis operator (Table 4).
//!
//! Injected bugs: RED-OCK-1 (resources never applied), RED-OCK-2 (follower
//! PDB has no effect), RED-OCK-3 (security context not propagated),
//! RED-OCK-4 (node-selector removal ignored), RED-OCK-5 (panic on
//! unparsable storage quantity admitted under PLAT-2), RED-OCK-6 (panic on
//! TLS without a secret name), RED-OCK-7 (panic on an empty `save`
//! directive), RED-OCK-8 (stability gate blocks rollback).

use std::collections::BTreeMap;

use crdspec::{Schema, Semantic, Value};
use managed::Health;
use opdsl::{IrBuilder, IrModule};
use simkube::cluster::LogLevel;
use simkube::objects::{ClaimTemplate, Kind, ObjectData, PodPhase};
use simkube::store::ObjKey;
use simkube::SimCluster;

use crate::bugs::BugToggles;
use crate::common::*;
use crate::crd_parts::*;
use crate::framework::{Operator, OperatorError, INSTANCE, NAMESPACE};

/// The OT-CONTAINER-KIT-style Redis operator.
#[derive(Debug, Default)]
pub struct RedisOckOp;

impl RedisOckOp {
    fn has_failed_pod(cluster: &SimCluster) -> bool {
        cluster
            .api()
            .store()
            .list(&Kind::Pod, NAMESPACE)
            .iter()
            .any(|o| {
                o.meta.labels.get("app").map(String::as_str) == Some(INSTANCE)
                    && matches!(&o.data, ObjectData::Pod(p) if p.phase == PodPhase::Failed)
            })
    }
}

impl Operator for RedisOckOp {
    fn name(&self) -> &'static str {
        "OCK/RedisOp"
    }

    fn system(&self) -> &'static str {
        "redis"
    }

    fn kind(&self) -> &'static str {
        "RedisCluster"
    }

    fn schema(&self) -> Schema {
        Schema::object()
            .prop(
                "image",
                image_schema().default_value(Value::from("redis:7.0")),
            )
            .prop(
                "follower",
                Schema::object()
                    .prop(
                        "replicas",
                        Schema::integer().min(0).max(9).semantic(Semantic::Replicas),
                    )
                    .prop("pdb", pdb_schema()),
            )
            .prop("resources", resources_schema())
            .prop("securityContext", security_context_schema())
            .prop("nodeSelector", node_selector_schema())
            .prop("tolerations", tolerations_schema())
            .prop(
                "storage",
                Schema::object()
                    .prop(
                        "enabled",
                        Schema::boolean()
                            .semantic(Semantic::Toggle)
                            .default_value(Value::Bool(true)),
                    )
                    .prop(
                        "size",
                        Schema::string()
                            .format("quantity")
                            .semantic(Semantic::StorageSize),
                    )
                    .prop(
                        "storageClass",
                        Schema::string().semantic(Semantic::StorageClass),
                    ),
            )
            .prop("tls", tls_schema())
            .prop(
                "config",
                Schema::map(Schema::string()).semantic(Semantic::SystemConfig),
            )
            .prop("service", service_schema())
            .prop(
                "pod",
                pod_template_schema_without(&[
                    "resources",
                    "securityContext",
                    "nodeSelector",
                    "tolerations",
                ]),
            )
    }

    fn ir(&self) -> IrModule {
        let mut b = IrBuilder::new("redis-ock-op");
        b.passthrough("follower.replicas", "sts.followers");
        b.passthrough("image", "pod.image");
        b.passthrough("resources.requests.cpu", "pod.resources.requests.cpu");
        b.passthrough("resources.requests.memory", "pod.resources.requests.memory");
        b.guarded_passthrough(
            "storage.enabled",
            &[
                ("storage.size", "pvc.size"),
                ("storage.storageClass", "pvc.storageClass"),
            ],
        );
        b.guarded_passthrough("tls.enabled", &[("tls.secretName", "tls.secretName")]);
        b.guarded_passthrough(
            "follower.pdb.enabled",
            &[("follower.pdb.minAvailable", "pdb.minAvailable")],
        );
        b.passthrough("service.port", "service.port");
        b.ret();
        b.finish()
    }

    fn initial_cr(&self) -> Value {
        Value::object([
            ("image", Value::from("redis:7.0")),
            (
                "follower",
                Value::object([
                    ("replicas", Value::from(2)),
                    (
                        "pdb",
                        Value::object([
                            ("enabled", Value::from(false)),
                            ("minAvailable", Value::from(1)),
                        ]),
                    ),
                ]),
            ),
            (
                "resources",
                Value::object([(
                    "requests",
                    Value::object([
                        ("cpu", Value::from("100m")),
                        ("memory", Value::from("128Mi")),
                    ]),
                )]),
            ),
            (
                "storage",
                Value::object([
                    ("enabled", Value::from(true)),
                    ("size", Value::from("8Gi")),
                    ("storageClass", Value::from("standard")),
                ]),
            ),
            (
                "config",
                Value::object([
                    ("maxmemory", Value::from("256Mi")),
                    ("save", Value::from("900 1")),
                ]),
            ),
            ("service", Value::object([("port", Value::from(6379))])),
        ])
    }

    fn images(&self) -> Vec<String> {
        vec![
            "redis:7.0".to_string(),
            "redis:7.2".to_string(),
            "redis:6.2".to_string(),
        ]
    }

    fn reconcile(
        &mut self,
        cr: &Value,
        _health: &Health,
        cluster: &mut SimCluster,
        bugs: &BugToggles,
    ) -> Result<(), OperatorError> {
        // RED-OCK-8: the stability gate.
        let leader_name = format!("{INSTANCE}-leader");
        let follower_name = format!("{INSTANCE}-follower");
        let deployed = cluster
            .api()
            .get(&ObjKey::new(Kind::StatefulSet, NAMESPACE, &leader_name))
            .is_some();
        if bugs.injected("RED-OCK-8") && deployed && Self::has_failed_pod(cluster) {
            return Ok(());
        }
        let followers = i64_at(cr, "follower.replicas").unwrap_or(2).clamp(0, 9) as i32;
        let image = str_at(cr, "image").unwrap_or_else(|| "redis:7.0".to_string());

        // Storage. RED-OCK-5: the quantity is parsed with an unwrap; a
        // malformed value (admitted under PLAT-2) panics the operator.
        let storage_enabled = bool_at(cr, "storage.enabled").unwrap_or(true);
        let claims = if storage_enabled {
            let size_str = str_at(cr, "storage.size").unwrap_or_else(|| "8Gi".to_string());
            let size = if bugs.injected("RED-OCK-5") {
                quantity_or_panic(&size_str, "storage size")?
            } else {
                match size_str.parse() {
                    Ok(q) => q,
                    Err(e) => {
                        cluster.log(
                            LogLevel::Error,
                            self.name(),
                            format!("invalid storage size {size_str:?}: {e}; keeping default"),
                        );
                        "8Gi".parse().expect("literal")
                    }
                }
            };
            vec![ClaimTemplate {
                name: "data".to_string(),
                size,
                storage_class: str_at(cr, "storage.storageClass")
                    .unwrap_or_else(|| "standard".to_string()),
            }]
        } else {
            Vec::new()
        };

        // TLS. RED-OCK-6: enabling TLS without a secret name dereferences
        // nil.
        let mut tls_secret = String::new();
        if bool_at(cr, "tls.enabled").unwrap_or(false) {
            match str_at(cr, "tls.secretName") {
                Some(name) if !name.is_empty() => tls_secret = name,
                _ => {
                    if bugs.injected("RED-OCK-6") {
                        return Err(OperatorError::Panic(
                            "nil pointer: tls.secretName".to_string(),
                        ));
                    }
                    cluster.log(
                        LogLevel::Error,
                        self.name(),
                        "tls enabled without secretName; ignoring",
                    );
                }
            }
        }

        // Configuration. RED-OCK-7: an empty `save` directive panics the
        // renderer.
        let mut entries: BTreeMap<String, String> = BTreeMap::new();
        for (k, v) in map_at(cr, "config") {
            if k == "save" && v.trim().is_empty() {
                if bugs.injected("RED-OCK-7") {
                    return Err(OperatorError::Panic(
                        "index out of range rendering save directive".to_string(),
                    ));
                }
                cluster.log(
                    LogLevel::Error,
                    self.name(),
                    "ignoring empty save directive",
                );
                continue;
            }
            entries.insert(k, v);
        }
        entries.insert("followers".to_string(), followers.to_string());
        if !tls_secret.is_empty() {
            entries.insert("tlsSecret".to_string(), tls_secret);
        }
        let hash = config_hash(&entries);
        apply_config(cluster, NAMESPACE, INSTANCE, entries)?;

        // Pod template. RED-OCK-1 drops resources; RED-OCK-3 drops the
        // security context; RED-OCK-4 merges (never removes) the node
        // selector.
        let mut template = pod_template_at(cr, "pod", INSTANCE, Some("leader"), &image, &hash);
        if bugs.injected("RED-OCK-1") {
            template.containers[0].resources = Default::default();
        } else {
            template.containers[0].resources = resources_at(cr, "resources");
        }
        if bugs.injected("RED-OCK-3") {
            template.security = Default::default();
            template.containers[0].security = Default::default();
        } else {
            template.security = security_at(cr, "securityContext");
            template.containers[0].security = security_at(cr, "securityContext");
        }
        let declared_selector = map_at(cr, "nodeSelector");
        if bugs.injected("RED-OCK-4") {
            if let Some(obj) =
                cluster
                    .api()
                    .get(&ObjKey::new(Kind::StatefulSet, NAMESPACE, &leader_name))
            {
                if let ObjectData::StatefulSet(existing) = &obj.data {
                    let mut merged = existing.template.node_selector.clone();
                    merged.extend(declared_selector.clone());
                    template.node_selector = merged;
                }
            }
            if template.node_selector.is_empty() {
                template.node_selector = declared_selector;
            }
        } else {
            template.node_selector = declared_selector;
        }
        template.tolerations = tolerations_at(cr, "tolerations");
        // The leader and follower tiers run as separate stateful sets, as
        // the real operator deploys them.
        let mut follower_template = template.clone();
        follower_template
            .labels
            .insert("component".to_string(), "follower".to_string());
        follower_template.containers[0].name = "follower".to_string();
        apply_statefulset(
            cluster,
            NAMESPACE,
            &leader_name,
            1,
            template,
            claims.clone(),
        )?;
        apply_statefulset(
            cluster,
            NAMESPACE,
            &follower_name,
            followers,
            follower_template,
            claims,
        )?;

        // Follower PDB. RED-OCK-2: the field has no effect at all.
        if !bugs.injected("RED-OCK-2") {
            if bool_at(cr, "follower.pdb.enabled").unwrap_or(false) {
                let min = i64_at(cr, "follower.pdb.minAvailable").unwrap_or(1) as i32;
                apply_pdb(
                    cluster,
                    NAMESPACE,
                    &format!("{INSTANCE}-pdb"),
                    INSTANCE,
                    min,
                )?;
            } else {
                delete_if_exists(
                    cluster,
                    Kind::PodDisruptionBudget,
                    NAMESPACE,
                    &format!("{INSTANCE}-pdb"),
                );
            }
        }

        // Client service.
        let port = i64_at(cr, "service.port").unwrap_or(6379).clamp(1, 65535) as u16;
        let service_type = match str_at(cr, "service.type").as_deref() {
            Some("NodePort") => simkube::objects::ServiceType::NodePort,
            Some("LoadBalancer") => simkube::objects::ServiceType::LoadBalancer,
            _ => simkube::objects::ServiceType::ClusterIp,
        };
        apply_service(cluster, NAMESPACE, INSTANCE, INSTANCE, port, service_type)?;

        let ready = ready_pods(cluster, NAMESPACE, INSTANCE);
        let cr_key = ObjKey::new(Kind::Custom(self.kind().to_string()), NAMESPACE, INSTANCE);
        write_cr_status(cluster, &cr_key, ready, 1 + followers);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{Instance, CONVERGE_MAX, CONVERGE_RESET};
    use simkube::PlatformBugs;

    fn deploy(bugs: BugToggles) -> Instance {
        Instance::deploy(Box::new(RedisOckOp), bugs, PlatformBugs::none()).unwrap()
    }

    #[test]
    fn deploys_leader_and_followers() {
        let instance = deploy(BugToggles::all_injected());
        assert_eq!(instance.cluster.pod_summaries(NAMESPACE).len(), 3);
        assert!(instance.last_health.is_healthy());
    }

    #[test]
    fn ock1_resources_dropped_when_injected() {
        let instance = deploy(BugToggles::all_injected());
        let sts = instance
            .cluster
            .api()
            .get(&ObjKey::new(
                Kind::StatefulSet,
                NAMESPACE,
                "test-cluster-leader",
            ))
            .unwrap();
        if let ObjectData::StatefulSet(s) = &sts.data {
            assert!(s.template.containers[0].resources.requests.is_empty());
        }
        let mut fixed = BugToggles::all_injected();
        fixed.fix("RED-OCK-1");
        let instance = deploy(fixed);
        let sts = instance
            .cluster
            .api()
            .get(&ObjKey::new(
                Kind::StatefulSet,
                NAMESPACE,
                "test-cluster-leader",
            ))
            .unwrap();
        if let ObjectData::StatefulSet(s) = &sts.data {
            assert!(!s.template.containers[0].resources.requests.is_empty());
        }
    }

    #[test]
    fn ock2_pdb_has_no_effect_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(&"follower.pdb.enabled".parse().unwrap(), Value::from(true));
        spec.set_path(
            &"follower.pdb.minAvailable".parse().unwrap(),
            Value::from(2),
        );
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(instance
            .cluster
            .api()
            .get(&ObjKey::new(
                Kind::PodDisruptionBudget,
                NAMESPACE,
                "test-cluster-pdb"
            ))
            .is_none());
        let mut fixed = BugToggles::all_injected();
        fixed.fix("RED-OCK-2");
        let mut instance = deploy(fixed);
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(instance
            .cluster
            .api()
            .get(&ObjKey::new(
                Kind::PodDisruptionBudget,
                NAMESPACE,
                "test-cluster-pdb"
            ))
            .is_some());
    }

    #[test]
    fn ock5_bad_quantity_panics_under_buggy_platform() {
        // The malformed quantity "1e" passes the loose PLAT-2 validation
        // and reaches the unwrap site.
        let mut instance = Instance::deploy(
            Box::new(RedisOckOp),
            BugToggles::all_injected(),
            PlatformBugs::all(),
        )
        .unwrap();
        let mut spec = instance.cr_spec();
        spec.set_path(&"storage.size".parse().unwrap(), Value::from("1e"));
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(instance.operator_crashed());
    }

    #[test]
    fn ock6_tls_without_secret_panics_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(&"tls.enabled".parse().unwrap(), Value::from(true));
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(instance.operator_crashed());
        let mut fixed = BugToggles::all_injected();
        fixed.fix("RED-OCK-6");
        let mut instance = deploy(fixed);
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(!instance.operator_crashed());
    }

    #[test]
    fn ock8_gate_blocks_config_rollback() {
        let mut instance = deploy(BugToggles::all_injected());
        let good = instance.cr_spec();
        let mut bad = good.clone();
        bad.set_path(
            &"config".parse().unwrap(),
            Value::object([("maxmemory", Value::from("garbage"))]),
        );
        instance.submit(bad).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(!instance.last_health.is_healthy());
        instance.submit(good).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(!instance.last_health.is_healthy(), "gate blocks rollback");
        // With the gate fixed the rollback recovers the system.
        let mut fixed = BugToggles::all_injected();
        fixed.fix("RED-OCK-8");
        let mut instance = deploy(fixed);
        let good = instance.cr_spec();
        let mut bad = good.clone();
        bad.set_path(
            &"config".parse().unwrap(),
            Value::object([("maxmemory", Value::from("garbage"))]),
        );
        instance.submit(bad).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(!instance.last_health.is_healthy());
        instance.submit(good).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(instance.last_health.is_healthy());
    }
    #[test]
    fn ock3_security_context_dropped_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(
            &"securityContext.runAsUser".parse().unwrap(),
            Value::from(1000),
        );
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let sts = instance
            .cluster
            .api()
            .get(&ObjKey::new(
                Kind::StatefulSet,
                NAMESPACE,
                "test-cluster-leader",
            ))
            .unwrap();
        if let ObjectData::StatefulSet(s) = &sts.data {
            assert_eq!(s.template.security.run_as_user, None, "dropped");
        }
        let mut fixed = BugToggles::all_injected();
        fixed.fix("RED-OCK-3");
        let mut instance = deploy(fixed);
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let sts = instance
            .cluster
            .api()
            .get(&ObjKey::new(
                Kind::StatefulSet,
                NAMESPACE,
                "test-cluster-leader",
            ))
            .unwrap();
        if let ObjectData::StatefulSet(s) = &sts.data {
            assert_eq!(s.template.security.run_as_user, Some(1000));
        }
    }

    #[test]
    fn ock4_node_selector_removal_ignored_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(
            &"nodeSelector".parse().unwrap(),
            Value::object([("disk", Value::from("ssd"))]),
        );
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        spec.set_path(&"nodeSelector".parse().unwrap(), Value::empty_object());
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let sts = instance
            .cluster
            .api()
            .get(&ObjKey::new(
                Kind::StatefulSet,
                NAMESPACE,
                "test-cluster-leader",
            ))
            .unwrap();
        if let ObjectData::StatefulSet(s) = &sts.data {
            assert_eq!(
                s.template.node_selector.get("disk").map(String::as_str),
                Some("ssd"),
                "removal swallowed by the injected bug"
            );
        }
    }

    #[test]
    fn ock7_empty_save_directive_panics_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(&"config.save".parse().unwrap(), Value::from("  "));
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(instance.operator_crashed());
        let mut fixed = BugToggles::all_injected();
        fixed.fix("RED-OCK-7");
        let mut instance = deploy(fixed);
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(!instance.operator_crashed());
    }
}
