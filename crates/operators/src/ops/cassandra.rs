//! CassOp: the K8ssandra-style Cassandra operator (Table 4).
//!
//! Injected bugs: CASS-1 (pod-label deletion ignored), CASS-2 (seed-label
//! changes not propagated to existing seed pods), CASS-3 (stability gate
//! blocks all reconciliation while any pod is unhealthy), CASS-4 (a wrong
//! pod name in `replaceNodes` wedges the operator; reverting the field
//! does not clear the wedge).

use std::collections::BTreeMap;

use crdspec::{Schema, Semantic, Value};
use managed::Health;
use opdsl::{IrBuilder, IrModule};
use simkube::cluster::LogLevel;
use simkube::objects::{ClaimTemplate, Kind, ObjectData, PodPhase};
use simkube::store::ObjKey;
use simkube::SimCluster;

use crate::bugs::BugToggles;
use crate::common::*;
use crate::crd_parts::*;
use crate::framework::{Operator, OperatorError, INSTANCE, NAMESPACE};

/// The K8ssandra-style Cassandra operator.
#[derive(Debug, Default)]
pub struct CassOp;

impl CassOp {
    fn has_failed_pod(cluster: &SimCluster) -> bool {
        cluster
            .api()
            .store()
            .list(&Kind::Pod, NAMESPACE)
            .iter()
            .any(|o| {
                o.meta.labels.get("app").map(String::as_str) == Some(INSTANCE)
                    && matches!(&o.data, ObjectData::Pod(p) if p.phase == PodPhase::Failed)
            })
    }

    fn pod_exists(cluster: &SimCluster, name: &str) -> bool {
        cluster
            .api()
            .get(&ObjKey::new(Kind::Pod, NAMESPACE, name))
            .is_some()
    }
}

impl Operator for CassOp {
    fn name(&self) -> &'static str {
        "CassOp"
    }

    fn system(&self) -> &'static str {
        "cassandra"
    }

    fn kind(&self) -> &'static str {
        "CassandraDatacenter"
    }

    fn schema(&self) -> Schema {
        Schema::object()
            .prop(
                "size",
                Schema::integer().min(1).max(9).semantic(Semantic::Replicas),
            )
            .prop(
                "image",
                image_schema().default_value(Value::from("cassandra:4.1")),
            )
            .prop("seedCount", Schema::integer().min(1).max(5))
            .prop(
                "podLabels",
                Schema::map(Schema::string()).semantic(Semantic::Labels),
            )
            .prop(
                "seedLabels",
                Schema::map(Schema::string()).semantic(Semantic::Labels),
            )
            .prop("replaceNodes", Schema::array(Schema::string()))
            .prop(
                "config",
                Schema::map(Schema::string()).semantic(Semantic::SystemConfig),
            )
            .prop("resources", resources_schema())
            .prop("persistence", persistence_schema())
            .prop("pod", pod_template_schema_without(&["resources"]))
            // Obscurely named native-protocol port: whitebox learns Port
            // semantics from the `service.port` sink.
            .prop("cqlAccess", Schema::integer().min(1).max(65535))
            .require("size")
    }

    fn ir(&self) -> IrModule {
        let mut b = IrBuilder::new("cass-op");
        b.passthrough("size", "sts.replicas");
        b.passthrough("image", "pod.image");
        b.passthrough("seedCount", "seed.count");
        b.passthrough("cqlAccess", "service.port");
        b.guarded_passthrough(
            "persistence.enabled",
            &[
                ("persistence.size", "pvc.size"),
                ("persistence.storageClass", "pvc.storageClass"),
            ],
        );
        b.ret();
        b.finish()
    }

    fn initial_cr(&self) -> Value {
        Value::object([
            ("size", Value::from(3)),
            ("image", Value::from("cassandra:4.1")),
            ("seedCount", Value::from(1)),
            ("cqlAccess", Value::from(9042)),
            (
                "config",
                Value::object([("num_tokens", Value::from("256"))]),
            ),
            (
                "persistence",
                Value::object([
                    ("enabled", Value::from(true)),
                    ("size", Value::from("50Gi")),
                    ("storageClass", Value::from("standard")),
                ]),
            ),
        ])
    }

    fn images(&self) -> Vec<String> {
        vec!["cassandra:4.1".to_string(), "cassandra:4.0".to_string()]
    }

    fn reconcile(
        &mut self,
        cr: &Value,
        _health: &Health,
        cluster: &mut SimCluster,
        bugs: &BugToggles,
    ) -> Result<(), OperatorError> {
        let sts_key = ObjKey::new(Kind::StatefulSet, NAMESPACE, INSTANCE);
        let deployed = cluster.api().get(&sts_key).is_some();

        // CASS-4: a replaceNodes entry naming a nonexistent pod wedges the
        // operator behind a sticky annotation; the injected bug never
        // clears it, even after the field is reverted.
        let replace_nodes: Vec<String> = cr
            .get("replaceNodes")
            .and_then(Value::as_array)
            .map(|a| {
                a.iter()
                    .filter_map(Value::as_str)
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default();
        let wedged = cluster
            .api()
            .get(&sts_key)
            .map(|o| o.meta.annotations.contains_key("replace-wedged"))
            .unwrap_or(false);
        if wedged && bugs.injected("CASS-4") {
            return Ok(());
        }
        if deployed {
            let bad: Vec<&String> = replace_nodes
                .iter()
                .filter(|n| !Self::pod_exists(cluster, n))
                .collect();
            if !bad.is_empty() {
                if bugs.injected("CASS-4") {
                    let time = cluster.now();
                    let _ = cluster
                        .api_mut()
                        .store_mut()
                        .update_with(&sts_key, time, |o| {
                            o.meta
                                .annotations
                                .insert("replace-wedged".to_string(), "true".to_string());
                        });
                    return Ok(());
                }
                cluster.log(
                    LogLevel::Error,
                    self.name(),
                    format!("ignoring replaceNodes entries with unknown pods: {bad:?}"),
                );
            }
        }
        if wedged && !bugs.injected("CASS-4") {
            let time = cluster.now();
            let _ = cluster
                .api_mut()
                .store_mut()
                .update_with(&sts_key, time, |o| {
                    o.meta.annotations.remove("replace-wedged");
                });
        }

        // CASS-3: the stability gate.
        if bugs.injected("CASS-3") && deployed && Self::has_failed_pod(cluster) {
            return Ok(());
        }

        let size = i64_at(cr, "size").unwrap_or(3).clamp(1, 9) as i32;
        let image = str_at(cr, "image").unwrap_or_else(|| "cassandra:4.1".to_string());
        let seed_count = i64_at(cr, "seedCount").unwrap_or(1).clamp(1, 5) as i32;

        // Configuration.
        let mut entries: BTreeMap<String, String> = map_at(cr, "config");
        entries.insert(
            "nativePort".to_string(),
            i64_at(cr, "cqlAccess").unwrap_or(9042).to_string(),
        );
        let hash = config_hash(&entries);
        apply_config(cluster, NAMESPACE, INSTANCE, entries)?;

        // Pod template. CASS-1: deleted podLabels linger (tracked per
        // applied set).
        let mut template = pod_template_at(cr, "pod", INSTANCE, None, &image, &hash);
        let mut declared = map_at(cr, "podLabels");
        declared.insert("app".to_string(), INSTANCE.to_string());
        let effective = merge_labels_tracked(
            cluster,
            &sts_key,
            "applied-pod-labels",
            declared,
            bugs.injected("CASS-1"),
        );
        template.labels.extend(effective.clone());
        template.containers[0].resources = resources_at(cr, "resources");
        let claims = if bool_at(cr, "persistence.enabled").unwrap_or(true) {
            vec![ClaimTemplate {
                name: "data".to_string(),
                size: str_at(cr, "persistence.size")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| "50Gi".parse().expect("literal")),
                storage_class: str_at(cr, "persistence.storageClass")
                    .unwrap_or_else(|| "standard".to_string()),
            }]
        } else {
            Vec::new()
        };
        apply_statefulset(cluster, NAMESPACE, INSTANCE, size, template, claims)?;
        stamp_label_record(cluster, &sts_key, "applied-pod-labels", &effective);
        if let Some(reclaim) = str_at(cr, "persistence.reclaimPolicy") {
            stamp_sts_annotation(cluster, NAMESPACE, INSTANCE, "reclaimPolicy", &reclaim);
        }

        // Seed labelling: the first `seedCount` ordinals carry `seed=true`
        // plus the declared seed labels. CASS-2: existing seed pods keep
        // whatever seed labels they were born with.
        let seed_labels = map_at(cr, "seedLabels");
        for ordinal in 0..size {
            let pod_name = format!("{INSTANCE}-{ordinal}");
            let pod_key = ObjKey::new(Kind::Pod, NAMESPACE, &pod_name);
            if cluster.api().get(&pod_key).is_none() {
                continue;
            }
            let is_seed = ordinal < seed_count;
            let already_seed = cluster
                .api()
                .get(&pod_key)
                .map(|o| o.meta.labels.get("seed").map(String::as_str) == Some("true"))
                .unwrap_or(false);
            let skip_refresh = bugs.injected("CASS-2") && already_seed && is_seed;
            let seed_labels = seed_labels.clone();
            let time = cluster.now();
            let _ = cluster
                .api_mut()
                .store_mut()
                .update_with(&pod_key, time, |o| {
                    if is_seed {
                        o.meta.labels.insert("seed".to_string(), "true".to_string());
                        if !skip_refresh {
                            // Drop stale seed-prefixed labels, then apply.
                            o.meta.labels.retain(|k, _| !k.starts_with("seed/"));
                            for (k, v) in &seed_labels {
                                o.meta.labels.insert(format!("seed/{k}"), v.clone());
                            }
                        }
                    } else {
                        o.meta.labels.remove("seed");
                        o.meta.labels.retain(|k, _| !k.starts_with("seed/"));
                    }
                });
        }

        let ready = ready_pods(cluster, NAMESPACE, INSTANCE);
        let cr_key = ObjKey::new(Kind::Custom(self.kind().to_string()), NAMESPACE, INSTANCE);
        write_cr_status(cluster, &cr_key, ready, size);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{Instance, CONVERGE_MAX, CONVERGE_RESET};
    use simkube::PlatformBugs;

    fn deploy(bugs: BugToggles) -> Instance {
        Instance::deploy(Box::new(CassOp), bugs, PlatformBugs::none()).unwrap()
    }

    #[test]
    fn ring_deploys_with_seed() {
        let instance = deploy(BugToggles::all_injected());
        assert!(instance.last_health.is_healthy());
        let seed = instance
            .cluster
            .api()
            .get(&ObjKey::new(Kind::Pod, NAMESPACE, "test-cluster-0"))
            .unwrap();
        assert_eq!(
            seed.meta.labels.get("seed").map(String::as_str),
            Some("true")
        );
    }

    #[test]
    fn cass2_seed_label_change_not_propagated_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(
            &"seedLabels".parse().unwrap(),
            Value::object([("rack", Value::from("r1"))]),
        );
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let seed = instance
            .cluster
            .api()
            .get(&ObjKey::new(Kind::Pod, NAMESPACE, "test-cluster-0"))
            .unwrap();
        assert_eq!(seed.meta.labels.get("seed/rack"), None, "not propagated");
        let mut fixed = BugToggles::all_injected();
        fixed.fix("CASS-2");
        let mut instance = deploy(fixed);
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let seed = instance
            .cluster
            .api()
            .get(&ObjKey::new(Kind::Pod, NAMESPACE, "test-cluster-0"))
            .unwrap();
        assert_eq!(
            seed.meta.labels.get("seed/rack").map(String::as_str),
            Some("r1")
        );
    }

    #[test]
    fn cass4_bad_replace_node_wedges_operator_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let good = instance.cr_spec();
        let mut bad = good.clone();
        bad.set_path(
            &"replaceNodes".parse().unwrap(),
            Value::array([Value::from("no-such-pod")]),
        );
        instance.submit(bad).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        // Revert, then try a scale operation: it is silently ignored.
        let mut scaled = good.clone();
        scaled.set_path(&"size".parse().unwrap(), Value::from(5));
        instance.submit(scaled.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert_eq!(
            instance.cluster.pod_summaries(NAMESPACE).len(),
            3,
            "wedged operator ignores the scale"
        );
        // Fixed operator logs and continues.
        let mut fixed = BugToggles::all_injected();
        fixed.fix("CASS-4");
        let mut instance = deploy(fixed);
        let mut bad = instance.cr_spec();
        bad.set_path(
            &"replaceNodes".parse().unwrap(),
            Value::array([Value::from("no-such-pod")]),
        );
        instance.submit(bad).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        instance.submit(scaled).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert_eq!(instance.cluster.pod_summaries(NAMESPACE).len(), 5);
    }

    #[test]
    fn cass3_gate_blocks_config_rollback() {
        let mut instance = deploy(BugToggles::all_injected());
        let good = instance.cr_spec();
        let mut bad = good.clone();
        bad.set_path(
            &"config".parse().unwrap(),
            Value::object([("num_tokens", Value::from("0"))]),
        );
        instance.submit(bad).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(!instance.last_health.is_healthy());
        instance.submit(good).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(!instance.last_health.is_healthy(), "gate blocks rollback");
    }
    #[test]
    fn cass1_pod_label_removal_ignored_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(
            &"podLabels".parse().unwrap(),
            Value::object([("ring", Value::from("a"))]),
        );
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        spec.set_path(&"podLabels".parse().unwrap(), Value::empty_object());
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let sts = instance
            .cluster
            .api()
            .get(&ObjKey::new(Kind::StatefulSet, NAMESPACE, INSTANCE))
            .unwrap();
        if let ObjectData::StatefulSet(s) = &sts.data {
            assert_eq!(
                s.template.labels.get("ring").map(String::as_str),
                Some("a"),
                "removal swallowed"
            );
        }
        let mut fixed = BugToggles::all_injected();
        fixed.fix("CASS-1");
        let mut instance = deploy(fixed);
        let mut add = instance.cr_spec();
        add.set_path(
            &"podLabels".parse().unwrap(),
            Value::object([("ring", Value::from("a"))]),
        );
        instance.submit(add).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let sts = instance
            .cluster
            .api()
            .get(&ObjKey::new(Kind::StatefulSet, NAMESPACE, INSTANCE))
            .unwrap();
        if let ObjectData::StatefulSet(s) = &sts.data {
            assert_eq!(s.template.labels.get("ring"), None);
        }
    }
}
