//! CockroachOp: the official CockroachDB operator (Table 4).
//!
//! Injected bugs: CRDB-1 (ingress TLS secret name frozen after creation),
//! CRDB-2 (resource updates never roll pods), CRDB-3 (TLS rotation leaves
//! nodes on the old secret generation), CRDB-4 (image without a colon
//! panics the parser and crash-loops the operator, taking its webhook
//! down), CRDB-5 (an empty additional argument panics argument parsing).

use std::collections::BTreeMap;

use crdspec::{Schema, Semantic, Value};
use managed::Health;
use opdsl::{IrBuilder, IrModule};
use simkube::cluster::LogLevel;
use simkube::meta::ObjectMeta;
use simkube::objects::{ClaimTemplate, Kind, ObjectData, Secret};
use simkube::store::ObjKey;
use simkube::SimCluster;

use crate::bugs::BugToggles;
use crate::common::*;
use crate::crd_parts::*;
use crate::framework::{Operator, OperatorError, INSTANCE, NAMESPACE};

/// The official CockroachDB operator.
#[derive(Debug, Default)]
pub struct CockroachOp;

impl Operator for CockroachOp {
    fn name(&self) -> &'static str {
        "CockroachOp"
    }

    fn system(&self) -> &'static str {
        "cockroachdb"
    }

    fn kind(&self) -> &'static str {
        "CrdbCluster"
    }

    fn schema(&self) -> Schema {
        Schema::object()
            .prop(
                "nodes",
                Schema::integer().min(1).max(9).semantic(Semantic::Replicas),
            )
            .prop(
                "image",
                image_schema().default_value(Value::from("cockroach:v23.1")),
            )
            .prop("resources", resources_schema())
            .prop("additionalArgs", Schema::array(Schema::string()))
            .prop(
                "tls",
                Schema::object().prop(
                    "enabled",
                    Schema::boolean()
                        .semantic(Semantic::Toggle)
                        .default_value(Value::Bool(true)),
                ),
            )
            // Bumping this counter requests a certificate rotation.
            .prop("certRotation", Schema::integer().min(0).max(1000))
            .prop(
                "ingress",
                Schema::object()
                    .prop(
                        "enabled",
                        Schema::boolean()
                            .semantic(Semantic::Toggle)
                            .default_value(Value::Bool(false)),
                    )
                    .prop("host", Schema::string().semantic(Semantic::ServiceName))
                    .prop(
                        "tls",
                        Schema::object()
                            .prop("secretName", Schema::string().semantic(Semantic::SecretRef)),
                    )
                    .semantic(Semantic::Ingress),
            )
            .prop(
                "config",
                Schema::map(Schema::string()).semantic(Semantic::SystemConfig),
            )
            .prop("persistence", persistence_schema())
            .prop("pod", pod_template_schema_without(&["resources"]))
            // Obscurely named SQL port; whitebox learns Port semantics via
            // the `service.port` sink.
            .prop("sqlAccess", Schema::integer().min(1).max(65535))
            .require("nodes")
    }

    fn ir(&self) -> IrModule {
        let mut b = IrBuilder::new("cockroach-op");
        b.passthrough("nodes", "sts.replicas");
        b.passthrough("image", "pod.image");
        b.passthrough("sqlAccess", "service.port");
        b.passthrough("resources.requests.cpu", "pod.resources.requests.cpu");
        b.guarded_passthrough("tls.enabled", &[("certRotation", "tls.generation")]);
        b.guarded_passthrough(
            "ingress.enabled",
            &[
                ("ingress.host", "ingress.host"),
                ("ingress.tls.secretName", "ingress.secretName"),
            ],
        );
        b.ret();
        b.finish()
    }

    fn initial_cr(&self) -> Value {
        Value::object([
            ("nodes", Value::from(3)),
            ("image", Value::from("cockroach:v23.1")),
            ("sqlAccess", Value::from(26257)),
            ("tls", Value::object([("enabled", Value::from(true))])),
            ("certRotation", Value::from(0)),
            (
                "ingress",
                Value::object([
                    ("enabled", Value::from(true)),
                    ("host", Value::from("db.example.com")),
                    (
                        "tls",
                        Value::object([("secretName", Value::from("sql-tls-v1"))]),
                    ),
                ]),
            ),
            ("config", Value::object([("cache", Value::from("25%"))])),
            (
                "persistence",
                Value::object([
                    ("enabled", Value::from(true)),
                    ("size", Value::from("100Gi")),
                    ("storageClass", Value::from("fast")),
                ]),
            ),
        ])
    }

    fn images(&self) -> Vec<String> {
        vec!["cockroach:v23.1".to_string(), "cockroach:v23.2".to_string()]
    }

    fn reconcile(
        &mut self,
        cr: &Value,
        _health: &Health,
        cluster: &mut SimCluster,
        bugs: &BugToggles,
    ) -> Result<(), OperatorError> {
        let sts_key = ObjKey::new(Kind::StatefulSet, NAMESPACE, INSTANCE);
        let deployed = cluster.api().get(&sts_key).is_some();

        // Image parsing. CRDB-4: splitting on ':' without checking panics
        // on a tagless reference.
        let image = str_at(cr, "image").unwrap_or_else(|| "cockroach:v23.1".to_string());
        if !image.contains(':') {
            if bugs.injected("CRDB-4") {
                return Err(OperatorError::Panic(format!(
                    "index out of range parsing image {image:?}"
                )));
            }
            cluster.log(
                LogLevel::Error,
                self.name(),
                format!("invalid image reference {image:?}; keeping current"),
            );
        }
        let image = if image.contains(':') {
            image
        } else {
            "cockroach:v23.1".to_string()
        };

        // Additional arguments. CRDB-5: an empty element panics.
        let args: Vec<String> = cr
            .get("additionalArgs")
            .and_then(Value::as_array)
            .map(|a| {
                a.iter()
                    .filter_map(Value::as_str)
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default();
        let mut arg_list: Vec<String> = Vec::new();
        for arg in &args {
            if arg.is_empty() {
                if bugs.injected("CRDB-5") {
                    return Err(OperatorError::Panic(
                        "slice bounds out of range parsing empty argument".to_string(),
                    ));
                }
                cluster.log(LogLevel::Error, self.name(), "skipping empty argument");
                continue;
            }
            arg_list.push(arg.clone());
        }

        // TLS secret rotation. The secret object is rotated on every bump
        // of `tls.rotate`, but CRDB-3 never updates the version the nodes
        // run with.
        let tls_enabled = bool_at(cr, "tls.enabled").unwrap_or(true);
        let rotate = i64_at(cr, "certRotation").unwrap_or(0);
        let secret_key = ObjKey::new(Kind::Secret, NAMESPACE, &format!("{INSTANCE}-tls"));
        if tls_enabled {
            let mut data = BTreeMap::new();
            data.insert("tls.crt".to_string(), format!("cert-gen-{rotate}"));
            data.insert("serial".to_string(), rotate.to_string());
            let time = cluster.now();
            cluster
                .api_mut()
                .apply_object(
                    ObjectMeta::named(NAMESPACE, &format!("{INSTANCE}-tls")),
                    ObjectData::Secret(Secret { data }),
                    time,
                )
                .map_err(|e| OperatorError::Transient(e.to_string()))?;
        }
        if !tls_enabled {
            delete_if_exists(cluster, Kind::Secret, NAMESPACE, &format!("{INSTANCE}-tls"));
        }
        let _ = &secret_key;

        // Configuration.
        let mut entries: BTreeMap<String, String> = map_at(cr, "config");
        entries.insert(
            "sqlPort".to_string(),
            i64_at(cr, "sqlAccess").unwrap_or(26257).to_string(),
        );
        if !arg_list.is_empty() {
            entries.insert("extraArgs".to_string(), arg_list.join(" "));
        }
        if tls_enabled {
            let running_version = if bugs.injected("CRDB-3") {
                // Only stamped at first deployment: nodes keep serving with
                // the serial they started with.
                let cm_key = ObjKey::new(Kind::ConfigMap, NAMESPACE, &format!("{INSTANCE}-config"));
                match cluster.api().get(&cm_key) {
                    Some(obj) => match &obj.data {
                        ObjectData::ConfigMap(c) => c
                            .data
                            .get("tlsSecretVersion")
                            .cloned()
                            .unwrap_or_else(|| rotate.to_string()),
                        _ => rotate.to_string(),
                    },
                    None => rotate.to_string(),
                }
            } else {
                rotate.to_string()
            };
            entries.insert("tlsSecretVersion".to_string(), running_version);
        }
        let hash = config_hash(&entries);
        apply_config(cluster, NAMESPACE, INSTANCE, entries)?;

        // Stateful set. CRDB-2: the template keeps the creation-time
        // resources (updates are written to an annotation the rollout never
        // reads).
        let nodes = i64_at(cr, "nodes").unwrap_or(3).clamp(1, 9) as i32;
        let mut template = pod_template_at(cr, "pod", INSTANCE, None, &image, &hash);
        let declared_resources = resources_at(cr, "resources");
        if bugs.injected("CRDB-2") && deployed {
            if let Some(obj) = cluster.api().get(&sts_key) {
                if let ObjectData::StatefulSet(s) = &obj.data {
                    template.containers[0].resources = s.template.containers[0].resources.clone();
                }
            }
        } else {
            template.containers[0].resources = declared_resources;
        }
        let claims = if bool_at(cr, "persistence.enabled").unwrap_or(true) {
            vec![ClaimTemplate {
                name: "data".to_string(),
                size: str_at(cr, "persistence.size")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| "100Gi".parse().expect("literal")),
                storage_class: str_at(cr, "persistence.storageClass")
                    .unwrap_or_else(|| "fast".to_string()),
            }]
        } else {
            Vec::new()
        };
        apply_statefulset(cluster, NAMESPACE, INSTANCE, nodes, template, claims)?;
        if let Some(reclaim) = str_at(cr, "persistence.reclaimPolicy") {
            stamp_sts_annotation(cluster, NAMESPACE, INSTANCE, "reclaimPolicy", &reclaim);
        }

        // Ingress. CRDB-1: the TLS secret name is only written at creation.
        let ingress_name = format!("{INSTANCE}-sql");
        let ingress_key = ObjKey::new(Kind::Ingress, NAMESPACE, &ingress_name);
        if bool_at(cr, "ingress.enabled").unwrap_or(false) {
            let host = str_at(cr, "ingress.host").unwrap_or_default();
            let declared_secret = str_at(cr, "ingress.tls.secretName").unwrap_or_default();
            let secret = if bugs.injected("CRDB-1") {
                match cluster.api().get(&ingress_key) {
                    Some(obj) => match &obj.data {
                        ObjectData::Ingress(i) => i.tls_secret.clone(),
                        _ => declared_secret,
                    },
                    None => declared_secret,
                }
            } else {
                declared_secret
            };
            apply_ingress(cluster, NAMESPACE, &ingress_name, &host, INSTANCE, &secret)?;
        } else {
            delete_if_exists(cluster, Kind::Ingress, NAMESPACE, &ingress_name);
        }

        let ready = ready_pods(cluster, NAMESPACE, INSTANCE);
        let cr_key = ObjKey::new(Kind::Custom(self.kind().to_string()), NAMESPACE, INSTANCE);
        write_cr_status(cluster, &cr_key, ready, nodes);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{Instance, CONVERGE_MAX, CONVERGE_RESET};
    use simkube::PlatformBugs;

    fn deploy(bugs: BugToggles) -> Instance {
        Instance::deploy(Box::new(CockroachOp), bugs, PlatformBugs::none()).unwrap()
    }

    #[test]
    fn cluster_deploys_with_ingress_and_tls() {
        let instance = deploy(BugToggles::all_injected());
        assert!(instance.last_health.is_healthy());
        assert!(instance
            .cluster
            .api()
            .get(&ObjKey::new(Kind::Ingress, NAMESPACE, "test-cluster-sql"))
            .is_some());
        assert!(instance
            .cluster
            .api()
            .get(&ObjKey::new(Kind::Secret, NAMESPACE, "test-cluster-tls"))
            .is_some());
    }

    #[test]
    fn crdb1_ingress_secret_frozen_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(
            &"ingress.tls.secretName".parse().unwrap(),
            Value::from("sql-tls-v2"),
        );
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let ing = instance
            .cluster
            .api()
            .get(&ObjKey::new(Kind::Ingress, NAMESPACE, "test-cluster-sql"))
            .unwrap();
        if let ObjectData::Ingress(i) = &ing.data {
            assert_eq!(i.tls_secret, "sql-tls-v1", "update ignored");
        }
        let mut fixed = BugToggles::all_injected();
        fixed.fix("CRDB-1");
        let mut instance = deploy(fixed);
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let ing = instance
            .cluster
            .api()
            .get(&ObjKey::new(Kind::Ingress, NAMESPACE, "test-cluster-sql"))
            .unwrap();
        if let ObjectData::Ingress(i) = &ing.data {
            assert_eq!(i.tls_secret, "sql-tls-v2");
        }
    }

    #[test]
    fn crdb3_rotation_leaves_outdated_secrets_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(&"certRotation".parse().unwrap(), Value::from(1));
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        match &instance.last_health {
            Health::Degraded(r) => assert!(r.contains("outdated")),
            other => panic!("expected degraded on outdated secrets, got {other:?}"),
        }
        let mut fixed = BugToggles::all_injected();
        fixed.fix("CRDB-3");
        let mut instance = deploy(fixed);
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(instance.last_health.is_healthy());
    }

    #[test]
    fn crdb4_tagless_image_crashes_operator_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(&"image".parse().unwrap(), Value::from("cockroach"));
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(instance.operator_crashed());
        let mut fixed = BugToggles::all_injected();
        fixed.fix("CRDB-4");
        let mut instance = deploy(fixed);
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(!instance.operator_crashed());
        assert!(instance.last_health.is_healthy());
    }

    #[test]
    fn crdb5_empty_argument_crashes_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(
            &"additionalArgs".parse().unwrap(),
            Value::array([Value::from("--log=v2"), Value::from("")]),
        );
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(instance.operator_crashed());
    }

    #[test]
    fn crdb2_resources_not_rolled_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(&"resources.requests.cpu".parse().unwrap(), Value::from("2"));
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let sts = instance
            .cluster
            .api()
            .get(&ObjKey::new(Kind::StatefulSet, NAMESPACE, INSTANCE))
            .unwrap();
        if let ObjectData::StatefulSet(s) = &sts.data {
            assert!(
                s.template.containers[0].resources.requests.is_empty(),
                "template keeps the creation-time (empty) resources"
            );
        }
    }
}
