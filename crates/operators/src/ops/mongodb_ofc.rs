//! OFC/MongoOp: the official MongoDB community operator (Table 4).
//!
//! Injected bugs: MG-OFC-1 (config updated without member restarts),
//! MG-OFC-2 (arbiter scaling ignored on a running set), MG-OFC-3 (pod-label
//! removal ignored), MG-OFC-4 (invalid `featureCompatibilityVersion` passed
//! through; the system goes down), MG-OFC-5 (auth with an empty users list
//! panics), MG-OFC-6 (non-semver version panics), MG-OFC-7 (the corrected
//! FCV is never applied while the system is down — unrecoverable),
//! MG-OFC-8 (scale-down while unhealthy wedges the rollout).

use std::collections::BTreeMap;

use crdspec::{Schema, Semantic, Value};
use managed::mongodb::VALID_FCV;
use managed::Health;
use opdsl::{IrBuilder, IrModule};
use simkube::cluster::LogLevel;
use simkube::objects::{ClaimTemplate, Kind, ObjectData};
use simkube::store::ObjKey;
use simkube::SimCluster;

use crate::bugs::BugToggles;
use crate::common::*;
use crate::crd_parts::*;
use crate::framework::{Operator, OperatorError, INSTANCE, NAMESPACE};

/// The official MongoDB community operator.
#[derive(Debug, Default)]
pub struct MongoOfcOp;

fn semver_ok(v: &str) -> bool {
    let parts: Vec<&str> = v.split('.').collect();
    parts.len() == 3 && parts.iter().all(|p| p.parse::<u32>().is_ok())
}

impl Operator for MongoOfcOp {
    fn name(&self) -> &'static str {
        "OFC/MongoOp"
    }

    fn system(&self) -> &'static str {
        "mongodb"
    }

    fn kind(&self) -> &'static str {
        "MongoDBCommunity"
    }

    fn schema(&self) -> Schema {
        Schema::object()
            .prop(
                "members",
                Schema::integer().min(1).max(9).semantic(Semantic::Replicas),
            )
            .prop("arbiters", Schema::integer().min(0).max(5))
            .prop("version", Schema::string().semantic(Semantic::Version))
            .prop("featureCompatibilityVersion", Schema::string())
            .prop(
                "security",
                Schema::object()
                    .prop(
                        "auth",
                        Schema::object()
                            .prop("enabled", Schema::boolean().semantic(Semantic::Toggle))
                            .prop(
                                "users",
                                Schema::array(
                                    Schema::object()
                                        .prop("name", Schema::string())
                                        .prop("db", Schema::string())
                                        .require("name"),
                                ),
                            ),
                    )
                    .prop("tls", tls_schema()),
            )
            .prop(
                "additionalMongodConfig",
                Schema::map(Schema::string()).semantic(Semantic::SystemConfig),
            )
            .prop(
                "podLabels",
                Schema::map(Schema::string()).semantic(Semantic::Labels),
            )
            .prop("pod", pod_template_schema())
            .prop("persistence", persistence_schema())
            // Obscurely named storage window; the whitebox mode learns
            // StorageSize semantics from the `pvc.size` sink.
            .prop("oplogWindow", Schema::string().format("quantity"))
            .require("members")
            .require("version")
    }

    fn ir(&self) -> IrModule {
        let mut b = IrBuilder::new("mongo-ofc-op");
        b.passthrough("members", "sts.replicas");
        b.passthrough("arbiters", "sts.arbiters");
        b.passthrough("version", "pod.image");
        b.passthrough(
            "featureCompatibilityVersion",
            "config.featureCompatibilityVersion",
        );
        b.passthrough("oplogWindow", "pvc.size");
        b.guarded_passthrough(
            "security.auth.enabled",
            &[("security.auth.users[0].name", "config.adminUser")],
        );
        b.guarded_passthrough(
            "security.tls.enabled",
            &[("security.tls.secretName", "tls.secretName")],
        );
        b.guarded_passthrough(
            "persistence.enabled",
            &[
                ("persistence.size", "pvc.size"),
                ("persistence.storageClass", "pvc.storageClass"),
            ],
        );
        b.ret();
        b.finish()
    }

    fn initial_cr(&self) -> Value {
        Value::object([
            ("members", Value::from(3)),
            ("arbiters", Value::from(0)),
            ("version", Value::from("6.0.5")),
            ("featureCompatibilityVersion", Value::from("6.0")),
            (
                "security",
                Value::object([(
                    "auth",
                    Value::object([
                        ("enabled", Value::from(false)),
                        (
                            "users",
                            Value::array([Value::object([
                                ("name", Value::from("admin")),
                                ("db", Value::from("admin")),
                            ])]),
                        ),
                    ]),
                )]),
            ),
            (
                "additionalMongodConfig",
                Value::object([("storageEngine", Value::from("wiredTiger"))]),
            ),
            (
                "persistence",
                Value::object([
                    ("enabled", Value::from(true)),
                    ("size", Value::from("10Gi")),
                    ("storageClass", Value::from("standard")),
                ]),
            ),
        ])
    }

    fn images(&self) -> Vec<String> {
        vec![
            "mongo:6.0.5".to_string(),
            "mongo:6.0.6".to_string(),
            "mongo:5.0.15".to_string(),
        ]
    }

    fn reconcile(
        &mut self,
        cr: &Value,
        health: &Health,
        cluster: &mut SimCluster,
        bugs: &BugToggles,
    ) -> Result<(), OperatorError> {
        let sts_key = ObjKey::new(Kind::StatefulSet, NAMESPACE, INSTANCE);
        let deployed = cluster.api().get(&sts_key).is_some();
        // MG-OFC-8: the stability gate — while any member crash-loops, the
        // operator performs no operation at all, blocking the rollback of a
        // corrupted mongod configuration.
        if bugs.injected("MG-OFC-8") && deployed {
            let any_failed = cluster
                .api()
                .store()
                .list(&simkube::objects::Kind::Pod, NAMESPACE)
                .iter()
                .any(|o| {
                    o.meta.labels.get("app").map(String::as_str) == Some(INSTANCE)
                        && matches!(
                            &o.data,
                            ObjectData::Pod(p) if p.phase == simkube::objects::PodPhase::Failed
                        )
                });
            if any_failed {
                return Ok(());
            }
        }

        // Version parsing. MG-OFC-6: a non-semver string panics.
        let version = str_at(cr, "version").unwrap_or_else(|| "6.0.5".to_string());
        if !semver_ok(&version) {
            if bugs.injected("MG-OFC-6") {
                return Err(OperatorError::Panic(format!(
                    "failed to parse version {version:?}"
                )));
            }
            cluster.log(
                LogLevel::Error,
                self.name(),
                format!("invalid version {version:?}; keeping current"),
            );
        }
        let image = if semver_ok(&version) {
            format!("mongo:{version}")
        } else {
            "mongo:6.0.5".to_string()
        };

        // Auth. MG-OFC-5: users[0] is indexed unconditionally.
        let mut admin_user = String::new();
        let mut user_names: Vec<String> = Vec::new();
        if bool_at(cr, "security.auth.enabled").unwrap_or(false) {
            let users = value_at(cr, "security.auth.users")
                .and_then(Value::as_array)
                .unwrap_or(&[]);
            user_names = users
                .iter()
                .filter_map(|u| u.get("name").and_then(Value::as_str))
                .map(str::to_string)
                .collect();
            match users
                .first()
                .and_then(|u| u.get("name"))
                .and_then(Value::as_str)
            {
                Some(name) => admin_user = name.to_string(),
                None => {
                    if bugs.injected("MG-OFC-5") {
                        return Err(OperatorError::Panic(
                            "index out of range: users[0]".to_string(),
                        ));
                    }
                    cluster.log(
                        LogLevel::Error,
                        self.name(),
                        "auth enabled but no users declared",
                    );
                }
            }
        }

        // FCV. MG-OFC-4 (fixed path validates), MG-OFC-7 (config is not
        // re-applied while the system is down).
        let declared_fcv = str_at(cr, "featureCompatibilityVersion").unwrap_or_default();
        let cm_key = ObjKey::new(Kind::ConfigMap, NAMESPACE, &format!("{INSTANCE}-config"));
        let fcv = if !bugs.injected("MG-OFC-4")
            && !declared_fcv.is_empty()
            && !VALID_FCV.contains(&declared_fcv.as_str())
        {
            cluster.log(
                LogLevel::Error,
                self.name(),
                format!("rejecting invalid featureCompatibilityVersion {declared_fcv:?}"),
            );
            // Keep whatever the members currently run with.
            match cluster.api().get(&cm_key) {
                Some(obj) => match &obj.data {
                    ObjectData::ConfigMap(c) => c
                        .data
                        .get("featureCompatibilityVersion")
                        .cloned()
                        .unwrap_or_default(),
                    _ => String::new(),
                },
                None => String::new(),
            }
        } else {
            declared_fcv
        };
        let system_down = matches!(health, Health::Down(_));
        let skip_config = bugs.injected("MG-OFC-7") && deployed && system_down;
        let mut entries: BTreeMap<String, String> = map_at(cr, "additionalMongodConfig");
        if !fcv.is_empty() {
            entries.insert("featureCompatibilityVersion".to_string(), fcv);
        }
        // Arbiter scaling. MG-OFC-2: the arbiter count is baked in at
        // creation; later declarations keep whatever the config map holds.
        let declared_arbiters = i64_at(cr, "arbiters").unwrap_or(0).clamp(0, 5).to_string();
        let arbiters = if bugs.injected("MG-OFC-2") && deployed {
            match cluster.api().get(&cm_key) {
                Some(obj) => match &obj.data {
                    ObjectData::ConfigMap(c) => {
                        c.data.get("arbiters").cloned().unwrap_or(declared_arbiters)
                    }
                    _ => declared_arbiters,
                },
                None => declared_arbiters,
            }
        } else {
            declared_arbiters
        };
        entries.insert("arbiters".to_string(), arbiters);
        if !admin_user.is_empty() {
            entries.insert("adminUser".to_string(), admin_user);
        }
        if !user_names.is_empty() {
            entries.insert("users".to_string(), user_names.join(","));
        }
        if bool_at(cr, "security.tls.enabled").unwrap_or(false) {
            if let Some(secret) = str_at(cr, "security.tls.secretName") {
                entries.insert("tlsSecret".to_string(), secret);
            }
        }
        let hash = config_hash(&entries);
        if !skip_config {
            apply_config(cluster, NAMESPACE, INSTANCE, entries)?;
        }

        let members = i64_at(cr, "members").unwrap_or(3).clamp(1, 9) as i32;

        // Pod template. MG-OFC-1 keeps the old config hash (no restart);
        // MG-OFC-3 merges pod labels instead of replacing them.
        let effective_hash = if bugs.injected("MG-OFC-1") && deployed {
            match cluster.api().get(&sts_key) {
                Some(obj) => match &obj.data {
                    ObjectData::StatefulSet(s) => s.template.containers[0].config_hash.clone(),
                    _ => hash,
                },
                None => hash,
            }
        } else {
            hash
        };
        let mut template = pod_template_at(cr, "pod", INSTANCE, None, &image, &effective_hash);
        let mut declared_labels = map_at(cr, "podLabels");
        declared_labels.insert("app".to_string(), INSTANCE.to_string());
        let effective_labels = merge_labels_tracked(
            cluster,
            &sts_key,
            "applied-pod-labels",
            declared_labels,
            bugs.injected("MG-OFC-3"),
        );
        template.labels.extend(effective_labels.clone());

        // Storage: the data volume plus an optional oplog volume sized by
        // the (obscurely named) oplog window.
        let claims = if bool_at(cr, "persistence.enabled").unwrap_or(true) {
            let storage_class =
                str_at(cr, "persistence.storageClass").unwrap_or_else(|| "standard".to_string());
            let mut claims = vec![ClaimTemplate {
                name: "data".to_string(),
                size: str_at(cr, "persistence.size")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| "10Gi".parse().expect("literal")),
                storage_class: storage_class.clone(),
            }];
            if let Some(oplog) = str_at(cr, "oplogWindow").and_then(|s| s.parse().ok()) {
                claims.push(ClaimTemplate {
                    name: "oplog".to_string(),
                    size: oplog,
                    storage_class,
                });
            }
            claims
        } else {
            Vec::new()
        };
        apply_statefulset(cluster, NAMESPACE, INSTANCE, members, template, claims)?;
        stamp_label_record(cluster, &sts_key, "applied-pod-labels", &effective_labels);
        if let Some(reclaim) = str_at(cr, "persistence.reclaimPolicy") {
            stamp_sts_annotation(cluster, NAMESPACE, INSTANCE, "reclaimPolicy", &reclaim);
        }

        let ready = ready_pods(cluster, NAMESPACE, INSTANCE);
        let cr_key = ObjKey::new(Kind::Custom(self.kind().to_string()), NAMESPACE, INSTANCE);
        write_cr_status(cluster, &cr_key, ready, members);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{Instance, CONVERGE_MAX, CONVERGE_RESET};
    use simkube::PlatformBugs;

    fn deploy(bugs: BugToggles) -> Instance {
        Instance::deploy(Box::new(MongoOfcOp), bugs, PlatformBugs::none()).unwrap()
    }

    #[test]
    fn replica_set_deploys_healthy() {
        let instance = deploy(BugToggles::all_injected());
        assert_eq!(instance.cluster.pod_summaries(NAMESPACE).len(), 3);
        assert!(instance.last_health.is_healthy());
    }

    #[test]
    fn ofc4_invalid_fcv_takes_system_down_and_ofc7_blocks_recovery() {
        let mut instance = deploy(BugToggles::all_injected());
        let good = instance.cr_spec();
        let mut bad = good.clone();
        bad.set_path(
            &"featureCompatibilityVersion".parse().unwrap(),
            Value::from("9.9"),
        );
        instance.submit(bad.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(!instance.last_health.is_healthy(), "system goes down");
        // Rollback the FCV: MG-OFC-7 never re-applies the config.
        instance.submit(good.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(!instance.last_health.is_healthy(), "unrecoverable");
        // With both fixed, the invalid value is rejected outright.
        let mut fixed = BugToggles::all_injected();
        fixed.fix("MG-OFC-4");
        fixed.fix("MG-OFC-7");
        let mut instance = deploy(fixed);
        instance.submit(bad).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(instance.last_health.is_healthy());
        assert!(instance
            .cluster
            .logs()
            .iter()
            .any(|l| l.message.contains("featureCompatibilityVersion")));
    }

    #[test]
    fn ofc5_auth_with_no_users_panics_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(&"security.auth.enabled".parse().unwrap(), Value::from(true));
        spec.set_path(&"security.auth.users".parse().unwrap(), Value::array([]));
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(instance.operator_crashed());
        let mut fixed = BugToggles::all_injected();
        fixed.fix("MG-OFC-5");
        let mut instance = deploy(fixed);
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(!instance.operator_crashed());
    }

    #[test]
    fn ofc6_bad_version_panics_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(&"version".parse().unwrap(), Value::from("latest"));
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(instance.operator_crashed());
    }

    #[test]
    fn ofc1_config_change_does_not_roll_pods_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let sts_key = ObjKey::new(Kind::StatefulSet, NAMESPACE, INSTANCE);
        let before = match &instance.cluster.api().get(&sts_key).unwrap().data {
            ObjectData::StatefulSet(s) => s.template.containers[0].config_hash.clone(),
            _ => unreachable!(),
        };
        let mut spec = instance.cr_spec();
        spec.set_path(
            &"additionalMongodConfig.journalCommitInterval"
                .parse()
                .unwrap(),
            Value::from("200"),
        );
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let after = match &instance.cluster.api().get(&sts_key).unwrap().data {
            ObjectData::StatefulSet(s) => s.template.containers[0].config_hash.clone(),
            _ => unreachable!(),
        };
        assert_eq!(before, after, "stale hash: pods never restart");
        // The config map itself did change.
        let cm = instance
            .cluster
            .api()
            .get(&ObjKey::new(
                Kind::ConfigMap,
                NAMESPACE,
                "test-cluster-config",
            ))
            .unwrap();
        if let ObjectData::ConfigMap(c) = &cm.data {
            assert_eq!(
                c.data.get("journalCommitInterval").map(String::as_str),
                Some("200")
            );
        }
    }

    #[test]
    fn ofc2_arbiter_scaling_ignored_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(&"arbiters".parse().unwrap(), Value::from(2));
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let cm = instance
            .cluster
            .api()
            .get(&ObjKey::new(
                Kind::ConfigMap,
                NAMESPACE,
                "test-cluster-config",
            ))
            .unwrap();
        if let ObjectData::ConfigMap(c) = &cm.data {
            assert_eq!(c.data.get("arbiters").map(String::as_str), Some("0"));
        }
        let mut fixed = BugToggles::all_injected();
        fixed.fix("MG-OFC-2");
        let mut instance = deploy(fixed);
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let cm = instance
            .cluster
            .api()
            .get(&ObjKey::new(
                Kind::ConfigMap,
                NAMESPACE,
                "test-cluster-config",
            ))
            .unwrap();
        if let ObjectData::ConfigMap(c) = &cm.data {
            assert_eq!(c.data.get("arbiters").map(String::as_str), Some("2"));
        }
    }
    #[test]
    fn ofc3_pod_label_removal_ignored_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(
            &"podLabels".parse().unwrap(),
            Value::object([("team", Value::from("db"))]),
        );
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        spec.set_path(&"podLabels".parse().unwrap(), Value::empty_object());
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let sts = instance
            .cluster
            .api()
            .get(&ObjKey::new(Kind::StatefulSet, NAMESPACE, INSTANCE))
            .unwrap();
        if let ObjectData::StatefulSet(s) = &sts.data {
            assert_eq!(
                s.template.labels.get("team").map(String::as_str),
                Some("db"),
                "removal swallowed"
            );
        }
    }

    #[test]
    fn ofc8_gate_blocks_config_rollback_when_injected() {
        let mut fixed7 = BugToggles::all_injected();
        fixed7.fix("MG-OFC-7"); // Isolate the OFC-8 stability gate.
        let mut instance = deploy(fixed7.clone());
        let good = instance.cr_spec();
        let mut bad = good.clone();
        bad.set_path(
            &"additionalMongodConfig".parse().unwrap(),
            Value::object([("storageEngine", Value::from("bogus"))]),
        );
        instance.submit(bad.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(!instance.last_health.is_healthy());
        instance.submit(good.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(!instance.last_health.is_healthy(), "OFC-8 gate blocks it");
        // With OFC-8 also fixed the rollback recovers.
        fixed7.fix("MG-OFC-8");
        let mut instance = deploy(fixed7);
        instance.submit(bad).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        instance.submit(good).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(instance.last_health.is_healthy());
    }
}
