//! KnativeOp: the official Knative serving operator (Table 4).
//!
//! Injected bugs: KN-1 (disabling the ingress does not delete the Contour
//! deployment — the paper's knative/operator#1176), KN-2 (an empty config
//! value panics), KN-3 (zero high-availability replicas divide by zero).
//! The `ingress.contourClass` property depends on `ingress.class ==
//! "contour"`, one of the blackbox FP sites.

use std::collections::BTreeMap;

use crdspec::{Schema, Semantic, Value};
use managed::Health;
use opdsl::{Cmp, IrBuilder, IrModule, Operand};
use simkube::cluster::LogLevel;
use simkube::meta::{LabelSelector, ObjectMeta};
use simkube::objects::{Container, Deployment, Kind, ObjectData, PodTemplate};
use simkube::store::ObjKey;
use simkube::SimCluster;

use crate::bugs::BugToggles;
use crate::common::*;
use crate::crd_parts::*;
use crate::framework::{Operator, OperatorError, INSTANCE, NAMESPACE};

/// The official Knative serving operator.
#[derive(Debug, Default)]
pub struct KnativeOp;

const COMPONENTS: &[&str] = &["controller", "webhook", "activator"];

impl KnativeOp {
    #[allow(clippy::too_many_arguments)]
    fn apply_component(
        &self,
        cluster: &mut SimCluster,
        component: &str,
        image: &str,
        replicas: i32,
        hash: &str,
        resources: simkube::resources::ResourceRequirements,
    ) -> Result<(), OperatorError> {
        let name = format!("{INSTANCE}-{component}");
        let dep = Deployment {
            replicas,
            selector: LabelSelector::match_labels([("app", INSTANCE), ("component", component)]),
            template: PodTemplate {
                labels: [
                    ("app".to_string(), INSTANCE.to_string()),
                    ("component".to_string(), component.to_string()),
                ]
                .into_iter()
                .collect(),
                containers: vec![Container {
                    name: component.to_string(),
                    image: image.to_string(),
                    config_hash: hash.to_string(),
                    resources,
                    ..Container::default()
                }],
                ..PodTemplate::default()
            },
            ..Deployment::default()
        };
        let time = cluster.now();
        cluster
            .api_mut()
            .apply_object(
                ObjectMeta::named(NAMESPACE, &name),
                ObjectData::Deployment(dep),
                time,
            )
            .map(|_| ())
            .map_err(|e| OperatorError::Transient(e.to_string()))
    }
}

impl Operator for KnativeOp {
    fn name(&self) -> &'static str {
        "KnativeOp"
    }

    fn system(&self) -> &'static str {
        "knative"
    }

    fn kind(&self) -> &'static str {
        "KnativeServing"
    }

    fn schema(&self) -> Schema {
        Schema::object()
            .prop("version", Schema::string().semantic(Semantic::Version))
            .prop(
                "highAvailability",
                Schema::object().prop(
                    "replicas",
                    Schema::integer().min(0).max(5).semantic(Semantic::Replicas),
                ),
            )
            .prop(
                "ingress",
                Schema::object()
                    .prop(
                        "enabled",
                        Schema::boolean()
                            .semantic(Semantic::Toggle)
                            .default_value(Value::Bool(true)),
                    )
                    .prop(
                        "class",
                        Schema::string_enum(["istio", "contour", "kourier"]),
                    )
                    // Only consumed when class == "contour": blackbox FP
                    // site.
                    .prop("contourClass", Schema::string())
                    .semantic(Semantic::Ingress),
            )
            .prop(
                "config",
                Schema::map(Schema::string()).semantic(Semantic::SystemConfig),
            )
            .prop(
                "registry",
                Schema::map(Schema::string()).semantic(Semantic::Image),
            )
            .prop("domain", Schema::string().semantic(Semantic::ServiceName))
            .prop(
                "logLevel",
                Schema::string_enum(["debug", "info", "warn", "error"]),
            )
            .prop("resources", resources_schema())
            .prop(
                "gc",
                Schema::object()
                    .prop(
                        "retainSinceCreateSeconds",
                        Schema::integer().min(0).max(86400),
                    )
                    .prop(
                        "retainSinceLastActiveSeconds",
                        Schema::integer().min(0).max(86400),
                    ),
            )
            .prop(
                "defaults",
                Schema::object()
                    .prop("revisionTimeoutSeconds", Schema::integer().min(1).max(3600))
                    .prop(
                        "maxRevisionTimeoutSeconds",
                        Schema::integer().min(1).max(7200),
                    ),
            )
    }

    fn ir(&self) -> IrModule {
        let mut b = IrBuilder::new("knative-op");
        b.passthrough("version", "pod.image");
        b.passthrough("highAvailability.replicas", "deployment.replicas");
        b.guarded_passthrough("ingress.enabled", &[("ingress.class", "ingress.class")]);
        // contourClass is consumed only for the contour ingress class.
        let class = b.load("ingress.class");
        let is_contour = b.compare(
            Cmp::Eq,
            Operand::Var(class),
            Operand::Const(Value::from("contour")),
        );
        let then_b = b.new_block();
        let join = b.new_block();
        b.branch(Operand::Var(is_contour), then_b, join);
        b.switch_to(then_b);
        b.passthrough("ingress.contourClass", "ingress.contourClass");
        b.jump(join);
        b.switch_to(join);
        b.ret();
        b.finish()
    }

    fn initial_cr(&self) -> Value {
        Value::object([
            ("version", Value::from("1.11.0")),
            (
                "highAvailability",
                Value::object([("replicas", Value::from(1))]),
            ),
            (
                "ingress",
                Value::object([
                    ("enabled", Value::from(true)),
                    ("class", Value::from("istio")),
                    ("contourClass", Value::from("default")),
                ]),
            ),
            (
                "config",
                Value::object([("scale-to-zero-grace-period", Value::from("30s"))]),
            ),
        ])
    }

    fn images(&self) -> Vec<String> {
        vec![
            "knative:1.11.0".to_string(),
            "knative:1.12.0".to_string(),
            "contour:1.27".to_string(),
        ]
    }

    fn reconcile(
        &mut self,
        cr: &Value,
        _health: &Health,
        cluster: &mut SimCluster,
        bugs: &BugToggles,
    ) -> Result<(), OperatorError> {
        let version = str_at(cr, "version").unwrap_or_else(|| "1.11.0".to_string());
        let image = format!("knative:{version}");
        let ha = i64_at(cr, "highAvailability.replicas").unwrap_or(1);
        // KN-3: spreading components divides by the replica count.
        let replicas = if ha == 0 {
            if bugs.injected("KN-3") {
                return Err(OperatorError::Panic(
                    "integer divide by zero spreading components".to_string(),
                ));
            }
            cluster.log(
                LogLevel::Error,
                self.name(),
                "highAvailability.replicas=0 is invalid; using 1",
            );
            1
        } else {
            ha.clamp(1, 5) as i32
        };

        // Configuration. KN-2: empty config values panic the renderer.
        let mut entries: BTreeMap<String, String> = BTreeMap::new();
        for (k, v) in map_at(cr, "config") {
            if v.is_empty() {
                if bugs.injected("KN-2") {
                    return Err(OperatorError::Panic(format!(
                        "nil map entry rendering config key {k:?}"
                    )));
                }
                cluster.log(
                    LogLevel::Error,
                    self.name(),
                    format!("dropping empty config value for {k:?}"),
                );
                continue;
            }
            entries.insert(k, v);
        }
        let ingress_enabled = bool_at(cr, "ingress.enabled").unwrap_or(true);
        entries.insert("ingress.enabled".to_string(), ingress_enabled.to_string());
        let class = str_at(cr, "ingress.class").unwrap_or_else(|| "istio".to_string());
        if ingress_enabled {
            entries.insert("ingress.class".to_string(), class.clone());
            if class == "contour" {
                if let Some(cc) = str_at(cr, "ingress.contourClass") {
                    entries.insert("contourClass".to_string(), cc);
                }
            }
        }
        for (k, v) in map_at(cr, "registry") {
            entries.insert(format!("registry.{k}"), v);
        }
        if let Some(domain) = str_at(cr, "domain") {
            entries.insert("domain".to_string(), domain);
        }
        if let Some(level) = str_at(cr, "logLevel") {
            entries.insert("logLevel".to_string(), level);
        }
        for (k, field) in [
            ("gc.retainSinceCreate", "gc.retainSinceCreateSeconds"),
            (
                "gc.retainSinceLastActive",
                "gc.retainSinceLastActiveSeconds",
            ),
            (
                "defaults.revisionTimeout",
                "defaults.revisionTimeoutSeconds",
            ),
            (
                "defaults.maxRevisionTimeout",
                "defaults.maxRevisionTimeoutSeconds",
            ),
        ] {
            if let Some(v) = i64_at(cr, field) {
                entries.insert(k.to_string(), v.to_string());
            }
        }
        let hash = config_hash(&entries);
        apply_config(cluster, NAMESPACE, INSTANCE, entries)?;

        // Control-plane components, with per-component image overrides and
        // shared resources.
        let registry = map_at(cr, "registry");
        let resources = resources_at(cr, "resources");
        for component in COMPONENTS {
            let component_image = registry
                .get(*component)
                .cloned()
                .unwrap_or_else(|| image.clone());
            self.apply_component(
                cluster,
                component,
                &component_image,
                replicas,
                &hash,
                resources.clone(),
            )?;
        }

        // Ingress controller. KN-1: disabling never deletes it.
        let contour_name = format!("{INSTANCE}-contour");
        if ingress_enabled && class == "contour" {
            self.apply_component(
                cluster,
                "contour",
                "contour:1.27",
                replicas,
                &hash,
                resources.clone(),
            )?;
        } else if ingress_enabled {
            // Other classes are modelled as contour-compatible shims so the
            // managed-system model sees an ingress component.
            self.apply_component(
                cluster,
                "contour",
                "contour:1.27",
                replicas,
                &hash,
                resources.clone(),
            )?;
        } else if !bugs.injected("KN-1") {
            delete_if_exists(cluster, Kind::Deployment, NAMESPACE, &contour_name);
        }

        let ready = ready_pods(cluster, NAMESPACE, INSTANCE);
        let total = replicas * (COMPONENTS.len() as i32 + i32::from(ingress_enabled));
        let cr_key = ObjKey::new(Kind::Custom(self.kind().to_string()), NAMESPACE, INSTANCE);
        write_cr_status(cluster, &cr_key, ready, total);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{Instance, CONVERGE_MAX, CONVERGE_RESET};
    use simkube::PlatformBugs;

    fn deploy(bugs: BugToggles) -> Instance {
        Instance::deploy(Box::new(KnativeOp), bugs, PlatformBugs::none()).unwrap()
    }

    #[test]
    fn control_plane_deploys_healthy() {
        let instance = deploy(BugToggles::all_injected());
        assert!(instance.last_health.is_healthy());
        assert_eq!(instance.cluster.pod_summaries(NAMESPACE).len(), 4);
    }

    #[test]
    fn kn1_contour_lingers_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(&"ingress.enabled".parse().unwrap(), Value::from(false));
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(instance
            .cluster
            .api()
            .get(&ObjKey::new(
                Kind::Deployment,
                NAMESPACE,
                "test-cluster-contour"
            ))
            .is_some());
        // The managed system reports the stale component.
        assert!(!instance.last_health.is_healthy());
        let mut fixed = BugToggles::all_injected();
        fixed.fix("KN-1");
        let mut instance = deploy(fixed);
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(instance
            .cluster
            .api()
            .get(&ObjKey::new(
                Kind::Deployment,
                NAMESPACE,
                "test-cluster-contour"
            ))
            .is_none());
        assert!(instance.last_health.is_healthy());
    }

    #[test]
    fn kn2_empty_config_value_panics_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(
            &"config".parse().unwrap(),
            Value::object([("autoscaler-window", Value::from(""))]),
        );
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(instance.operator_crashed());
        let mut fixed = BugToggles::all_injected();
        fixed.fix("KN-2");
        let mut instance = deploy(fixed);
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(!instance.operator_crashed());
    }

    #[test]
    fn kn3_zero_replicas_panics_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(
            &"highAvailability.replicas".parse().unwrap(),
            Value::from(0),
        );
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(instance.operator_crashed());
        let mut fixed = BugToggles::all_injected();
        fixed.fix("KN-3");
        let mut instance = deploy(fixed);
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(!instance.operator_crashed());
        assert!(instance.last_health.is_healthy());
    }

    #[test]
    fn whitebox_ir_reveals_contour_class_dependency() {
        let deps = opdsl::control_dependencies(&KnativeOp.ir());
        assert!(deps.iter().any(|d| {
            d.controller.to_string() == "ingress.class"
                && d.dependent.to_string() == "ingress.contourClass"
                && d.constant == Value::from("contour")
        }));
    }
}
