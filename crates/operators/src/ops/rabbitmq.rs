//! RabbitMQOp: the official RabbitMQ cluster operator (Table 4).
//!
//! Injected bugs: RMQ-1 (config-map updates never roll broker pods),
//! RMQ-2 (backend migration silently ignored — the untested operation the
//! paper's motivating study calls out), RMQ-3 (service-type overrides not
//! applied to the client service).

use std::collections::BTreeMap;

use crdspec::{Schema, Semantic, Value};
use managed::Health;
use opdsl::{IrBuilder, IrModule};
use simkube::objects::{ClaimTemplate, Kind, ObjectData, ServiceType};
use simkube::store::ObjKey;
use simkube::SimCluster;

use crate::bugs::BugToggles;
use crate::common::*;
use crate::crd_parts::*;
use crate::framework::{Operator, OperatorError, INSTANCE, NAMESPACE};

/// The official RabbitMQ cluster operator.
#[derive(Debug, Default)]
pub struct RabbitMqOp;

fn service_type_of(name: &str) -> ServiceType {
    match name {
        "NodePort" => ServiceType::NodePort,
        "LoadBalancer" => ServiceType::LoadBalancer,
        _ => ServiceType::ClusterIp,
    }
}

impl Operator for RabbitMqOp {
    fn name(&self) -> &'static str {
        "RabbitMQOp"
    }

    fn system(&self) -> &'static str {
        "rabbitmq"
    }

    fn kind(&self) -> &'static str {
        "RabbitmqCluster"
    }

    fn schema(&self) -> Schema {
        Schema::object()
            .prop(
                "replicas",
                Schema::integer().min(1).max(9).semantic(Semantic::Replicas),
            )
            .prop(
                "image",
                image_schema().default_value(Value::from("rabbitmq:3.12")),
            )
            .prop(
                "persistence",
                persistence_schema().prop(
                    "backend",
                    Schema::string_enum(["classic", "quorum", "stream"]),
                ),
            )
            .prop(
                "additionalConfig",
                Schema::map(Schema::string()).semantic(Semantic::SystemConfig),
            )
            .prop(
                "override",
                Schema::object().prop(
                    "serviceType",
                    Schema::string_enum(["ClusterIP", "NodePort", "LoadBalancer"])
                        .semantic(Semantic::ServiceType),
                ),
            )
            .prop("mirroring", Schema::boolean())
            .prop("resources", resources_schema())
            .prop("pod", pod_template_schema_without(&["resources"]))
            // Obscurely named AMQP listener port; whitebox learns Port
            // semantics from the sink.
            .prop("clientListener", Schema::integer().min(1).max(65535))
            .require("replicas")
    }

    fn ir(&self) -> IrModule {
        let mut b = IrBuilder::new("rabbitmq-op");
        b.passthrough("replicas", "sts.replicas");
        b.passthrough("image", "pod.image");
        b.passthrough("persistence.backend", "config.backend");
        b.passthrough("override.serviceType", "service.type");
        b.passthrough("clientListener", "service.port");
        b.passthrough("mirroring", "config.mirroring");
        b.guarded_passthrough(
            "persistence.enabled",
            &[
                ("persistence.size", "pvc.size"),
                ("persistence.storageClass", "pvc.storageClass"),
            ],
        );
        b.ret();
        b.finish()
    }

    fn initial_cr(&self) -> Value {
        Value::object([
            ("replicas", Value::from(3)),
            ("image", Value::from("rabbitmq:3.12")),
            (
                "persistence",
                Value::object([
                    ("enabled", Value::from(true)),
                    ("size", Value::from("10Gi")),
                    ("storageClass", Value::from("standard")),
                    ("backend", Value::from("classic")),
                ]),
            ),
            (
                "additionalConfig",
                Value::object([("vm_memory_high_watermark", Value::from("0.4"))]),
            ),
            (
                "override",
                Value::object([("serviceType", Value::from("ClusterIP"))]),
            ),
            ("mirroring", Value::from(false)),
            ("clientListener", Value::from(5672)),
        ])
    }

    fn images(&self) -> Vec<String> {
        vec!["rabbitmq:3.12".to_string(), "rabbitmq:3.13".to_string()]
    }

    fn reconcile(
        &mut self,
        cr: &Value,
        _health: &Health,
        cluster: &mut SimCluster,
        bugs: &BugToggles,
    ) -> Result<(), OperatorError> {
        let replicas = i64_at(cr, "replicas").unwrap_or(3).clamp(1, 9) as i32;
        let image = str_at(cr, "image").unwrap_or_else(|| "rabbitmq:3.12".to_string());
        let sts_key = ObjKey::new(Kind::StatefulSet, NAMESPACE, INSTANCE);
        let deployed = cluster.api().get(&sts_key).is_some();
        let cm_key = ObjKey::new(Kind::ConfigMap, NAMESPACE, &format!("{INSTANCE}-config"));

        // Configuration. RMQ-2: the backend is captured at creation and
        // never migrated.
        let declared_backend =
            str_at(cr, "persistence.backend").unwrap_or_else(|| "classic".to_string());
        let backend = if bugs.injected("RMQ-2") && deployed {
            match cluster.api().get(&cm_key) {
                Some(obj) => match &obj.data {
                    ObjectData::ConfigMap(c) => {
                        c.data.get("backend").cloned().unwrap_or(declared_backend)
                    }
                    _ => declared_backend,
                },
                None => declared_backend,
            }
        } else {
            declared_backend
        };
        let mut entries: BTreeMap<String, String> = map_at(cr, "additionalConfig");
        entries.insert("backend".to_string(), backend);
        entries.insert(
            "mirroring".to_string(),
            bool_at(cr, "mirroring").unwrap_or(false).to_string(),
        );
        entries.insert(
            "amqpPort".to_string(),
            i64_at(cr, "clientListener").unwrap_or(5672).to_string(),
        );
        let hash = config_hash(&entries);
        apply_config(cluster, NAMESPACE, INSTANCE, entries)?;

        // Broker pods. RMQ-1: the config hash is stamped only at creation,
        // so config changes never roll the brokers.
        let effective_hash = if bugs.injected("RMQ-1") && deployed {
            match cluster.api().get(&sts_key) {
                Some(obj) => match &obj.data {
                    ObjectData::StatefulSet(s) => s.template.containers[0].config_hash.clone(),
                    _ => hash,
                },
                None => hash,
            }
        } else {
            hash
        };
        let mut template = pod_template_at(cr, "pod", INSTANCE, None, &image, &effective_hash);
        template.containers[0].resources = resources_at(cr, "resources");
        let claims = if bool_at(cr, "persistence.enabled").unwrap_or(true) {
            vec![ClaimTemplate {
                name: "data".to_string(),
                size: str_at(cr, "persistence.size")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| "10Gi".parse().expect("literal")),
                storage_class: str_at(cr, "persistence.storageClass")
                    .unwrap_or_else(|| "standard".to_string()),
            }]
        } else {
            Vec::new()
        };
        apply_statefulset(cluster, NAMESPACE, INSTANCE, replicas, template, claims)?;
        if let Some(reclaim) = str_at(cr, "persistence.reclaimPolicy") {
            stamp_sts_annotation(cluster, NAMESPACE, INSTANCE, "reclaimPolicy", &reclaim);
        }

        // Client service. RMQ-3: the declared type override is ignored on
        // updates.
        let declared_type =
            str_at(cr, "override.serviceType").unwrap_or_else(|| "ClusterIP".to_string());
        let svc_key = ObjKey::new(Kind::Service, NAMESPACE, INSTANCE);
        let effective_type = if bugs.injected("RMQ-3") {
            match cluster.api().get(&svc_key) {
                Some(obj) => match &obj.data {
                    ObjectData::Service(s) => s.service_type,
                    _ => service_type_of(&declared_type),
                },
                None => service_type_of(&declared_type),
            }
        } else {
            service_type_of(&declared_type)
        };
        let port = i64_at(cr, "clientListener").unwrap_or(5672).clamp(1, 65535) as u16;
        apply_service(cluster, NAMESPACE, INSTANCE, INSTANCE, port, effective_type)?;

        let ready = ready_pods(cluster, NAMESPACE, INSTANCE);
        let cr_key = ObjKey::new(Kind::Custom(self.kind().to_string()), NAMESPACE, INSTANCE);
        write_cr_status(cluster, &cr_key, ready, replicas);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{Instance, CONVERGE_MAX, CONVERGE_RESET};
    use simkube::PlatformBugs;

    fn deploy(bugs: BugToggles) -> Instance {
        Instance::deploy(Box::new(RabbitMqOp), bugs, PlatformBugs::none()).unwrap()
    }

    #[test]
    fn broker_cluster_deploys() {
        let instance = deploy(BugToggles::all_injected());
        assert!(instance.last_health.is_healthy());
        assert_eq!(instance.cluster.pod_summaries(NAMESPACE).len(), 3);
    }

    #[test]
    fn rmq2_backend_migration_ignored_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(
            &"persistence.backend".parse().unwrap(),
            Value::from("quorum"),
        );
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let cm = instance
            .cluster
            .api()
            .get(&ObjKey::new(
                Kind::ConfigMap,
                NAMESPACE,
                "test-cluster-config",
            ))
            .unwrap();
        if let ObjectData::ConfigMap(c) = &cm.data {
            assert_eq!(c.data.get("backend").map(String::as_str), Some("classic"));
        }
        let mut fixed = BugToggles::all_injected();
        fixed.fix("RMQ-2");
        let mut instance = deploy(fixed);
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let cm = instance
            .cluster
            .api()
            .get(&ObjKey::new(
                Kind::ConfigMap,
                NAMESPACE,
                "test-cluster-config",
            ))
            .unwrap();
        if let ObjectData::ConfigMap(c) = &cm.data {
            assert_eq!(c.data.get("backend").map(String::as_str), Some("quorum"));
        }
    }

    #[test]
    fn rmq3_service_type_override_ignored_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(
            &"override.serviceType".parse().unwrap(),
            Value::from("LoadBalancer"),
        );
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let svc = instance
            .cluster
            .api()
            .get(&ObjKey::new(Kind::Service, NAMESPACE, INSTANCE))
            .unwrap();
        if let ObjectData::Service(s) = &svc.data {
            assert_eq!(s.service_type, ServiceType::ClusterIp);
        }
        let mut fixed = BugToggles::all_injected();
        fixed.fix("RMQ-3");
        let mut instance = deploy(fixed);
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let svc = instance
            .cluster
            .api()
            .get(&ObjKey::new(Kind::Service, NAMESPACE, INSTANCE))
            .unwrap();
        if let ObjectData::Service(s) = &svc.data {
            assert_eq!(s.service_type, ServiceType::LoadBalancer);
        }
    }

    #[test]
    fn rmq1_config_change_does_not_roll_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let sts_key = ObjKey::new(Kind::StatefulSet, NAMESPACE, INSTANCE);
        let before = match &instance.cluster.api().get(&sts_key).unwrap().data {
            ObjectData::StatefulSet(s) => s.template.containers[0].config_hash.clone(),
            _ => unreachable!(),
        };
        let mut spec = instance.cr_spec();
        spec.set_path(
            &"additionalConfig.channel_max".parse().unwrap(),
            Value::from("2048"),
        );
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let after = match &instance.cluster.api().get(&sts_key).unwrap().data {
            ObjectData::StatefulSet(s) => s.template.containers[0].config_hash.clone(),
            _ => unreachable!(),
        };
        assert_eq!(before, after);
    }
}
