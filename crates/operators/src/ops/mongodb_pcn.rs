//! PCN/MongoOp: the Percona-style MongoDB operator (Table 4).
//!
//! Injected bugs: MG-PCN-1 (backup schedule only read when backup is first
//! enabled), MG-PCN-2 (disabling monitoring leaves the PMM sidecar),
//! MG-PCN-3 (users-secret rotation ignored), MG-PCN-4 (disruption budget
//! created once, never updated), MG-PCN-5 (stability gate blocks the
//! rollback of a bad configuration).

use std::collections::BTreeMap;

use crdspec::{Schema, Semantic, Value};
use managed::Health;
use opdsl::{IrBuilder, IrModule};
use simkube::objects::{ClaimTemplate, Container, Kind, ObjectData, PodPhase};
use simkube::store::ObjKey;
use simkube::SimCluster;

use crate::bugs::BugToggles;
use crate::common::*;
use crate::crd_parts::*;
use crate::framework::{Operator, OperatorError, INSTANCE, NAMESPACE};

/// The Percona-style MongoDB operator.
#[derive(Debug, Default)]
pub struct MongoPcnOp;

impl MongoPcnOp {
    fn has_failed_pod(cluster: &SimCluster) -> bool {
        cluster
            .api()
            .store()
            .list(&Kind::Pod, NAMESPACE)
            .iter()
            .any(|o| {
                o.meta.labels.get("app").map(String::as_str) == Some(INSTANCE)
                    && matches!(&o.data, ObjectData::Pod(p) if p.phase == PodPhase::Failed)
            })
    }
}

impl Operator for MongoPcnOp {
    fn name(&self) -> &'static str {
        "PCN/MongoOp"
    }

    fn system(&self) -> &'static str {
        "mongodb"
    }

    fn kind(&self) -> &'static str {
        "PerconaServerMongoDB"
    }

    fn schema(&self) -> Schema {
        Schema::object()
            .prop(
                "replsetSize",
                Schema::integer().min(1).max(9).semantic(Semantic::Replicas),
            )
            .prop(
                "image",
                image_schema().default_value(Value::from("percona-mongo:6.0")),
            )
            .prop(
                "configuration",
                Schema::map(Schema::string()).semantic(Semantic::SystemConfig),
            )
            .prop("backup", backup_schema())
            .prop(
                "pmm",
                Schema::object()
                    .prop(
                        "enabled",
                        Schema::boolean()
                            .semantic(Semantic::Toggle)
                            .default_value(Value::Bool(false)),
                    )
                    .prop("image", image_schema())
                    .prop(
                        "serverHost",
                        Schema::string().semantic(Semantic::ServiceName),
                    ),
            )
            .prop(
                "secrets",
                Schema::object()
                    .prop("users", Schema::string().semantic(Semantic::SecretRef))
                    .prop(
                        "encryptionKey",
                        Schema::string().semantic(Semantic::SecretRef),
                    ),
            )
            .prop("pdb", pdb_schema())
            .prop("pod", pod_template_schema())
            .prop("persistence", persistence_schema())
            .require("replsetSize")
    }

    fn ir(&self) -> IrModule {
        let mut b = IrBuilder::new("mongo-pcn-op");
        b.passthrough("replsetSize", "sts.replicas");
        b.passthrough("image", "pod.image");
        b.passthrough("secrets.users", "config.usersSecret");
        b.guarded_passthrough(
            "backup.enabled",
            &[
                ("backup.schedule", "config.backupSchedule"),
                ("backup.destination", "config.backupDestination"),
            ],
        );
        b.guarded_passthrough(
            "pmm.enabled",
            &[
                ("pmm.image", "sidecar.image"),
                ("pmm.serverHost", "config.pmmServer"),
            ],
        );
        b.guarded_passthrough("pdb.enabled", &[("pdb.minAvailable", "pdb.minAvailable")]);
        b.guarded_passthrough(
            "persistence.enabled",
            &[
                ("persistence.size", "pvc.size"),
                ("persistence.storageClass", "pvc.storageClass"),
            ],
        );
        b.ret();
        b.finish()
    }

    fn initial_cr(&self) -> Value {
        Value::object([
            ("replsetSize", Value::from(3)),
            ("image", Value::from("percona-mongo:6.0")),
            (
                "configuration",
                Value::object([("storageEngine", Value::from("wiredTiger"))]),
            ),
            (
                "backup",
                Value::object([
                    ("enabled", Value::from(false)),
                    ("schedule", Value::from("@daily")),
                    ("destination", Value::from("s3://bucket")),
                ]),
            ),
            ("pmm", Value::object([("enabled", Value::from(false))])),
            (
                "secrets",
                Value::object([("users", Value::from("users-secret"))]),
            ),
            (
                "pdb",
                Value::object([
                    ("enabled", Value::from(true)),
                    ("minAvailable", Value::from(2)),
                ]),
            ),
            (
                "persistence",
                Value::object([
                    ("enabled", Value::from(true)),
                    ("size", Value::from("20Gi")),
                    ("storageClass", Value::from("standard")),
                ]),
            ),
        ])
    }

    fn images(&self) -> Vec<String> {
        vec![
            "percona-mongo:6.0".to_string(),
            "percona-mongo:5.0".to_string(),
            "pmm-client:2.41".to_string(),
        ]
    }

    fn reconcile(
        &mut self,
        cr: &Value,
        _health: &Health,
        cluster: &mut SimCluster,
        bugs: &BugToggles,
    ) -> Result<(), OperatorError> {
        let sts_key = ObjKey::new(Kind::StatefulSet, NAMESPACE, INSTANCE);
        let deployed = cluster.api().get(&sts_key).is_some();
        // MG-PCN-5: the stability gate.
        if bugs.injected("MG-PCN-5") && deployed && Self::has_failed_pod(cluster) {
            return Ok(());
        }
        let replicas = i64_at(cr, "replsetSize").unwrap_or(3).clamp(1, 9) as i32;
        let image = str_at(cr, "image").unwrap_or_else(|| "percona-mongo:6.0".to_string());

        let cm_key = ObjKey::new(Kind::ConfigMap, NAMESPACE, &format!("{INSTANCE}-config"));
        let existing_cm: BTreeMap<String, String> = match cluster.api().get(&cm_key) {
            Some(obj) => match &obj.data {
                ObjectData::ConfigMap(c) => c.data.clone(),
                _ => BTreeMap::new(),
            },
            None => BTreeMap::new(),
        };

        let mut entries: BTreeMap<String, String> = map_at(cr, "configuration");
        // MG-PCN-3: the users secret is baked in at creation only.
        let declared_secret = str_at(cr, "secrets.users").unwrap_or_default();
        let users_secret = if bugs.injected("MG-PCN-3") {
            existing_cm
                .get("usersSecret")
                .cloned()
                .unwrap_or(declared_secret)
        } else {
            declared_secret
        };
        if !users_secret.is_empty() {
            entries.insert("usersSecret".to_string(), users_secret);
        }
        if let Some(key) = str_at(cr, "secrets.encryptionKey") {
            entries.insert("encryptionKeySecret".to_string(), key);
        }
        // Backup. MG-PCN-1: the schedule is captured when backup is first
        // enabled and never refreshed.
        if bool_at(cr, "backup.enabled").unwrap_or(false) {
            let declared_schedule = str_at(cr, "backup.schedule").unwrap_or_default();
            let schedule = if bugs.injected("MG-PCN-1") {
                existing_cm
                    .get("backupSchedule")
                    .cloned()
                    .unwrap_or(declared_schedule)
            } else {
                declared_schedule
            };
            entries.insert("backupSchedule".to_string(), schedule);
            if let Some(dest) = str_at(cr, "backup.destination") {
                entries.insert("backupDestination".to_string(), dest);
            }
        }
        let pmm_on = bool_at(cr, "pmm.enabled").unwrap_or(false);
        if pmm_on {
            if let Some(host) = str_at(cr, "pmm.serverHost") {
                entries.insert("pmmServer".to_string(), host);
            }
        }
        let hash = config_hash(&entries);
        apply_config(cluster, NAMESPACE, INSTANCE, entries)?;

        // Pod template with optional PMM sidecar. MG-PCN-2: the sidecar is
        // never removed once added.
        let mut template = pod_template_at(cr, "pod", INSTANCE, None, &image, &hash);
        let had_pmm = match cluster.api().get(&sts_key) {
            Some(obj) => match &obj.data {
                ObjectData::StatefulSet(s) => s.template.containers.iter().any(|c| c.name == "pmm"),
                _ => false,
            },
            None => false,
        };
        if pmm_on || (bugs.injected("MG-PCN-2") && had_pmm) {
            template.containers.push(Container {
                name: "pmm".to_string(),
                image: str_at(cr, "pmm.image").unwrap_or_else(|| "pmm-client:2.41".to_string()),
                ..Container::default()
            });
        }
        let claims = if bool_at(cr, "persistence.enabled").unwrap_or(true) {
            vec![ClaimTemplate {
                name: "data".to_string(),
                size: str_at(cr, "persistence.size")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| "20Gi".parse().expect("literal")),
                storage_class: str_at(cr, "persistence.storageClass")
                    .unwrap_or_else(|| "standard".to_string()),
            }]
        } else {
            Vec::new()
        };
        apply_statefulset(cluster, NAMESPACE, INSTANCE, replicas, template, claims)?;
        if let Some(reclaim) = str_at(cr, "persistence.reclaimPolicy") {
            stamp_sts_annotation(cluster, NAMESPACE, INSTANCE, "reclaimPolicy", &reclaim);
        }

        // Disruption budget. MG-PCN-4: create-only.
        let pdb_name = format!("{INSTANCE}-pdb");
        let pdb_key = ObjKey::new(Kind::PodDisruptionBudget, NAMESPACE, &pdb_name);
        if bool_at(cr, "pdb.enabled").unwrap_or(false) {
            let min = i64_at(cr, "pdb.minAvailable").unwrap_or(1) as i32;
            let exists = cluster.api().get(&pdb_key).is_some();
            if !exists || !bugs.injected("MG-PCN-4") {
                apply_pdb(cluster, NAMESPACE, &pdb_name, INSTANCE, min)?;
            }
        } else if !bugs.injected("MG-PCN-4") {
            delete_if_exists(cluster, Kind::PodDisruptionBudget, NAMESPACE, &pdb_name);
        }

        let ready = ready_pods(cluster, NAMESPACE, INSTANCE);
        let cr_key = ObjKey::new(Kind::Custom(self.kind().to_string()), NAMESPACE, INSTANCE);
        write_cr_status(cluster, &cr_key, ready, replicas);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{Instance, CONVERGE_MAX, CONVERGE_RESET};
    use simkube::PlatformBugs;

    fn deploy(bugs: BugToggles) -> Instance {
        Instance::deploy(Box::new(MongoPcnOp), bugs, PlatformBugs::none()).unwrap()
    }

    #[test]
    fn deploys_with_pdb() {
        let instance = deploy(BugToggles::all_injected());
        assert_eq!(instance.cluster.pod_summaries(NAMESPACE).len(), 3);
        assert!(instance
            .cluster
            .api()
            .get(&ObjKey::new(
                Kind::PodDisruptionBudget,
                NAMESPACE,
                "test-cluster-pdb"
            ))
            .is_some());
    }

    #[test]
    fn pcn1_schedule_frozen_after_enable_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(&"backup.enabled".parse().unwrap(), Value::from(true));
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        spec.set_path(&"backup.schedule".parse().unwrap(), Value::from("@hourly"));
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let cm = instance
            .cluster
            .api()
            .get(&ObjKey::new(
                Kind::ConfigMap,
                NAMESPACE,
                "test-cluster-config",
            ))
            .unwrap();
        if let ObjectData::ConfigMap(c) = &cm.data {
            assert_eq!(
                c.data.get("backupSchedule").map(String::as_str),
                Some("@daily"),
                "schedule should stay frozen under the injected bug"
            );
        }
    }

    #[test]
    fn pcn4_pdb_update_ignored_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(&"pdb.minAvailable".parse().unwrap(), Value::from(1));
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let pdb = instance
            .cluster
            .api()
            .get(&ObjKey::new(
                Kind::PodDisruptionBudget,
                NAMESPACE,
                "test-cluster-pdb",
            ))
            .unwrap();
        if let ObjectData::PodDisruptionBudget(p) = &pdb.data {
            assert_eq!(p.min_available, 2, "update ignored");
        }
        let mut fixed = BugToggles::all_injected();
        fixed.fix("MG-PCN-4");
        let mut instance = deploy(fixed);
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let pdb = instance
            .cluster
            .api()
            .get(&ObjKey::new(
                Kind::PodDisruptionBudget,
                NAMESPACE,
                "test-cluster-pdb",
            ))
            .unwrap();
        if let ObjectData::PodDisruptionBudget(p) = &pdb.data {
            assert_eq!(p.min_available, 1);
        }
    }

    #[test]
    fn pcn5_gate_blocks_rollback_of_bad_storage_engine() {
        let mut instance = deploy(BugToggles::all_injected());
        let good = instance.cr_spec();
        let mut bad = good.clone();
        bad.set_path(
            &"configuration".parse().unwrap(),
            Value::object([("storageEngine", Value::from("bogusEngine"))]),
        );
        instance.submit(bad).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(!instance.last_health.is_healthy());
        instance.submit(good).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(!instance.last_health.is_healthy(), "gate blocks rollback");
    }

    #[test]
    fn pcn2_pmm_sidecar_persists_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(&"pmm.enabled".parse().unwrap(), Value::from(true));
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        spec.set_path(&"pmm.enabled".parse().unwrap(), Value::from(false));
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let sts = instance
            .cluster
            .api()
            .get(&ObjKey::new(Kind::StatefulSet, NAMESPACE, INSTANCE))
            .unwrap();
        if let ObjectData::StatefulSet(s) = &sts.data {
            assert!(s.template.containers.iter().any(|c| c.name == "pmm"));
        }
    }
    #[test]
    fn pcn3_users_secret_rotation_ignored_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(&"secrets.users".parse().unwrap(), Value::from("users-v2"));
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let cm = instance
            .cluster
            .api()
            .get(&ObjKey::new(
                Kind::ConfigMap,
                NAMESPACE,
                "test-cluster-config",
            ))
            .unwrap();
        if let ObjectData::ConfigMap(c) = &cm.data {
            assert_eq!(
                c.data.get("usersSecret").map(String::as_str),
                Some("users-secret"),
                "rotation ignored"
            );
        }
        let mut fixed = BugToggles::all_injected();
        fixed.fix("MG-PCN-3");
        let mut instance = deploy(fixed);
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let cm = instance
            .cluster
            .api()
            .get(&ObjKey::new(
                Kind::ConfigMap,
                NAMESPACE,
                "test-cluster-config",
            ))
            .unwrap();
        if let ObjectData::ConfigMap(c) = &cm.data {
            assert_eq!(
                c.data.get("usersSecret").map(String::as_str),
                Some("users-v2")
            );
        }
    }
}
