//! ZooKeeperOp: the Pravega-style ZooKeeper operator (Table 4).
//!
//! Injected bugs: ZK-1 (label deletion ignored), ZK-2
//! (`quorumListenOnAllIPs` never written), ZK-3 (domain name only applied
//! at creation), ZK-4 (reclaim policy frozen after creation), ZK-5
//! (privileged client port crashes the ensemble; the Acto-blackbox miss),
//! ZK-6 (stability gate blocks rollback). The `ephemeral.emptyDirSize`
//! property depends on `storageType == "ephemeral"` — the paper's
//! false-positive example for Acto-blackbox.

use std::collections::BTreeMap;

use crdspec::{Schema, Semantic, Value};
use managed::Health;
use opdsl::{Cmp, IrBuilder, IrModule, Operand};
use simkube::cluster::LogLevel;
use simkube::meta::{LabelSelector, ObjectMeta};
use simkube::objects::{
    ClaimTemplate, ConfigMap, Kind, ObjectData, PodPhase, Service, ServiceType,
};
use simkube::store::ObjKey;
use simkube::SimCluster;

use crate::bugs::{BugToggles, SEEDED_NONIDEMPOTENT_CREATE};
use crate::common::*;
use crate::crd_parts::*;
use crate::framework::{Operator, OperatorError, INSTANCE, NAMESPACE};

/// The ZooKeeper operator.
#[derive(Debug, Default)]
pub struct ZooKeeperOp;

impl ZooKeeperOp {
    fn has_failed_pod(cluster: &SimCluster) -> bool {
        cluster
            .api()
            .store()
            .list(&Kind::Pod, NAMESPACE)
            .iter()
            .any(|o| {
                o.meta.labels.get("app").map(String::as_str) == Some(INSTANCE)
                    && matches!(&o.data, ObjectData::Pod(p) if p.phase == PodPhase::Failed)
            })
    }

    fn sts_exists(cluster: &SimCluster) -> bool {
        cluster
            .api()
            .get(&ObjKey::new(Kind::StatefulSet, NAMESPACE, INSTANCE))
            .is_some()
    }

    /// Deterministic FNV-1a fingerprint of the canonical spec rendering,
    /// naming the per-declaration init marker.
    fn spec_fingerprint(cr: &Value) -> u64 {
        let json = crdspec::json::to_string(cr);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in json.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        h
    }

    /// SEED-CRASH-1 ([`SEEDED_NONIDEMPOTENT_CREATE`]): per-declaration
    /// initialization modeled as a bare create followed by a separate
    /// completion stamp. The sequence is neither atomic nor idempotent: if
    /// the process dies between the two writes, the retry after restart
    /// blindly re-creates the marker, wedges on `AlreadyExists` forever, and
    /// the declared change behind it is never applied.
    fn seeded_init_marker(
        &self,
        cr: &Value,
        cluster: &mut SimCluster,
    ) -> Result<(), OperatorError> {
        let marker = format!("zk-init-{:016x}", Self::spec_fingerprint(cr));
        let key = ObjKey::new(Kind::ConfigMap, NAMESPACE, &marker);
        let done = cluster
            .api()
            .get(&key)
            .map(|o| o.meta.annotations.contains_key("complete"))
            .unwrap_or(false);
        if done {
            return Ok(());
        }
        let time = cluster.now();
        cluster
            .api_mut()
            .create_object(
                ObjectMeta::named(NAMESPACE, &marker),
                ObjectData::ConfigMap(ConfigMap {
                    data: BTreeMap::new(),
                }),
                time,
            )
            .map_err(|e| OperatorError::Transient(format!("init marker: {e}")))?;
        let time = cluster.now();
        cluster
            .api_mut()
            .apply_object(
                ObjectMeta::named(NAMESPACE, &marker).with_annotation("complete", "true"),
                ObjectData::ConfigMap(ConfigMap {
                    data: BTreeMap::new(),
                }),
                time,
            )
            .map_err(|e| OperatorError::Transient(format!("init marker stamp: {e}")))?;
        Ok(())
    }
}

impl Operator for ZooKeeperOp {
    fn name(&self) -> &'static str {
        "ZooKeeperOp"
    }

    fn system(&self) -> &'static str {
        "zookeeper"
    }

    fn kind(&self) -> &'static str {
        "ZookeeperCluster"
    }

    fn schema(&self) -> Schema {
        Schema::object()
            .prop(
                "replicas",
                Schema::integer()
                    .min(0)
                    .max(7)
                    .semantic(Semantic::Replicas)
                    .default_value(Value::from(3)),
            )
            .prop(
                "image",
                image_schema().default_value(Value::from("zookeeper:3.8")),
            )
            .prop(
                "domainName",
                Schema::string().semantic(Semantic::ServiceName),
            )
            // Deliberately non-suggestive name: the blackbox mode cannot
            // infer port semantics here; the whitebox mode learns it from
            // the `service.port` sink.
            .prop("clientAccess", Schema::integer().min(1).max(65535))
            .prop(
                "storageType",
                Schema::string_enum(["persistent", "ephemeral"])
                    .semantic(Semantic::StorageType)
                    .default_value(Value::from("persistent")),
            )
            .prop(
                "ephemeral",
                Schema::object().prop(
                    "emptyDirSize",
                    Schema::string()
                        .format("quantity")
                        .semantic(Semantic::StorageSize),
                ),
            )
            .prop("persistence", persistence_schema())
            .prop("pod", pod_template_schema())
            .prop(
                "config",
                Schema::object()
                    .prop("initLimit", Schema::integer().min(1).max(100))
                    .prop("syncLimit", Schema::integer().min(1).max(100))
                    .prop("tickTime", Schema::integer().min(100).max(10000))
                    .prop("quorumListenOnAllIPs", Schema::boolean()),
            )
            .prop(
                "extraConfig",
                Schema::map(Schema::string()).semantic(Semantic::SystemConfig),
            )
            .prop(
                "adminServer",
                Schema::object()
                    .prop(
                        "enabled",
                        Schema::boolean()
                            .semantic(Semantic::Toggle)
                            .default_value(Value::Bool(false)),
                    )
                    .prop(
                        "port",
                        Schema::integer().min(1).max(65535).semantic(Semantic::Port),
                    ),
            )
            .require("replicas")
    }

    fn ir(&self) -> IrModule {
        let mut b = IrBuilder::new("zookeeper-op");
        b.passthrough("replicas", "sts.replicas");
        b.passthrough("image", "pod.image");
        b.passthrough("clientAccess", "service.port");
        b.passthrough("domainName", "service.hostname");
        b.passthrough("config.initLimit", "config.initLimit");
        b.passthrough("config.syncLimit", "config.syncLimit");
        b.passthrough("config.tickTime", "config.tickTime");
        b.passthrough("config.quorumListenOnAllIPs", "config.quorumListenOnAllIPs");
        // ephemeral.emptyDirSize is consumed only when storageType is
        // "ephemeral" (a non-toggle predicate: the blackbox FP site).
        let st = b.load("storageType");
        let is_ephemeral = b.compare(
            Cmp::Eq,
            Operand::Var(st),
            Operand::Const(Value::from("ephemeral")),
        );
        let eph_block = b.new_block();
        let persist_block = b.new_block();
        let join = b.new_block();
        b.branch(Operand::Var(is_ephemeral), eph_block, persist_block);
        b.switch_to(eph_block);
        b.passthrough("ephemeral.emptyDirSize", "pod.emptydir.size");
        b.jump(join);
        b.switch_to(persist_block);
        b.passthrough("persistence.size", "pvc.size");
        b.passthrough("persistence.storageClass", "pvc.storageClass");
        b.passthrough("persistence.reclaimPolicy", "pvc.reclaimPolicy");
        b.jump(join);
        b.switch_to(join);
        b.guarded_passthrough("adminServer.enabled", &[("adminServer.port", "admin.port")]);
        b.ret();
        b.finish()
    }

    fn initial_cr(&self) -> Value {
        Value::object([
            ("replicas", Value::from(3)),
            ("image", Value::from("zookeeper:3.8")),
            ("clientAccess", Value::from(2181)),
            ("storageType", Value::from("persistent")),
            (
                "persistence",
                Value::object([
                    ("enabled", Value::from(true)),
                    ("size", Value::from("10Gi")),
                    ("storageClass", Value::from("standard")),
                    ("reclaimPolicy", Value::from("Retain")),
                ]),
            ),
            (
                "config",
                Value::object([
                    ("initLimit", Value::from(10)),
                    ("syncLimit", Value::from(5)),
                    ("tickTime", Value::from(2000)),
                    ("quorumListenOnAllIPs", Value::from(false)),
                ]),
            ),
            (
                "extraConfig",
                Value::object([("snapCount", Value::from("10000"))]),
            ),
            ("domainName", Value::from("zk.example.com")),
        ])
    }

    fn images(&self) -> Vec<String> {
        vec![
            "zookeeper:3.8".to_string(),
            "zookeeper:3.9".to_string(),
            "zookeeper:3.7".to_string(),
        ]
    }

    fn reconcile(
        &mut self,
        cr: &Value,
        _health: &Health,
        cluster: &mut SimCluster,
        bugs: &BugToggles,
    ) -> Result<(), OperatorError> {
        // ZK-6: the stability gate — perform no operation (including the
        // rollback Acto issues) while any member is in a failed state.
        if bugs.injected("ZK-6") && Self::sts_exists(cluster) && Self::has_failed_pod(cluster) {
            return Ok(());
        }
        // The seeded crash-consistency bug runs before the main writes, so a
        // wedged init marker blocks the declared change from ever landing.
        if bugs.seeded(SEEDED_NONIDEMPOTENT_CREATE) {
            self.seeded_init_marker(cr, cluster)?;
        }
        let replicas = i64_at(cr, "replicas").unwrap_or(3).clamp(0, 7) as i32;
        let image = str_at(cr, "image").unwrap_or_else(|| "zookeeper:3.8".to_string());
        let requested_port = i64_at(cr, "clientAccess").unwrap_or(2181);
        // ZK-5 (fixed path): validate that the port is unprivileged before
        // applying; the injected bug applies it blindly and the ensemble
        // crashes on bind.
        let client_port = if !bugs.injected("ZK-5") && requested_port < 1024 {
            cluster.log(
                LogLevel::Error,
                self.name(),
                format!("rejecting privileged client port {requested_port}"),
            );
            2181
        } else {
            requested_port
        };

        // Configuration entries.
        let mut entries: BTreeMap<String, String> = BTreeMap::new();
        entries.insert("clientPort".to_string(), client_port.to_string());
        entries.insert("ensembleSize".to_string(), replicas.to_string());
        entries.insert(
            "initLimit".to_string(),
            i64_at(cr, "config.initLimit").unwrap_or(10).to_string(),
        );
        entries.insert(
            "syncLimit".to_string(),
            i64_at(cr, "config.syncLimit").unwrap_or(5).to_string(),
        );
        entries.insert(
            "tickTime".to_string(),
            i64_at(cr, "config.tickTime").unwrap_or(2000).to_string(),
        );
        // ZK-2: the toggle is simply never written.
        if !bugs.injected("ZK-2") {
            entries.insert(
                "quorumListenOnAllIPs".to_string(),
                bool_at(cr, "config.quorumListenOnAllIPs")
                    .unwrap_or(false)
                    .to_string(),
            );
        }
        for (k, v) in map_at(cr, "extraConfig") {
            entries.insert(k, v);
        }
        for ordinal in 0..replicas {
            entries.insert(format!("myid.{INSTANCE}-{ordinal}"), ordinal.to_string());
        }
        if bool_at(cr, "adminServer.enabled").unwrap_or(false) {
            entries.insert(
                "adminPort".to_string(),
                i64_at(cr, "adminServer.port").unwrap_or(8080).to_string(),
            );
        }
        let hash = config_hash(&entries);
        apply_config(cluster, NAMESPACE, INSTANCE, entries)?;

        // Pod template.
        let mut template = pod_template_at(cr, "pod", INSTANCE, None, &image, &hash);
        // ZK-1: label deletions are ignored — the operator merges declared
        // labels over whatever the existing template already carries.
        if bugs.injected("ZK-1") {
            if let Some(obj) =
                cluster
                    .api()
                    .get(&ObjKey::new(Kind::StatefulSet, NAMESPACE, INSTANCE))
            {
                if let ObjectData::StatefulSet(existing) = &obj.data {
                    let mut merged = existing.template.labels.clone();
                    merged.extend(template.labels.clone());
                    template.labels = merged;
                }
            }
        }

        // Storage.
        let storage_type = str_at(cr, "storageType").unwrap_or_else(|| "persistent".to_string());
        let persistence_on = bool_at(cr, "persistence.enabled").unwrap_or(true);
        let claims = if storage_type == "persistent" && persistence_on {
            vec![ClaimTemplate {
                name: "data".to_string(),
                size: str_at(cr, "persistence.size")
                    .unwrap_or_else(|| "10Gi".to_string())
                    .parse()
                    .unwrap_or_else(|_| "10Gi".parse().expect("literal")),
                storage_class: str_at(cr, "persistence.storageClass")
                    .unwrap_or_else(|| "standard".to_string()),
            }]
        } else {
            // The ephemeral empty-dir size only applies in ephemeral mode.
            if let Some(size) = str_at(cr, "ephemeral.emptyDirSize") {
                template.containers[0]
                    .env
                    .insert("EMPTYDIR_SIZE".to_string(), size);
            }
            Vec::new()
        };
        apply_statefulset(cluster, NAMESPACE, INSTANCE, replicas, template, claims)?;

        // ZK-4: the reclaim policy is recorded on the stateful set only at
        // creation time; later declarations never update it.
        let reclaim =
            str_at(cr, "persistence.reclaimPolicy").unwrap_or_else(|| "Retain".to_string());
        let sts_key = ObjKey::new(Kind::StatefulSet, NAMESPACE, INSTANCE);
        let time = cluster.now();
        let zk4 = bugs.injected("ZK-4");
        let _ = cluster
            .api_mut()
            .store_mut()
            .update_with(&sts_key, time, |o| {
                let slot = o.meta.annotations.entry("reclaimPolicy".to_string());
                match slot {
                    std::collections::btree_map::Entry::Vacant(v) => {
                        v.insert(reclaim.clone());
                    }
                    std::collections::btree_map::Entry::Occupied(mut occ) => {
                        if !zk4 {
                            occ.insert(reclaim.clone());
                        }
                    }
                }
            });

        // Client service. ZK-3: the domain annotation is only stamped when
        // the service is first created.
        let svc_key = ObjKey::new(Kind::Service, NAMESPACE, INSTANCE);
        let domain = str_at(cr, "domainName").unwrap_or_default();
        let svc_exists = cluster.api().get(&svc_key).is_some();
        let svc = Service {
            selector: LabelSelector::match_labels([("app", INSTANCE)]),
            ports: vec![client_port.clamp(1, 65535) as u16],
            service_type: ServiceType::ClusterIp,
            endpoints: Vec::new(),
        };
        let mut meta = ObjectMeta::named(NAMESPACE, INSTANCE);
        if !svc_exists || !bugs.injected("ZK-3") {
            meta = meta.with_annotation("hostname", &domain);
        } else if let Some(existing) = cluster.api().get(&svc_key) {
            if let Some(old) = existing.meta.annotations.get("hostname") {
                meta = meta.with_annotation("hostname", old);
            }
        }
        let time = cluster.now();
        cluster
            .api_mut()
            .apply_object(meta, ObjectData::Service(svc), time)
            .map_err(|e| OperatorError::Transient(e.to_string()))?;

        // Status.
        let ready = ready_pods(cluster, NAMESPACE, INSTANCE);
        let cr_key = ObjKey::new(Kind::Custom(self.kind().to_string()), NAMESPACE, INSTANCE);
        write_cr_status(cluster, &cr_key, ready, replicas);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{Instance, CONVERGE_MAX, CONVERGE_RESET};
    use simkube::PlatformBugs;

    fn deploy(bugs: BugToggles) -> Instance {
        Instance::deploy(Box::new(ZooKeeperOp), bugs, PlatformBugs::none()).unwrap()
    }

    #[test]
    fn initial_deploy_is_healthy() {
        let instance = deploy(BugToggles::all_injected());
        assert_eq!(instance.cluster.pod_summaries(NAMESPACE).len(), 3);
        assert!(instance.last_health.is_healthy());
        assert_eq!(
            instance.cr_status().get("phase").and_then(Value::as_str),
            Some("Ready")
        );
    }

    #[test]
    fn scale_up_and_down() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(&"replicas".parse().unwrap(), Value::from(5));
        instance.submit(spec.clone()).unwrap();
        assert!(instance.converge(CONVERGE_RESET, CONVERGE_MAX));
        assert_eq!(instance.cluster.pod_summaries(NAMESPACE).len(), 5);
        spec.set_path(&"replicas".parse().unwrap(), Value::from(2));
        instance.submit(spec).unwrap();
        assert!(instance.converge(CONVERGE_RESET, CONVERGE_MAX));
        assert_eq!(instance.cluster.pod_summaries(NAMESPACE).len(), 2);
    }

    #[test]
    fn zk1_label_deletion_ignored_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(
            &"pod.labels".parse().unwrap(),
            Value::object([("team", Value::from("infra"))]),
        );
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        // Now delete the label.
        spec.set_path(&"pod.labels".parse().unwrap(), Value::empty_object());
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let sts = instance
            .cluster
            .api()
            .get(&ObjKey::new(Kind::StatefulSet, NAMESPACE, INSTANCE))
            .unwrap();
        if let ObjectData::StatefulSet(s) = &sts.data {
            assert_eq!(
                s.template.labels.get("team").map(String::as_str),
                Some("infra"),
                "injected bug keeps the deleted label"
            );
        }
        // Fixed operator removes it.
        let mut fixed = BugToggles::all_injected();
        fixed.fix("ZK-1");
        let mut instance = deploy(fixed);
        let mut spec = instance.cr_spec();
        spec.set_path(
            &"pod.labels".parse().unwrap(),
            Value::object([("team", Value::from("infra"))]),
        );
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        spec.set_path(&"pod.labels".parse().unwrap(), Value::empty_object());
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let sts = instance
            .cluster
            .api()
            .get(&ObjKey::new(Kind::StatefulSet, NAMESPACE, INSTANCE))
            .unwrap();
        if let ObjectData::StatefulSet(s) = &sts.data {
            assert_eq!(s.template.labels.get("team"), None);
        }
    }

    #[test]
    fn zk2_quorum_toggle_never_written() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(
            &"config.quorumListenOnAllIPs".parse().unwrap(),
            Value::from(true),
        );
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let cm = instance
            .cluster
            .api()
            .get(&ObjKey::new(
                Kind::ConfigMap,
                NAMESPACE,
                "test-cluster-config",
            ))
            .unwrap();
        if let ObjectData::ConfigMap(c) = &cm.data {
            assert!(!c.data.contains_key("quorumListenOnAllIPs"));
        }
    }

    #[test]
    fn zk5_privileged_port_crashes_system_only_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(&"clientAccess".parse().unwrap(), Value::from(80));
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(
            !instance.last_health.is_healthy(),
            "ensemble should crash on privileged port"
        );
        // Fixed operator rejects the port and stays healthy.
        let mut fixed = BugToggles::all_injected();
        fixed.fix("ZK-5");
        let mut instance = deploy(fixed);
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(instance.last_health.is_healthy());
        assert!(instance
            .cluster
            .logs()
            .iter()
            .any(|l| l.message.contains("privileged client port")));
    }

    #[test]
    fn zk6_gate_blocks_rollback_recovery() {
        // Drive the system into an error state via a bad snapCount, then
        // roll back; the injected gate never recovers, the fixed one does.
        let mut instance = deploy(BugToggles::all_injected());
        let good = instance.cr_spec();
        let mut bad = good.clone();
        bad.set_path(
            &"extraConfig".parse().unwrap(),
            Value::object([("snapCount", Value::from("garbage"))]),
        );
        instance.submit(bad.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(!instance.last_health.is_healthy());
        instance.submit(good.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(
            !instance.last_health.is_healthy(),
            "gated operator cannot roll back"
        );
        // Fixed gate recovers.
        let mut fixed = BugToggles::all_injected();
        fixed.fix("ZK-6");
        let mut instance = deploy(fixed);
        instance.submit(bad).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(!instance.last_health.is_healthy());
        instance.submit(good).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(instance.last_health.is_healthy(), "fixed operator recovers");
    }

    #[test]
    fn ephemeral_size_only_applies_with_matching_storage_type() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(
            &"ephemeral.emptyDirSize".parse().unwrap(),
            Value::from("1Gi"),
        );
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        // storageType is persistent: the property has no effect.
        let sts = instance
            .cluster
            .api()
            .get(&ObjKey::new(Kind::StatefulSet, NAMESPACE, INSTANCE))
            .unwrap();
        if let ObjectData::StatefulSet(s) = &sts.data {
            assert!(!s.template.containers[0].env.contains_key("EMPTYDIR_SIZE"));
        }
        // Switching to ephemeral activates it.
        spec.set_path(&"storageType".parse().unwrap(), Value::from("ephemeral"));
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let sts = instance
            .cluster
            .api()
            .get(&ObjKey::new(Kind::StatefulSet, NAMESPACE, INSTANCE))
            .unwrap();
        if let ObjectData::StatefulSet(s) = &sts.data {
            assert_eq!(
                s.template.containers[0]
                    .env
                    .get("EMPTYDIR_SIZE")
                    .map(String::as_str),
                Some("1Gi")
            );
        }
    }

    #[test]
    fn whitebox_ir_reveals_storage_type_dependency() {
        let deps = opdsl::control_dependencies(&ZooKeeperOp.ir());
        assert!(deps.iter().any(|d| {
            d.controller.to_string() == "storageType"
                && d.dependent.to_string() == "ephemeral.emptyDirSize"
                && d.constant == Value::from("ephemeral")
        }));
        // The admin-server port is toggle-guarded.
        assert!(deps.iter().any(|d| {
            d.controller.to_string() == "adminServer.enabled"
                && d.dependent.to_string() == "adminServer.port"
        }));
    }
    #[test]
    fn zk3_domain_change_ignored_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(
            &"domainName".parse().unwrap(),
            Value::from("zk.new.example"),
        );
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let svc = instance
            .cluster
            .api()
            .get(&ObjKey::new(Kind::Service, NAMESPACE, INSTANCE))
            .unwrap();
        assert_eq!(
            svc.meta.annotations.get("hostname").map(String::as_str),
            Some("zk.example.com"),
            "injected bug keeps the creation-time domain"
        );
        let mut fixed = BugToggles::all_injected();
        fixed.fix("ZK-3");
        let mut instance = deploy(fixed);
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let svc = instance
            .cluster
            .api()
            .get(&ObjKey::new(Kind::Service, NAMESPACE, INSTANCE))
            .unwrap();
        assert_eq!(
            svc.meta.annotations.get("hostname").map(String::as_str),
            Some("zk.new.example")
        );
    }

    #[test]
    fn zk4_reclaim_policy_frozen_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(
            &"persistence.reclaimPolicy".parse().unwrap(),
            Value::from("Delete"),
        );
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let sts = instance
            .cluster
            .api()
            .get(&ObjKey::new(Kind::StatefulSet, NAMESPACE, INSTANCE))
            .unwrap();
        assert_eq!(
            sts.meta
                .annotations
                .get("reclaimPolicy")
                .map(String::as_str),
            Some("Retain"),
            "injected bug keeps the creation-time policy"
        );
        let mut fixed = BugToggles::all_injected();
        fixed.fix("ZK-4");
        let mut instance = deploy(fixed);
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let sts = instance
            .cluster
            .api()
            .get(&ObjKey::new(Kind::StatefulSet, NAMESPACE, INSTANCE))
            .unwrap();
        assert_eq!(
            sts.meta
                .annotations
                .get("reclaimPolicy")
                .map(String::as_str),
            Some("Delete")
        );
    }
}
