//! The eleven evaluated operators.

pub mod cassandra;
pub mod cockroach;
pub mod knative;
pub mod mongodb_ofc;
pub mod mongodb_pcn;
pub mod rabbitmq;
pub mod redis_ock;
pub mod redis_sah;
pub mod tidb;
pub mod xtradb;
pub mod zookeeper;
