//! XtraDBOp: the Percona XtraDB cluster operator (Table 4).
//!
//! Injected bugs: PXC-1 (pxc label deletion ignored), PXC-2 (disabling
//! ProxySQL leaves the proxy pods), PXC-3 (backup-storage removal
//! ignored), PXC-4 (resources honoured only at creation), PXC-5 (invalid
//! cron panics schedule parsing), PXC-6 (stability gate blocks rollback).

use std::collections::BTreeMap;

use crdspec::{Schema, Semantic, Value};
use managed::Health;
use opdsl::{IrBuilder, IrModule};
use simkube::cluster::LogLevel;
use simkube::meta::{LabelSelector, ObjectMeta};
use simkube::objects::{
    ClaimTemplate, Container, Deployment, Kind, ObjectData, PodPhase, PodTemplate,
};
use simkube::store::ObjKey;
use simkube::SimCluster;

use crate::bugs::BugToggles;
use crate::common::*;
use crate::crd_parts::*;
use crate::framework::{Operator, OperatorError, INSTANCE, NAMESPACE};

/// The Percona XtraDB cluster operator.
#[derive(Debug, Default)]
pub struct XtraDbOp;

impl XtraDbOp {
    fn has_failed_pod(cluster: &SimCluster) -> bool {
        cluster
            .api()
            .store()
            .list(&Kind::Pod, NAMESPACE)
            .iter()
            .any(|o| {
                o.meta.labels.get("app").map(String::as_str) == Some(INSTANCE)
                    && matches!(&o.data, ObjectData::Pod(p) if p.phase == PodPhase::Failed)
            })
    }
}

impl Operator for XtraDbOp {
    fn name(&self) -> &'static str {
        "XtraDBOp"
    }

    fn system(&self) -> &'static str {
        "xtradb"
    }

    fn kind(&self) -> &'static str {
        "PerconaXtraDBCluster"
    }

    fn schema(&self) -> Schema {
        Schema::object()
            .prop(
                "pxc",
                Schema::object()
                    .prop(
                        "size",
                        Schema::integer().min(1).max(9).semantic(Semantic::Replicas),
                    )
                    .prop(
                        "image",
                        image_schema().default_value(Value::from("pxc:8.0")),
                    )
                    .prop(
                        "labels",
                        Schema::map(Schema::string()).semantic(Semantic::Labels),
                    )
                    .prop("resources", resources_schema())
                    .prop(
                        "configuration",
                        Schema::map(Schema::string()).semantic(Semantic::SystemConfig),
                    ),
            )
            .prop(
                "proxysql",
                Schema::object()
                    .prop(
                        "enabled",
                        Schema::boolean()
                            .semantic(Semantic::Toggle)
                            .default_value(Value::Bool(false)),
                    )
                    .prop(
                        "size",
                        Schema::integer().min(1).max(5).semantic(Semantic::Replicas),
                    )
                    .prop("image", image_schema()),
            )
            .prop(
                "backup",
                backup_schema().prop(
                    "storages",
                    Schema::map(
                        Schema::object()
                            .prop("type", Schema::string_enum(["s3", "filesystem"]))
                            .prop("bucket", Schema::string()),
                    ),
                ),
            )
            // Obscurely named gcache size; whitebox learns StorageSize
            // semantics from the `pvc.size` sink.
            .prop("sstWindow", Schema::string().format("quantity"))
            .prop("persistence", persistence_schema())
            .prop("pod", pod_template_schema_without(&["resources"]))
    }

    fn ir(&self) -> IrModule {
        let mut b = IrBuilder::new("xtradb-op");
        b.passthrough("pxc.size", "sts.replicas");
        b.passthrough("pxc.image", "pod.image");
        b.passthrough("sstWindow", "pvc.size");
        b.guarded_passthrough(
            "proxysql.enabled",
            &[
                ("proxysql.size", "proxy.replicas"),
                ("proxysql.image", "proxy.image"),
            ],
        );
        b.guarded_passthrough(
            "backup.enabled",
            &[("backup.schedule", "config.backupSchedule")],
        );
        b.guarded_passthrough(
            "persistence.enabled",
            &[
                ("persistence.size", "pvc.size"),
                ("persistence.storageClass", "pvc.storageClass"),
            ],
        );
        b.ret();
        b.finish()
    }

    fn initial_cr(&self) -> Value {
        Value::object([
            (
                "pxc",
                Value::object([
                    ("size", Value::from(3)),
                    ("image", Value::from("pxc:8.0")),
                    (
                        "configuration",
                        Value::object([("sql_mode", Value::from("STRICT_TRANS_TABLES"))]),
                    ),
                ]),
            ),
            (
                "proxysql",
                Value::object([
                    ("enabled", Value::from(true)),
                    ("size", Value::from(2)),
                    ("image", Value::from("proxysql:2.5")),
                ]),
            ),
            (
                "backup",
                Value::object([
                    ("enabled", Value::from(false)),
                    ("schedule", Value::from("@daily")),
                    (
                        "storages",
                        Value::object([(
                            "primary",
                            Value::object([
                                ("type", Value::from("s3")),
                                ("bucket", Value::from("backups")),
                            ]),
                        )]),
                    ),
                ]),
            ),
            (
                "persistence",
                Value::object([
                    ("enabled", Value::from(true)),
                    ("size", Value::from("50Gi")),
                    ("storageClass", Value::from("standard")),
                ]),
            ),
        ])
    }

    fn images(&self) -> Vec<String> {
        vec![
            "pxc:8.0".to_string(),
            "pxc:8.1".to_string(),
            "proxysql:2.5".to_string(),
        ]
    }

    fn reconcile(
        &mut self,
        cr: &Value,
        _health: &Health,
        cluster: &mut SimCluster,
        bugs: &BugToggles,
    ) -> Result<(), OperatorError> {
        let sts_key = ObjKey::new(Kind::StatefulSet, NAMESPACE, INSTANCE);
        let deployed = cluster.api().get(&sts_key).is_some();
        // PXC-6: the stability gate.
        if bugs.injected("PXC-6") && deployed && Self::has_failed_pod(cluster) {
            return Ok(());
        }
        let size = i64_at(cr, "pxc.size").unwrap_or(3).clamp(1, 9) as i32;
        let image = str_at(cr, "pxc.image").unwrap_or_else(|| "pxc:8.0".to_string());

        // Backup schedule. PXC-5: invalid cron panics.
        let backup_on = bool_at(cr, "backup.enabled").unwrap_or(false);
        let mut schedule = String::new();
        if backup_on {
            let declared = str_at(cr, "backup.schedule").unwrap_or_else(|| "@daily".to_string());
            if !cron_is_valid(&declared) {
                if bugs.injected("PXC-5") {
                    return Err(OperatorError::Panic(format!(
                        "failed to parse cron expression {declared:?}"
                    )));
                }
                cluster.log(
                    LogLevel::Error,
                    self.name(),
                    format!("invalid backup schedule {declared:?}; backups suspended"),
                );
            } else {
                schedule = declared;
            }
        }

        // Configuration. PXC-3: removed backup storages linger.
        let cm_key = ObjKey::new(Kind::ConfigMap, NAMESPACE, &format!("{INSTANCE}-config"));
        let existing_cm: BTreeMap<String, String> = match cluster.api().get(&cm_key) {
            Some(obj) => match &obj.data {
                ObjectData::ConfigMap(c) => c.data.clone(),
                _ => BTreeMap::new(),
            },
            None => BTreeMap::new(),
        };
        let mut entries: BTreeMap<String, String> = map_at(cr, "pxc.configuration");
        if !schedule.is_empty() {
            entries.insert("backupSchedule".to_string(), schedule);
        }
        if backup_on {
            if let Some(dest) = str_at(cr, "backup.destination") {
                entries.insert("backupDestination".to_string(), dest);
            }
        }
        if let Some(Value::Object(storages)) = value_at(cr, "backup.storages") {
            for (name, st) in storages {
                let ty = st.get("type").and_then(Value::as_str).unwrap_or("s3");
                let bucket = st.get("bucket").and_then(Value::as_str).unwrap_or("");
                entries.insert(format!("backupStorage.{name}"), format!("{ty}:{bucket}"));
            }
        }
        if bugs.injected("PXC-3") {
            for (k, v) in &existing_cm {
                if k.starts_with("backupStorage.") && !entries.contains_key(k) {
                    entries.insert(k.clone(), v.clone());
                }
            }
        }
        let hash = config_hash(&entries);
        apply_config(cluster, NAMESPACE, INSTANCE, entries)?;

        // Database pods. PXC-1 swallows pxc-label deletions (tracked per
        // applied set); PXC-4 keeps creation-time resources.
        let mut template = pod_template_at(cr, "pod", INSTANCE, Some("pxc"), &image, &hash);
        let mut declared = map_at(cr, "pxc.labels");
        declared.insert("app".to_string(), INSTANCE.to_string());
        declared.insert("component".to_string(), "pxc".to_string());
        let effective = merge_labels_tracked(
            cluster,
            &sts_key,
            "applied-pxc-labels",
            declared,
            bugs.injected("PXC-1"),
        );
        template.labels.extend(effective.clone());
        if bugs.injected("PXC-4") && deployed {
            if let Some(obj) = cluster.api().get(&sts_key) {
                if let ObjectData::StatefulSet(s) = &obj.data {
                    template.containers[0].resources = s.template.containers[0].resources.clone();
                }
            }
        } else {
            template.containers[0].resources = resources_at(cr, "pxc.resources");
        }
        let claims = if bool_at(cr, "persistence.enabled").unwrap_or(true) {
            let storage_class =
                str_at(cr, "persistence.storageClass").unwrap_or_else(|| "standard".to_string());
            let mut claims = vec![ClaimTemplate {
                name: "data".to_string(),
                size: str_at(cr, "persistence.size")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| "50Gi".parse().expect("literal")),
                storage_class: storage_class.clone(),
            }];
            // The (obscurely named) galera cache window gets its own
            // volume when declared.
            if let Some(gcache) = str_at(cr, "sstWindow").and_then(|s| s.parse().ok()) {
                claims.push(ClaimTemplate {
                    name: "gcache".to_string(),
                    size: gcache,
                    storage_class,
                });
            }
            claims
        } else {
            Vec::new()
        };
        apply_statefulset(cluster, NAMESPACE, INSTANCE, size, template, claims)?;
        stamp_label_record(cluster, &sts_key, "applied-pxc-labels", &effective);
        if let Some(reclaim) = str_at(cr, "persistence.reclaimPolicy") {
            stamp_sts_annotation(cluster, NAMESPACE, INSTANCE, "reclaimPolicy", &reclaim);
        }

        // ProxySQL. PXC-2: disabling leaves the deployment in place.
        let proxy_name = format!("{INSTANCE}-proxysql");
        if bool_at(cr, "proxysql.enabled").unwrap_or(false) {
            let proxy_size = i64_at(cr, "proxysql.size").unwrap_or(2).clamp(1, 5) as i32;
            let dep = Deployment {
                replicas: proxy_size,
                selector: LabelSelector::match_labels([
                    ("app", INSTANCE),
                    ("component", "proxysql"),
                ]),
                template: PodTemplate {
                    labels: [
                        ("app".to_string(), INSTANCE.to_string()),
                        ("component".to_string(), "proxysql".to_string()),
                    ]
                    .into_iter()
                    .collect(),
                    containers: vec![Container {
                        name: "proxysql".to_string(),
                        image: str_at(cr, "proxysql.image")
                            .unwrap_or_else(|| "proxysql:2.5".to_string()),
                        ..Container::default()
                    }],
                    ..PodTemplate::default()
                },
                ..Deployment::default()
            };
            let time = cluster.now();
            cluster
                .api_mut()
                .apply_object(
                    ObjectMeta::named(NAMESPACE, &proxy_name),
                    ObjectData::Deployment(dep),
                    time,
                )
                .map_err(|e| OperatorError::Transient(e.to_string()))?;
        } else if !bugs.injected("PXC-2") {
            delete_if_exists(cluster, Kind::Deployment, NAMESPACE, &proxy_name);
        }

        let ready = ready_pods(cluster, NAMESPACE, INSTANCE);
        let cr_key = ObjKey::new(Kind::Custom(self.kind().to_string()), NAMESPACE, INSTANCE);
        write_cr_status(cluster, &cr_key, ready, size);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{Instance, CONVERGE_MAX, CONVERGE_RESET};
    use simkube::PlatformBugs;

    fn deploy(bugs: BugToggles) -> Instance {
        Instance::deploy(Box::new(XtraDbOp), bugs, PlatformBugs::none()).unwrap()
    }

    #[test]
    fn galera_with_proxysql_deploys() {
        let instance = deploy(BugToggles::all_injected());
        assert!(instance.last_health.is_healthy());
        // 3 pxc + 2 proxysql pods.
        assert_eq!(instance.cluster.pod_summaries(NAMESPACE).len(), 5);
    }

    #[test]
    fn pxc2_proxysql_lingers_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(&"proxysql.enabled".parse().unwrap(), Value::from(false));
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(instance
            .cluster
            .api()
            .get(&ObjKey::new(
                Kind::Deployment,
                NAMESPACE,
                "test-cluster-proxysql"
            ))
            .is_some());
        let mut fixed = BugToggles::all_injected();
        fixed.fix("PXC-2");
        let mut instance = deploy(fixed);
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(instance
            .cluster
            .api()
            .get(&ObjKey::new(
                Kind::Deployment,
                NAMESPACE,
                "test-cluster-proxysql"
            ))
            .is_none());
    }

    #[test]
    fn pxc3_storage_removal_ignored_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(&"backup.storages".parse().unwrap(), Value::empty_object());
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let cm = instance
            .cluster
            .api()
            .get(&ObjKey::new(
                Kind::ConfigMap,
                NAMESPACE,
                "test-cluster-config",
            ))
            .unwrap();
        if let ObjectData::ConfigMap(c) = &cm.data {
            assert!(c.data.contains_key("backupStorage.primary"), "lingers");
        }
        let mut fixed = BugToggles::all_injected();
        fixed.fix("PXC-3");
        let mut instance = deploy(fixed);
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let cm = instance
            .cluster
            .api()
            .get(&ObjKey::new(
                Kind::ConfigMap,
                NAMESPACE,
                "test-cluster-config",
            ))
            .unwrap();
        if let ObjectData::ConfigMap(c) = &cm.data {
            assert!(!c.data.contains_key("backupStorage.primary"));
        }
    }

    #[test]
    fn pxc5_invalid_cron_panics_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(&"backup.enabled".parse().unwrap(), Value::from(true));
        spec.set_path(&"backup.schedule".parse().unwrap(), Value::from("whenever"));
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(instance.operator_crashed());
        let mut fixed = BugToggles::all_injected();
        fixed.fix("PXC-5");
        let mut instance = deploy(fixed);
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(!instance.operator_crashed());
    }

    #[test]
    fn pxc6_gate_blocks_sql_mode_rollback() {
        let mut instance = deploy(BugToggles::all_injected());
        let good = instance.cr_spec();
        let mut bad = good.clone();
        bad.set_path(
            &"pxc.configuration".parse().unwrap(),
            Value::object([("sql_mode", Value::from("NOT_A_MODE"))]),
        );
        instance.submit(bad).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(!instance.last_health.is_healthy());
        instance.submit(good).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(!instance.last_health.is_healthy(), "gate blocks rollback");
    }
    #[test]
    fn pxc1_label_removal_ignored_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(
            &"pxc.labels".parse().unwrap(),
            Value::object([("tier", Value::from("gold"))]),
        );
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        spec.set_path(&"pxc.labels".parse().unwrap(), Value::empty_object());
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let sts = instance
            .cluster
            .api()
            .get(&ObjKey::new(Kind::StatefulSet, NAMESPACE, INSTANCE))
            .unwrap();
        if let ObjectData::StatefulSet(s) = &sts.data {
            assert_eq!(
                s.template.labels.get("tier").map(String::as_str),
                Some("gold"),
                "removal swallowed"
            );
        }
    }

    #[test]
    fn pxc4_resources_frozen_after_creation_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(
            &"pxc.resources.limits.memory".parse().unwrap(),
            Value::from("4Gi"),
        );
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let sts = instance
            .cluster
            .api()
            .get(&ObjKey::new(Kind::StatefulSet, NAMESPACE, INSTANCE))
            .unwrap();
        if let ObjectData::StatefulSet(s) = &sts.data {
            assert!(s.template.containers[0].resources.limits.is_empty());
        }
        let mut fixed = BugToggles::all_injected();
        fixed.fix("PXC-4");
        let mut instance = deploy(fixed);
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let sts = instance
            .cluster
            .api()
            .get(&ObjKey::new(Kind::StatefulSet, NAMESPACE, INSTANCE))
            .unwrap();
        if let ObjectData::StatefulSet(s) = &sts.data {
            assert_eq!(
                s.template.containers[0].resources.limits["memory"],
                "4Gi".parse().unwrap()
            );
        }
    }
}
