//! SAH/RedisOp: the Spotahome-style Redis failover operator (Table 4).
//!
//! Injected bugs: RED-SAH-1 (sentinel replica changes ignored after the
//! initial deployment), RED-SAH-2 (disabling the exporter leaves the
//! sidecar), RED-SAH-3 (scaling Redis to zero is accepted and takes the
//! system down), RED-SAH-4 (no operation is performed while the master is
//! down — including the rollback). The `storage.keepAfterDelete` property
//! depends on the non-toggle boolean `storage.persistent`, one of the four
//! blackbox false-positive sites.

use std::collections::BTreeMap;

use crdspec::{Schema, Semantic, Value};
use managed::Health;
use opdsl::{IrBuilder, IrModule, Operand};
use simkube::cluster::LogLevel;
use simkube::meta::{LabelSelector, ObjectMeta};
use simkube::objects::{
    ClaimTemplate, Container, Deployment, Kind, ObjectData, PodPhase, PodTemplate,
};
use simkube::store::ObjKey;
use simkube::SimCluster;

use crate::bugs::BugToggles;
use crate::common::*;
use crate::crd_parts::*;
use crate::framework::{Operator, OperatorError, INSTANCE, NAMESPACE};

/// The Spotahome-style Redis failover operator.
#[derive(Debug, Default)]
pub struct RedisSahOp;

impl RedisSahOp {
    fn master_failed(cluster: &SimCluster) -> bool {
        let key = ObjKey::new(Kind::Pod, NAMESPACE, &format!("{INSTANCE}-0"));
        match cluster.api().get(&key) {
            Some(obj) => matches!(&obj.data, ObjectData::Pod(p) if p.phase == PodPhase::Failed),
            // A missing master (scaled to zero) also counts as down.
            None => cluster
                .api()
                .get(&ObjKey::new(Kind::StatefulSet, NAMESPACE, INSTANCE))
                .is_some(),
        }
    }
}

impl Operator for RedisSahOp {
    fn name(&self) -> &'static str {
        "SAH/RedisOp"
    }

    fn system(&self) -> &'static str {
        "redis"
    }

    fn kind(&self) -> &'static str {
        "RedisFailover"
    }

    fn schema(&self) -> Schema {
        Schema::object()
            .prop(
                "redis",
                Schema::object()
                    .prop(
                        "replicas",
                        Schema::integer().min(0).max(9).semantic(Semantic::Replicas),
                    )
                    .prop(
                        "image",
                        image_schema().default_value(Value::from("redis:7.0")),
                    )
                    .prop("resources", resources_schema())
                    .prop(
                        "config",
                        Schema::map(Schema::string()).semantic(Semantic::SystemConfig),
                    ),
            )
            .prop(
                "sentinel",
                Schema::object()
                    .prop(
                        "replicas",
                        Schema::integer().min(1).max(7).semantic(Semantic::Replicas),
                    )
                    .prop("resources", resources_schema()),
            )
            .prop(
                "exporter",
                Schema::object()
                    .prop(
                        "enabled",
                        Schema::boolean()
                            .semantic(Semantic::Toggle)
                            .default_value(Value::Bool(false)),
                    )
                    .prop("image", image_schema()),
            )
            .prop(
                "storage",
                Schema::object()
                    // A non-toggle boolean guard: the blackbox FP site.
                    .prop("persistent", Schema::boolean())
                    .prop("keepAfterDelete", Schema::boolean())
                    .prop(
                        "size",
                        Schema::string()
                            .format("quantity")
                            .semantic(Semantic::StorageSize),
                    ),
            )
            .prop("pod", pod_template_schema_without(&["resources"]))
    }

    fn ir(&self) -> IrModule {
        let mut b = IrBuilder::new("redis-sah-op");
        b.passthrough("redis.replicas", "sts.replicas");
        b.passthrough("redis.image", "pod.image");
        b.passthrough("sentinel.replicas", "sentinel.replicas");
        b.guarded_passthrough("exporter.enabled", &[("exporter.image", "exporter.image")]);
        // keepAfterDelete is consumed only when storage.persistent is true
        // (a truthy predicate on a non-"enabled" boolean).
        let persistent = b.load("storage.persistent");
        let then_b = b.new_block();
        let join = b.new_block();
        b.branch(Operand::Var(persistent), then_b, join);
        b.switch_to(then_b);
        b.passthrough("storage.keepAfterDelete", "pvc.keepAfterDelete");
        b.jump(join);
        b.switch_to(join);
        b.passthrough("storage.size", "storage.size");
        b.ret();
        b.finish()
    }

    fn initial_cr(&self) -> Value {
        Value::object([
            (
                "redis",
                Value::object([
                    ("replicas", Value::from(3)),
                    ("image", Value::from("redis:7.0")),
                    (
                        "config",
                        Value::object([("maxmemory", Value::from("128Mi"))]),
                    ),
                ]),
            ),
            ("sentinel", Value::object([("replicas", Value::from(3))])),
            ("exporter", Value::object([("enabled", Value::from(false))])),
            (
                "storage",
                Value::object([
                    ("persistent", Value::from(false)),
                    ("keepAfterDelete", Value::from(false)),
                    ("size", Value::from("4Gi")),
                ]),
            ),
        ])
    }

    fn images(&self) -> Vec<String> {
        vec![
            "redis:7.0".to_string(),
            "redis:7.2".to_string(),
            "redis-exporter:1.55".to_string(),
        ]
    }

    fn reconcile(
        &mut self,
        cr: &Value,
        _health: &Health,
        cluster: &mut SimCluster,
        bugs: &BugToggles,
    ) -> Result<(), OperatorError> {
        let deployed = cluster
            .api()
            .get(&ObjKey::new(Kind::StatefulSet, NAMESPACE, INSTANCE))
            .is_some();
        // RED-SAH-4: no operation while the master is down.
        if bugs.injected("RED-SAH-4") && deployed && Self::master_failed(cluster) {
            return Ok(());
        }
        let mut replicas = i64_at(cr, "redis.replicas").unwrap_or(3).clamp(0, 9) as i32;
        // RED-SAH-3 (fixed path): reject scaling the data tier to zero.
        if replicas == 0 && !bugs.injected("RED-SAH-3") {
            cluster.log(
                LogLevel::Error,
                self.name(),
                "rejecting redis.replicas=0: at least one data node required",
            );
            replicas = 1;
        }
        let image = str_at(cr, "redis.image").unwrap_or_else(|| "redis:7.0".to_string());

        // Configuration.
        let mut entries: BTreeMap<String, String> = map_at(cr, "redis.config");
        entries.insert(
            "followers".to_string(),
            replicas.saturating_sub(1).to_string(),
        );
        let hash = config_hash(&entries);
        apply_config(cluster, NAMESPACE, INSTANCE, entries)?;

        // Redis stateful set with optional exporter sidecar.
        let mut template = pod_template_at(cr, "pod", INSTANCE, None, &image, &hash);
        template.containers[0].resources = resources_at(cr, "redis.resources");
        let exporter_on = bool_at(cr, "exporter.enabled").unwrap_or(false);
        let had_exporter =
            match cluster
                .api()
                .get(&ObjKey::new(Kind::StatefulSet, NAMESPACE, INSTANCE))
            {
                Some(obj) => match &obj.data {
                    ObjectData::StatefulSet(s) => {
                        s.template.containers.iter().any(|c| c.name == "exporter")
                    }
                    _ => false,
                },
                None => false,
            };
        // RED-SAH-2: once added, the exporter sidecar is never removed.
        if exporter_on || (bugs.injected("RED-SAH-2") && had_exporter) {
            template.containers.push(Container {
                name: "exporter".to_string(),
                image: str_at(cr, "exporter.image")
                    .unwrap_or_else(|| "redis-exporter:1.55".to_string()),
                ..Container::default()
            });
        }
        let persistent = bool_at(cr, "storage.persistent").unwrap_or(false);
        let claims = if persistent {
            vec![ClaimTemplate {
                name: "data".to_string(),
                size: str_at(cr, "storage.size")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| "4Gi".parse().expect("literal")),
                storage_class: "standard".to_string(),
            }]
        } else {
            // Ephemeral mode sizes the in-memory scratch volume instead.
            if let Some(size) = str_at(cr, "storage.size") {
                template.containers[0]
                    .env
                    .insert("EMPTYDIR_SIZE".to_string(), size);
            }
            Vec::new()
        };
        {
            // keepAfterDelete is only honoured in persistent mode; the
            // annotation is removed otherwise.
            let keep = bool_at(cr, "storage.keepAfterDelete").unwrap_or(false);
            let sts_key = ObjKey::new(Kind::StatefulSet, NAMESPACE, INSTANCE);
            if cluster.api().get(&sts_key).is_some() {
                let time = cluster.now();
                let _ = cluster
                    .api_mut()
                    .store_mut()
                    .update_with(&sts_key, time, |o| {
                        if persistent {
                            o.meta
                                .annotations
                                .insert("keepAfterDelete".to_string(), keep.to_string());
                        } else {
                            o.meta.annotations.remove("keepAfterDelete");
                        }
                    });
            }
        }
        apply_statefulset(cluster, NAMESPACE, INSTANCE, replicas, template, claims)?;

        // Sentinel deployment. RED-SAH-1: replica changes after the initial
        // deployment are ignored.
        let sentinel_name = format!("{INSTANCE}-sentinel");
        let sentinel_key = ObjKey::new(Kind::Deployment, NAMESPACE, &sentinel_name);
        let declared_sentinels = i64_at(cr, "sentinel.replicas").unwrap_or(3).clamp(1, 7) as i32;
        let sentinels = match cluster.api().get(&sentinel_key) {
            Some(obj) if bugs.injected("RED-SAH-1") => match &obj.data {
                ObjectData::Deployment(d) => d.replicas,
                _ => declared_sentinels,
            },
            _ => declared_sentinels,
        };
        let sentinel_app = format!("{INSTANCE}-sentinel");
        let dep = Deployment {
            replicas: sentinels,
            selector: LabelSelector::match_labels([("app", sentinel_app.as_str())]),
            template: PodTemplate {
                labels: [
                    ("app".to_string(), sentinel_app.clone()),
                    ("component".to_string(), "sentinel".to_string()),
                ]
                .into_iter()
                .collect(),
                containers: vec![Container {
                    name: "sentinel".to_string(),
                    image: image.clone(),
                    resources: resources_at(cr, "sentinel.resources"),
                    ..Container::default()
                }],
                ..PodTemplate::default()
            },
            ..Deployment::default()
        };
        let time = cluster.now();
        cluster
            .api_mut()
            .apply_object(
                ObjectMeta::named(NAMESPACE, &sentinel_name),
                ObjectData::Deployment(dep),
                time,
            )
            .map_err(|e| OperatorError::Transient(e.to_string()))?;

        let ready = ready_pods(cluster, NAMESPACE, INSTANCE);
        let cr_key = ObjKey::new(Kind::Custom(self.kind().to_string()), NAMESPACE, INSTANCE);
        write_cr_status(cluster, &cr_key, ready, replicas);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{Instance, CONVERGE_MAX, CONVERGE_RESET};
    use simkube::PlatformBugs;

    fn deploy(bugs: BugToggles) -> Instance {
        Instance::deploy(Box::new(RedisSahOp), bugs, PlatformBugs::none()).unwrap()
    }

    #[test]
    fn deploys_redis_and_sentinels() {
        let instance = deploy(BugToggles::all_injected());
        assert_eq!(instance.cluster.pod_summaries(NAMESPACE).len(), 6);
        assert!(instance.last_health.is_healthy());
    }

    #[test]
    fn sah1_sentinel_scaling_ignored_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(&"sentinel.replicas".parse().unwrap(), Value::from(5));
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let dep = instance
            .cluster
            .api()
            .get(&ObjKey::new(
                Kind::Deployment,
                NAMESPACE,
                "test-cluster-sentinel",
            ))
            .unwrap();
        if let ObjectData::Deployment(d) = &dep.data {
            assert_eq!(d.replicas, 3, "injected bug keeps the old count");
        }
        let mut fixed = BugToggles::all_injected();
        fixed.fix("RED-SAH-1");
        let mut instance = deploy(fixed);
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let dep = instance
            .cluster
            .api()
            .get(&ObjKey::new(
                Kind::Deployment,
                NAMESPACE,
                "test-cluster-sentinel",
            ))
            .unwrap();
        if let ObjectData::Deployment(d) = &dep.data {
            assert_eq!(d.replicas, 5);
        }
    }

    #[test]
    fn sah2_exporter_not_removed_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(&"exporter.enabled".parse().unwrap(), Value::from(true));
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        spec.set_path(&"exporter.enabled".parse().unwrap(), Value::from(false));
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let sts = instance
            .cluster
            .api()
            .get(&ObjKey::new(Kind::StatefulSet, NAMESPACE, INSTANCE))
            .unwrap();
        if let ObjectData::StatefulSet(s) = &sts.data {
            assert!(
                s.template.containers.iter().any(|c| c.name == "exporter"),
                "sidecar should linger under the injected bug"
            );
        }
    }

    #[test]
    fn sah3_zero_replicas_takes_system_down_only_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(&"redis.replicas".parse().unwrap(), Value::from(0));
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(!instance.last_health.is_healthy());
        let mut fixed = BugToggles::all_injected();
        fixed.fix("RED-SAH-3");
        let mut instance = deploy(fixed);
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(instance.last_health.is_healthy());
    }

    #[test]
    fn whitebox_ir_reveals_persistent_dependency() {
        let deps = opdsl::control_dependencies(&RedisSahOp.ir());
        assert!(deps.iter().any(|d| {
            d.controller.to_string() == "storage.persistent"
                && d.dependent.to_string() == "storage.keepAfterDelete"
        }));
    }
    #[test]
    fn sah4_no_operation_while_master_down_when_injected() {
        // Take the master down via a bad config, then try a follower
        // scale: the gated operator ignores it.
        let mut instance = deploy(BugToggles::all_injected());
        let good = instance.cr_spec();
        let mut bad = good.clone();
        bad.set_path(
            &"redis.config".parse().unwrap(),
            Value::object([("maxmemory", Value::from("junk"))]),
        );
        instance.submit(bad).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(!instance.last_health.is_healthy());
        let mut scaled = good.clone();
        scaled.set_path(&"redis.replicas".parse().unwrap(), Value::from(5));
        instance.submit(scaled).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let redis_pods = instance
            .cluster
            .pod_summaries(NAMESPACE)
            .iter()
            .filter(|(n, ..)| !n.contains("sentinel"))
            .count();
        assert!(
            redis_pods < 5,
            "gated operator must not apply the scale ({redis_pods} pods)"
        );
        assert!(
            !instance.last_health.is_healthy(),
            "gated operator cannot recover either"
        );
    }
}
