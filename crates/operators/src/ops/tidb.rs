//! TiDBOp: the official TiDB operator (Table 4).
//!
//! Injected bugs: TIDB-1 (TiKV resource updates dropped), TIDB-2 (PD
//! placement configuration not propagated), TIDB-3 (binlog enabled without
//! a pump cluster restarts TiDB into a crash loop — the paper's §6.1.1
//! example), TIDB-4 (the unhealthy cluster cannot be recovered even with a
//! manual revert). The `monitor.retentionDays` property is guarded by the
//! non-toggle boolean `monitor.deploy`, one of the blackbox FP sites.

use std::collections::BTreeMap;

use crdspec::{Schema, Semantic, Value};
use managed::Health;
use opdsl::{IrBuilder, IrModule, Operand};
use simkube::cluster::LogLevel;
use simkube::objects::{ClaimTemplate, Kind};
use simkube::store::ObjKey;
use simkube::SimCluster;

use crate::bugs::BugToggles;
use crate::common::*;
use crate::crd_parts::*;
use crate::framework::{Operator, OperatorError, INSTANCE, NAMESPACE};

/// The official TiDB operator.
#[derive(Debug, Default)]
pub struct TiDbOp;

fn component_schema(max: i64) -> Schema {
    Schema::object()
        .prop(
            "replicas",
            Schema::integer()
                .min(0)
                .max(max)
                .semantic(Semantic::Replicas),
        )
        .prop("resources", resources_schema())
}

impl TiDbOp {
    #[allow(clippy::too_many_arguments)]
    fn apply_component(
        &self,
        cluster: &mut SimCluster,
        cr: &Value,
        component: &str,
        image: &str,
        hash: &str,
        replicas: i32,
        drop_resources: bool,
        claims: Vec<ClaimTemplate>,
    ) -> Result<(), OperatorError> {
        let name = format!("{INSTANCE}-{component}");
        let mut template = pod_template_at(cr, "pod", INSTANCE, Some(component), image, hash);
        if drop_resources {
            template.containers[0].resources = Default::default();
        } else {
            template.containers[0].resources = resources_at(cr, &format!("{component}.resources"));
        }
        apply_statefulset(cluster, NAMESPACE, &name, replicas, template, claims)
    }
}

impl Operator for TiDbOp {
    fn name(&self) -> &'static str {
        "TiDBOp"
    }

    fn system(&self) -> &'static str {
        "tidb"
    }

    fn kind(&self) -> &'static str {
        "TidbCluster"
    }

    fn schema(&self) -> Schema {
        Schema::object()
            .prop("version", Schema::string().semantic(Semantic::Version))
            .prop(
                "pd",
                component_schema(7).prop("maxReplicas", Schema::integer().min(1).max(9)),
            )
            .prop("tikv", component_schema(9))
            .prop("tidb", component_schema(9))
            .prop(
                "pump",
                Schema::object().prop(
                    "replicas",
                    Schema::integer().min(0).max(5).semantic(Semantic::Replicas),
                ),
            )
            .prop(
                "binlog",
                Schema::object().prop(
                    "enabled",
                    Schema::boolean()
                        .semantic(Semantic::Toggle)
                        .default_value(Value::Bool(false)),
                ),
            )
            .prop(
                "monitor",
                Schema::object()
                    // A non-toggle boolean guard: blackbox FP site.
                    .prop("deploy", Schema::boolean())
                    .prop("retentionDays", Schema::integer().min(1).max(365))
                    .prop("scrapeIntervalSeconds", Schema::integer().min(5).max(3600)),
            )
            .prop(
                "config",
                Schema::map(Schema::string()).semantic(Semantic::SystemConfig),
            )
            .prop("persistence", persistence_schema())
            .prop("pod", pod_template_schema_without(&["resources"]))
    }

    fn ir(&self) -> IrModule {
        let mut b = IrBuilder::new("tidb-op");
        b.passthrough("pd.replicas", "pd.replicas");
        b.passthrough("tikv.replicas", "tikv.replicas");
        b.passthrough("tidb.replicas", "tidb.replicas");
        b.passthrough("pump.replicas", "pump.replicas");
        b.passthrough("version", "pod.image");
        b.passthrough("pd.maxReplicas", "config.maxReplicas");
        b.guarded_passthrough("binlog.enabled", &[("pump.replicas", "config.pumpCount")]);
        // monitor.retentionDays only matters when monitor.deploy is true.
        let deploy = b.load("monitor.deploy");
        let then_b = b.new_block();
        let join = b.new_block();
        b.branch(Operand::Var(deploy), then_b, join);
        b.switch_to(then_b);
        b.passthrough("monitor.retentionDays", "monitor.retention");
        b.passthrough("monitor.scrapeIntervalSeconds", "monitor.scrapeInterval");
        b.jump(join);
        b.switch_to(join);
        b.ret();
        b.finish()
    }

    fn initial_cr(&self) -> Value {
        Value::object([
            ("version", Value::from("v7.1.0")),
            (
                "pd",
                Value::object([
                    ("replicas", Value::from(3)),
                    ("maxReplicas", Value::from(3)),
                ]),
            ),
            ("tikv", Value::object([("replicas", Value::from(3))])),
            ("tidb", Value::object([("replicas", Value::from(2))])),
            ("pump", Value::object([("replicas", Value::from(0))])),
            ("binlog", Value::object([("enabled", Value::from(false))])),
            (
                "monitor",
                Value::object([
                    ("deploy", Value::from(false)),
                    ("retentionDays", Value::from(7)),
                    ("scrapeIntervalSeconds", Value::from(15)),
                ]),
            ),
            ("config", Value::object([("level", Value::from("info"))])),
            (
                "persistence",
                Value::object([
                    ("enabled", Value::from(true)),
                    ("size", Value::from("100Gi")),
                    ("storageClass", Value::from("fast")),
                ]),
            ),
        ])
    }

    fn images(&self) -> Vec<String> {
        vec!["tidb:v7.1.0".to_string(), "tidb:v7.5.0".to_string()]
    }

    fn reconcile(
        &mut self,
        cr: &Value,
        health: &Health,
        cluster: &mut SimCluster,
        bugs: &BugToggles,
    ) -> Result<(), OperatorError> {
        let deployed = cluster
            .api()
            .get(&ObjKey::new(
                Kind::StatefulSet,
                NAMESPACE,
                &format!("{INSTANCE}-pd"),
            ))
            .is_some();
        // TIDB-4: while the system is down, the operator refuses every
        // operation — including the revert of the offending declaration.
        if bugs.injected("TIDB-4") && deployed && matches!(health, Health::Down(_)) {
            return Ok(());
        }

        let version = str_at(cr, "version").unwrap_or_else(|| "v7.1.0".to_string());
        let image = format!("tidb:{version}");
        let pd = i64_at(cr, "pd.replicas").unwrap_or(3).clamp(0, 7) as i32;
        let tikv = i64_at(cr, "tikv.replicas").unwrap_or(3).clamp(0, 9) as i32;
        let tidb = i64_at(cr, "tidb.replicas").unwrap_or(2).clamp(0, 9) as i32;
        let pump = i64_at(cr, "pump.replicas").unwrap_or(0).clamp(0, 5) as i32;

        // Binlog. TIDB-3 (fixed path): refuse to enable binlog unless a
        // pump cluster is configured.
        let mut binlog = bool_at(cr, "binlog.enabled").unwrap_or(false);
        if binlog && pump == 0 && !bugs.injected("TIDB-3") {
            cluster.log(
                LogLevel::Error,
                self.name(),
                "refusing to enable binlog without a pump cluster",
            );
            binlog = false;
        }

        // Configuration. TIDB-2: pd.maxReplicas is never propagated.
        let mut entries: BTreeMap<String, String> = map_at(cr, "config");
        entries.insert("binlog.enabled".to_string(), binlog.to_string());
        if !bugs.injected("TIDB-2") {
            entries.insert(
                "maxReplicas".to_string(),
                i64_at(cr, "pd.maxReplicas").unwrap_or(3).to_string(),
            );
        }
        if bool_at(cr, "monitor.deploy").unwrap_or(false) {
            entries.insert(
                "monitorRetention".to_string(),
                i64_at(cr, "monitor.retentionDays").unwrap_or(7).to_string(),
            );
            entries.insert(
                "monitorScrape".to_string(),
                i64_at(cr, "monitor.scrapeIntervalSeconds")
                    .unwrap_or(15)
                    .to_string(),
            );
        }
        let hash = config_hash(&entries);
        apply_config(cluster, NAMESPACE, INSTANCE, entries)?;

        // Components. The declared volume size applies to the data-bearing
        // stores; PD uses a fixed small volume.
        let persistence_on = bool_at(cr, "persistence.enabled").unwrap_or(true);
        let declared_size = str_at(cr, "persistence.size").unwrap_or_else(|| "100Gi".to_string());
        let claim = |sz: &str| -> Vec<ClaimTemplate> {
            if !persistence_on {
                return Vec::new();
            }
            vec![ClaimTemplate {
                name: "data".to_string(),
                size: sz
                    .parse()
                    .unwrap_or_else(|_| "100Gi".parse().expect("literal")),
                storage_class: str_at(cr, "persistence.storageClass")
                    .unwrap_or_else(|| "fast".to_string()),
            }]
        };
        self.apply_component(cluster, cr, "pd", &image, &hash, pd, false, claim("10Gi"))?;
        // TIDB-1: tikv resources are dropped.
        self.apply_component(
            cluster,
            cr,
            "tikv",
            &image,
            &hash,
            tikv,
            bugs.injected("TIDB-1"),
            claim(&declared_size),
        )?;
        self.apply_component(cluster, cr, "tidb", &image, &hash, tidb, false, Vec::new())?;
        if pump > 0 {
            self.apply_component(cluster, cr, "pump", &image, &hash, pump, false, Vec::new())?;
        } else {
            delete_if_exists(
                cluster,
                Kind::StatefulSet,
                NAMESPACE,
                &format!("{INSTANCE}-pump"),
            );
            // SEED-COMPOSE-1 (seeded, default off): with no pump cluster
            // the operator "cleans up" binlog bookkeeping by enumerating
            // every ConfigMap on the cluster and deleting any `*-config`
            // outside its own namespace. Alone on a cluster this is dead
            // code; composed with another operator it garbage-collects the
            // neighbour's live configuration.
            if bugs.seeded(crate::bugs::SEEDED_CROSS_OPERATOR_GC) {
                let victims: Vec<ObjKey> = cluster
                    .api()
                    .store()
                    .iter()
                    .filter(|(k, _)| {
                        matches!(k.kind, Kind::ConfigMap)
                            && k.namespace != NAMESPACE
                            && !k.namespace.is_empty()
                            && k.name.ends_with("-config")
                    })
                    .map(|(k, _)| k.clone())
                    .collect();
                let time = cluster.now();
                for key in victims {
                    let _ = cluster.api_mut().delete_object(&key, time);
                }
            }
        }

        if let Some(reclaim) = str_at(cr, "persistence.reclaimPolicy") {
            for component in ["pd", "tikv", "tidb"] {
                stamp_sts_annotation(
                    cluster,
                    NAMESPACE,
                    &format!("{INSTANCE}-{component}"),
                    "reclaimPolicy",
                    &reclaim,
                );
            }
        }

        let ready = ready_pods(cluster, NAMESPACE, INSTANCE);
        let total = pd + tikv + tidb + pump;
        let cr_key = ObjKey::new(Kind::Custom(self.kind().to_string()), NAMESPACE, INSTANCE);
        write_cr_status(cluster, &cr_key, ready, total);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{Instance, CONVERGE_MAX, CONVERGE_RESET};
    use simkube::objects::ObjectData;
    use simkube::PlatformBugs;

    fn deploy(bugs: BugToggles) -> Instance {
        Instance::deploy(Box::new(TiDbOp), bugs, PlatformBugs::none()).unwrap()
    }

    #[test]
    fn full_stack_deploys_healthy() {
        let instance = deploy(BugToggles::all_injected());
        assert!(instance.last_health.is_healthy());
        assert_eq!(instance.cluster.pod_summaries(NAMESPACE).len(), 8);
    }

    #[test]
    fn tidb3_binlog_without_pump_crash_loops_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(&"binlog.enabled".parse().unwrap(), Value::from(true));
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        match &instance.last_health {
            Health::Down(reason) => assert!(reason.contains("pump")),
            other => panic!("expected down, got {other:?}"),
        }
        // Fixed operator refuses the transition and stays healthy.
        let mut fixed = BugToggles::all_injected();
        fixed.fix("TIDB-3");
        let mut instance = deploy(fixed);
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(instance.last_health.is_healthy());
    }

    #[test]
    fn tidb4_revert_cannot_recover_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let good = instance.cr_spec();
        let mut bad = good.clone();
        bad.set_path(&"binlog.enabled".parse().unwrap(), Value::from(true));
        instance.submit(bad.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(!instance.last_health.is_healthy());
        instance.submit(good.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(!instance.last_health.is_healthy(), "revert is blocked");
        // With TIDB-4 fixed the revert recovers the cluster.
        let mut fixed = BugToggles::all_injected();
        fixed.fix("TIDB-4");
        let mut instance = deploy(fixed);
        instance.submit(bad).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(!instance.last_health.is_healthy());
        instance.submit(good).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(instance.last_health.is_healthy());
    }

    #[test]
    fn tidb2_max_replicas_not_propagated_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(&"pd.maxReplicas".parse().unwrap(), Value::from(5));
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let cm = instance
            .cluster
            .api()
            .get(&ObjKey::new(
                Kind::ConfigMap,
                NAMESPACE,
                "test-cluster-config",
            ))
            .unwrap();
        if let ObjectData::ConfigMap(c) = &cm.data {
            assert!(!c.data.contains_key("maxReplicas"));
        }
        let mut fixed = BugToggles::all_injected();
        fixed.fix("TIDB-2");
        let mut instance = deploy(fixed);
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let cm = instance
            .cluster
            .api()
            .get(&ObjKey::new(
                Kind::ConfigMap,
                NAMESPACE,
                "test-cluster-config",
            ))
            .unwrap();
        if let ObjectData::ConfigMap(c) = &cm.data {
            assert_eq!(c.data.get("maxReplicas").map(String::as_str), Some("5"));
        }
    }

    #[test]
    fn binlog_with_pump_works() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(&"pump.replicas".parse().unwrap(), Value::from(1));
        spec.set_path(&"binlog.enabled".parse().unwrap(), Value::from(true));
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        assert!(instance.last_health.is_healthy());
    }

    #[test]
    fn whitebox_ir_reveals_monitor_dependency() {
        let deps = opdsl::control_dependencies(&TiDbOp.ir());
        assert!(deps.iter().any(|d| {
            d.controller.to_string() == "monitor.deploy"
                && d.dependent.to_string() == "monitor.retentionDays"
        }));
    }
    #[test]
    fn tidb1_tikv_resources_dropped_when_injected() {
        let mut instance = deploy(BugToggles::all_injected());
        let mut spec = instance.cr_spec();
        spec.set_path(
            &"tikv.resources.requests.cpu".parse().unwrap(),
            Value::from("2"),
        );
        instance.submit(spec.clone()).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let sts = instance
            .cluster
            .api()
            .get(&ObjKey::new(
                Kind::StatefulSet,
                NAMESPACE,
                "test-cluster-tikv",
            ))
            .unwrap();
        if let ObjectData::StatefulSet(s) = &sts.data {
            assert!(s.template.containers[0].resources.requests.is_empty());
        }
        let mut fixed = BugToggles::all_injected();
        fixed.fix("TIDB-1");
        let mut instance = deploy(fixed);
        instance.submit(spec).unwrap();
        instance.converge(CONVERGE_RESET, CONVERGE_MAX);
        let sts = instance
            .cluster
            .api()
            .get(&ObjKey::new(
                Kind::StatefulSet,
                NAMESPACE,
                "test-cluster-tikv",
            ))
            .unwrap();
        if let ObjectData::StatefulSet(s) = &sts.data {
            assert_eq!(
                s.template.containers[0].resources.requests["cpu"],
                "2".parse().unwrap()
            );
        }
    }
}
