//! The eleven Kubernetes-style operators the Acto reproduction evaluates.
//!
//! Each operator mirrors one row of the paper's Table 4: a realistic CRD
//! built from shared Kubernetes-resource fragments, a reconcile loop
//! against the simulated control plane, a registered reconcile IR for the
//! whitebox analysis, and a set of individually toggleable injected bugs
//! whose population matches Tables 5–6 exactly ([`bugs`]). The crate also
//! carries the operators' pre-existing manual e2e suites as data
//! ([`existing_tests`]) for the motivating-study tables.

pub mod bugs;
pub mod common;
pub mod compose;
pub mod crd_parts;
pub mod existing_tests;
pub mod framework;
pub mod ops;
pub mod registry;

pub use bugs::{all_bugs, bug, bugs_of, BugCategory, BugSpec, BugToggles, Consequence};
pub use compose::{member_namespace, Composition, CompositionCheckpoint, InterferenceEvent};
pub use framework::{
    CrashEvent, Instance, InstanceCheckpoint, Operator, OperatorError, CONVERGE_MAX,
    CONVERGE_RESET, INSTANCE, NAMESPACE,
};
pub use registry::{operator_by_name, operator_names, try_operator_by_name, OperatorInfo};
