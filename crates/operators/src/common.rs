//! Shared reconcile helpers: parsing standard CRD fragments into cluster
//! objects and applying workloads.

use std::collections::BTreeMap;

use crdspec::Value;
use simkube::meta::{LabelSelector, ObjectMeta};
use simkube::objects::{
    ClaimTemplate, ConfigMap, Container, Ingress, Kind, ObjectData, Pdb, PodTemplate, Service,
    ServiceType, StatefulSet,
};
use simkube::resources::{
    Affinity, NodeAffinityTerm, PodAffinityTerm, ResourceRequirements, SecurityContext, Toleration,
    TolerationOperator,
};
use simkube::store::ObjKey;
use simkube::{Quantity, SimCluster};

use crate::framework::OperatorError;

/// Borrowed lookup of a dotted path (with optional `[i]` indices), walking
/// the value directly instead of allocating a parsed `crdspec::Path`.
/// These helpers run on every reconcile pass of every operator, so the
/// parse would dominate the lookup. Matches `path.parse::<Path>()` +
/// `Value::get_path` on well-formed paths and returns `None` on
/// malformed ones.
fn lookup<'v>(cr: &'v Value, path: &str) -> Option<&'v Value> {
    let mut cur = cr;
    if path.is_empty() {
        return Some(cur);
    }
    for seg in path.split('.') {
        let (key, mut rest) = match seg.find('[') {
            Some(pos) => (&seg[..pos], &seg[pos..]),
            None => (seg, ""),
        };
        if key.is_empty() && rest.is_empty() {
            return None; // empty segment: leading/trailing/double dot
        }
        if !key.is_empty() {
            cur = cur.get(key)?;
        }
        while let Some(inner) = rest.strip_prefix('[') {
            let end = inner.find(']')?;
            let idx: usize = inner[..end].parse().ok()?;
            cur = cur.as_array()?.get(idx)?;
            rest = &inner[end + 1..];
        }
        if !rest.is_empty() {
            return None;
        }
    }
    Some(cur)
}

/// Borrowed read of the value at a dotted path (see [`str_at`] for the
/// path grammar).
pub fn value_at<'v>(cr: &'v Value, path: &str) -> Option<&'v Value> {
    lookup(cr, path)
}

/// Reads a string at a dotted path of the CR spec.
pub fn str_at(cr: &Value, path: &str) -> Option<String> {
    lookup(cr, path).and_then(Value::as_str).map(str::to_string)
}

/// Reads an integer at a dotted path.
pub fn i64_at(cr: &Value, path: &str) -> Option<i64> {
    lookup(cr, path).and_then(Value::as_i64)
}

/// Reads a boolean at a dotted path.
pub fn bool_at(cr: &Value, path: &str) -> Option<bool> {
    lookup(cr, path).and_then(Value::as_bool)
}

/// Reads a string map at a dotted path.
pub fn map_at(cr: &Value, path: &str) -> BTreeMap<String, String> {
    match lookup(cr, path) {
        Some(Value::Object(m)) => m
            .iter()
            .filter_map(|(k, v)| v.as_str().map(|s| (k.clone(), s.to_string())))
            .collect(),
        _ => BTreeMap::new(),
    }
}

/// Parses a quantity string, turning failure into an operator panic — the
/// `unwrap`-style parse sites where several injected bugs live.
pub fn quantity_or_panic(s: &str, context: &str) -> Result<Quantity, OperatorError> {
    s.parse()
        .map_err(|e| OperatorError::Panic(format!("{context}: {e}")))
}

/// Validates a cron expression: `@hourly`/`@daily`/`@weekly`, or five
/// whitespace-separated fields.
pub fn cron_is_valid(expr: &str) -> bool {
    matches!(expr, "@hourly" | "@daily" | "@weekly") || expr.split_whitespace().count() == 5
}

/// Parses the standard resources fragment at `base` into requirements.
pub fn resources_at(cr: &Value, base: &str) -> ResourceRequirements {
    let mut out = ResourceRequirements::default();
    let root = lookup(cr, base);
    for (section, target) in [("requests", 0usize), ("limits", 1usize)] {
        for resource in ["cpu", "memory"] {
            let s = root
                .and_then(|r| r.get(section))
                .and_then(|r| r.get(resource))
                .and_then(Value::as_str);
            if let Some(s) = s {
                if let Ok(q) = s.parse::<Quantity>() {
                    if target == 0 {
                        out.requests.insert(resource.to_string(), q);
                    } else {
                        out.limits.insert(resource.to_string(), q);
                    }
                }
            }
        }
    }
    out
}

/// Parses the standard affinity fragment at `base`.
pub fn affinity_at(cr: &Value, base: &str) -> Affinity {
    let terms = |section: &str| -> Vec<(String, String)> {
        match lookup(cr, base).and_then(|r| r.get(section)) {
            Some(Value::Array(items)) => items
                .iter()
                .filter_map(|t| {
                    Some((
                        t.get("key")?.as_str()?.to_string(),
                        t.get("value")?.as_str()?.to_string(),
                    ))
                })
                .collect(),
            _ => Vec::new(),
        }
    };
    Affinity {
        node_required: terms("nodeRequired")
            .into_iter()
            .map(|(key, value)| NodeAffinityTerm { key, value })
            .collect(),
        pod_affinity: terms("podAffinity")
            .into_iter()
            .map(|(key, value)| PodAffinityTerm { key, value })
            .collect(),
        pod_anti_affinity: terms("podAntiAffinity")
            .into_iter()
            .map(|(key, value)| PodAffinityTerm { key, value })
            .collect(),
    }
}

/// Parses the tolerations fragment at `base`.
pub fn tolerations_at(cr: &Value, base: &str) -> Vec<Toleration> {
    match lookup(cr, base) {
        Some(Value::Array(items)) => items
            .iter()
            .filter_map(|t| {
                Some(Toleration {
                    key: t.get("key")?.as_str()?.to_string(),
                    value: t
                        .get("value")
                        .and_then(Value::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    operator: match t.get("operator").and_then(Value::as_str) {
                        Some("Exists") => TolerationOperator::Exists,
                        _ => TolerationOperator::Equal,
                    },
                })
            })
            .collect(),
        _ => Vec::new(),
    }
}

/// Parses the security-context fragment at `base`.
pub fn security_at(cr: &Value, base: &str) -> SecurityContext {
    SecurityContext {
        run_as_user: i64_at(cr, &format!("{base}.runAsUser")),
        run_as_non_root: bool_at(cr, &format!("{base}.runAsNonRoot")).unwrap_or(false),
        read_only_root_filesystem: bool_at(cr, &format!("{base}.readOnlyRootFilesystem"))
            .unwrap_or(false),
        fs_group: i64_at(cr, &format!("{base}.fsGroup")),
    }
}

/// Builds the pod template from the standard fragment at `base`, with the
/// given app identity, image, and configuration hash.
pub fn pod_template_at(
    cr: &Value,
    base: &str,
    app: &str,
    component: Option<&str>,
    image: &str,
    config_hash: &str,
) -> PodTemplate {
    let mut labels = map_at(cr, &format!("{base}.labels"));
    labels.insert("app".to_string(), app.to_string());
    if let Some(c) = component {
        labels.insert("component".to_string(), c.to_string());
    }
    let mut env = map_at(cr, &format!("{base}.env"));
    // Probe knobs travel as container settings so probe changes are visible
    // in state objects and roll pods.
    for (probe, prefix) in [
        ("livenessProbe", "LIVENESS"),
        ("readinessProbe", "READINESS"),
    ] {
        for (field, suffix) in [
            ("initialDelaySeconds", "DELAY"),
            ("periodSeconds", "PERIOD"),
            ("failureThreshold", "THRESHOLD"),
        ] {
            if let Some(v) = i64_at(cr, &format!("{base}.{probe}.{field}")) {
                env.insert(format!("PROBE_{prefix}_{suffix}"), v.to_string());
            }
        }
    }
    PodTemplate {
        labels,
        annotations: map_at(cr, &format!("{base}.annotations")),
        containers: vec![Container {
            name: component.unwrap_or("main").to_string(),
            image: image.to_string(),
            resources: resources_at(cr, &format!("{base}.resources")),
            env,
            ports: Vec::new(),
            security: security_at(cr, &format!("{base}.securityContext")),
            config_hash: config_hash.to_string(),
            volume_mounts: Vec::new(),
        }],
        affinity: affinity_at(cr, &format!("{base}.affinity")),
        tolerations: tolerations_at(cr, &format!("{base}.tolerations")),
        node_selector: map_at(cr, &format!("{base}.nodeSelector")),
        security: security_at(cr, &format!("{base}.securityContext")),
        service_account: str_at(cr, &format!("{base}.serviceAccountName")).unwrap_or_default(),
        priority_class: str_at(cr, &format!("{base}.priorityClassName")).unwrap_or_default(),
    }
}

/// A compact fingerprint of a config map's content, stamped into container
/// specs so config changes roll pods.
pub fn config_hash(entries: &BTreeMap<String, String>) -> String {
    let mut rendered = String::new();
    for (k, v) in entries {
        rendered.push_str(k);
        rendered.push('\0');
        rendered.push_str(v);
        rendered.push('\0');
    }
    simkube::objects::fnv_fingerprint(&rendered)
}

/// Upserts a stateful set owned by the CR.
pub fn apply_statefulset(
    cluster: &mut SimCluster,
    namespace: &str,
    name: &str,
    replicas: i32,
    template: PodTemplate,
    claims: Vec<ClaimTemplate>,
) -> Result<(), OperatorError> {
    // The selector is the stable identity (app/component), never the full
    // label set: free-form labels may change, selectors must not.
    let mut match_labels = std::collections::BTreeMap::new();
    for key in ["app", "component"] {
        if let Some(v) = template.labels.get(key) {
            match_labels.insert(key.to_string(), v.clone());
        }
    }
    if match_labels.is_empty() {
        match_labels = template.labels.clone();
    }
    let selector = LabelSelector { match_labels };
    let sts = StatefulSet {
        replicas,
        selector,
        template,
        claim_templates: claims,
        service_name: name.to_string(),
        ..StatefulSet::default()
    };
    let time = cluster.now();
    cluster
        .api_mut()
        .apply_object(
            ObjectMeta::named(namespace, name),
            ObjectData::StatefulSet(sts),
            time,
        )
        .map(|_| ())
        .map_err(|e| OperatorError::Transient(e.to_string()))
}

/// Upserts the instance config map `{app}-config`.
pub fn apply_config(
    cluster: &mut SimCluster,
    namespace: &str,
    app: &str,
    entries: BTreeMap<String, String>,
) -> Result<(), OperatorError> {
    let time = cluster.now();
    cluster
        .api_mut()
        .apply_object(
            ObjectMeta::named(namespace, &format!("{app}-config")),
            ObjectData::ConfigMap(ConfigMap { data: entries }),
            time,
        )
        .map(|_| ())
        .map_err(|e| OperatorError::Transient(e.to_string()))
}

/// Upserts a client service.
pub fn apply_service(
    cluster: &mut SimCluster,
    namespace: &str,
    name: &str,
    app: &str,
    port: u16,
    service_type: ServiceType,
) -> Result<(), OperatorError> {
    let svc = Service {
        selector: LabelSelector::match_labels([("app", app)]),
        ports: vec![port],
        service_type,
        endpoints: Vec::new(),
    };
    let time = cluster.now();
    cluster
        .api_mut()
        .apply_object(
            ObjectMeta::named(namespace, name),
            ObjectData::Service(svc),
            time,
        )
        .map(|_| ())
        .map_err(|e| OperatorError::Transient(e.to_string()))
}

/// Upserts a disruption budget.
pub fn apply_pdb(
    cluster: &mut SimCluster,
    namespace: &str,
    name: &str,
    app: &str,
    min_available: i32,
) -> Result<(), OperatorError> {
    let pdb = Pdb {
        selector: LabelSelector::match_labels([("app", app)]),
        min_available,
        current_healthy: 0,
    };
    let time = cluster.now();
    cluster
        .api_mut()
        .apply_object(
            ObjectMeta::named(namespace, name),
            ObjectData::PodDisruptionBudget(pdb),
            time,
        )
        .map(|_| ())
        .map_err(|e| OperatorError::Transient(e.to_string()))
}

/// Upserts an ingress.
pub fn apply_ingress(
    cluster: &mut SimCluster,
    namespace: &str,
    name: &str,
    host: &str,
    service_name: &str,
    tls_secret: &str,
) -> Result<(), OperatorError> {
    let ing = Ingress {
        host: host.to_string(),
        service_name: service_name.to_string(),
        tls_secret: tls_secret.to_string(),
    };
    let time = cluster.now();
    cluster
        .api_mut()
        .apply_object(
            ObjectMeta::named(namespace, name),
            ObjectData::Ingress(ing),
            time,
        )
        .map(|_| ())
        .map_err(|e| OperatorError::Transient(e.to_string()))
}

/// Merges a secondary label map over template labels with bookkeeping: the
/// previously applied set is remembered in a workload annotation so the
/// injected "deletion swallowed" label bugs can replay exactly the keys
/// they once applied (and only those).
///
/// Returns the effective labels to extend the template with; the caller
/// stamps the record with [`stamp_label_record`] after applying the
/// workload.
pub fn merge_labels_tracked(
    cluster: &SimCluster,
    key: &ObjKey,
    annotation: &str,
    declared: BTreeMap<String, String>,
    swallow_deletions: bool,
) -> BTreeMap<String, String> {
    let previous: BTreeMap<String, String> = cluster
        .api()
        .get(key)
        .and_then(|o| o.meta.annotations.get(annotation).cloned())
        .and_then(|s| crdspec::json::from_str(&s).ok())
        .and_then(|v| {
            v.as_object().map(|m| {
                m.iter()
                    .filter_map(|(k, v)| v.as_str().map(|s| (k.clone(), s.to_string())))
                    .collect()
            })
        })
        .unwrap_or_default();
    let mut effective = declared;
    if swallow_deletions {
        for (k, v) in previous {
            effective.entry(k).or_insert(v);
        }
    }
    effective
}

/// Records the label set applied by [`merge_labels_tracked`].
pub fn stamp_label_record(
    cluster: &mut SimCluster,
    key: &ObjKey,
    annotation: &str,
    effective: &BTreeMap<String, String>,
) {
    let rendered = crdspec::json::to_string(&Value::Object(
        effective
            .iter()
            .map(|(k, v)| (k.clone(), Value::from(v.clone())))
            .collect(),
    ));
    if cluster.api().get(key).is_none() {
        return;
    }
    let time = cluster.now();
    let _ = cluster.api_mut().store_mut().update_with(key, time, |o| {
        o.meta
            .annotations
            .insert(annotation.to_string(), rendered.clone());
    });
}

/// Stamps an annotation onto a stateful set (controller-style metadata the
/// operator owns, e.g. the volume reclaim policy).
pub fn stamp_sts_annotation(
    cluster: &mut SimCluster,
    namespace: &str,
    name: &str,
    key: &str,
    value: &str,
) {
    let sts_key = ObjKey::new(Kind::StatefulSet, namespace, name);
    if cluster.api().get(&sts_key).is_none() {
        return;
    }
    let time = cluster.now();
    let _ = cluster
        .api_mut()
        .store_mut()
        .update_with(&sts_key, time, |o| {
            o.meta
                .annotations
                .insert(key.to_string(), value.to_string());
        });
}

/// Deletes an object when present (idempotent disable path).
pub fn delete_if_exists(cluster: &mut SimCluster, kind: Kind, namespace: &str, name: &str) {
    let key = ObjKey::new(kind, namespace, name);
    if cluster.api().get(&key).is_some() {
        let time = cluster.now();
        let _ = cluster.api_mut().delete_object(&key, time);
    }
}

/// Writes the conventional CR status: ready replicas, phase, and the
/// observed generation.
pub fn write_cr_status(
    cluster: &mut SimCluster,
    cr_key: &ObjKey,
    ready_replicas: i32,
    desired_replicas: i32,
) {
    let Some(obj) = cluster.api().get(cr_key) else {
        return;
    };
    let generation = obj.meta.generation;
    let mut status = obj.data.status_value();
    status.set_path(
        &"readyReplicas".parse().expect("path"),
        Value::from(i64::from(ready_replicas)),
    );
    status.set_path(
        &"phase".parse().expect("path"),
        Value::from(if ready_replicas >= desired_replicas {
            "Ready"
        } else {
            "Reconciling"
        }),
    );
    status.set_path(
        &"observedGeneration".parse().expect("path"),
        Value::from(generation as i64),
    );
    let time = cluster.now();
    let _ = cluster.api_mut().update_custom_status(cr_key, status, time);
}

/// Counts ready pods labelled `app={app}` in a namespace.
pub fn ready_pods(cluster: &SimCluster, namespace: &str, app: &str) -> i32 {
    cluster
        .api()
        .store()
        .list(&Kind::Pod, namespace)
        .iter()
        .filter(|o| {
            o.meta.labels.get("app").map(String::as_str) == Some(app)
                && matches!(&o.data, ObjectData::Pod(p) if p.ready)
        })
        .count() as i32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_readers_handle_missing_paths() {
        let cr = Value::object([("a", Value::object([("b", Value::from(3))]))]);
        assert_eq!(i64_at(&cr, "a.b"), Some(3));
        assert_eq!(i64_at(&cr, "a.c"), None);
        assert_eq!(str_at(&cr, "a.b"), None);
        assert!(map_at(&cr, "nope").is_empty());
    }

    #[test]
    fn resources_fragment_parses() {
        let cr = Value::object([(
            "resources",
            Value::object([
                (
                    "requests",
                    Value::object([("cpu", Value::from("500m")), ("memory", Value::from("1Gi"))]),
                ),
                ("limits", Value::object([("cpu", Value::from("2"))])),
            ]),
        )]);
        let r = resources_at(&cr, "resources");
        assert_eq!(r.requests["cpu"], "500m".parse().unwrap());
        assert_eq!(r.requests["memory"], "1Gi".parse().unwrap());
        assert_eq!(r.limits["cpu"], "2".parse().unwrap());
    }

    #[test]
    fn affinity_and_tolerations_parse() {
        let cr = Value::object([
            (
                "affinity",
                Value::object([(
                    "podAntiAffinity",
                    Value::array([Value::object([
                        ("key", Value::from("app")),
                        ("value", Value::from("zk")),
                    ])]),
                )]),
            ),
            (
                "tolerations",
                Value::array([Value::object([
                    ("key", Value::from("dedicated")),
                    ("operator", Value::from("Exists")),
                ])]),
            ),
        ]);
        let a = affinity_at(&cr, "affinity");
        assert_eq!(a.pod_anti_affinity.len(), 1);
        let t = tolerations_at(&cr, "tolerations");
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].operator, TolerationOperator::Exists);
    }

    #[test]
    fn config_hash_is_stable_and_sensitive() {
        let mut a = BTreeMap::new();
        a.insert("k".to_string(), "v".to_string());
        let h1 = config_hash(&a);
        assert_eq!(h1, config_hash(&a.clone()));
        a.insert("k2".to_string(), "v2".to_string());
        assert_ne!(h1, config_hash(&a));
    }

    #[test]
    fn cron_validation() {
        assert!(cron_is_valid("@daily"));
        assert!(cron_is_valid("0 3 * * *"));
        assert!(!cron_is_valid("every day"));
        assert!(!cron_is_valid("0 3 * *"));
    }

    #[test]
    fn quantity_or_panic_reports_context() {
        assert!(quantity_or_panic("1Gi", "storage").is_ok());
        match quantity_or_panic("garbage", "storage size") {
            Err(OperatorError::Panic(msg)) => assert!(msg.contains("storage size")),
            other => panic!("expected panic, got {other:?}"),
        }
    }
}
